//! Offline shim for the `criterion` crate.
//!
//! Chronos builds in environments without a crates.io mirror, so the
//! external benchmark harness is replaced by this self-contained one.
//! It reproduces the API surface the workspace's `benches/` use —
//! benchmark groups, `Throughput`, `BenchmarkId`, `iter`/`iter_batched`
//! — with a simple warmup + median-of-samples measurement loop, and
//! prints per-benchmark time and throughput to stdout. There is no
//! statistical regression analysis or HTML report; the numbers are for
//! quick comparisons, with `chronos-bench` remaining the rigorous path.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a group reports work-per-iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark's display name: a function part plus an optional
/// parameter part (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter (for groups benchmarking one function over
    /// several inputs).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepted by `bench_function` / `bench_with_input` as a name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// How `iter_batched` amortizes setup (the shim times the routine per
/// batch regardless, so the variants only differ in batch size).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: one setup per routine call.
    SmallInput,
    /// Large inputs: identical to `SmallInput` under the shim.
    LargeInput,
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&name.into_id(), sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares work-per-iteration so results print as throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every call
    /// (setup cost is excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: one untimed pass (warmup + cost estimate), then size
    // iteration counts so each sample takes a perceptible slice of time.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target_sample = Duration::from_millis(40);
    let iters = (target_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let best = samples[0];

    let mut line = format!(
        "{name:<50} time: [{} median, {} best; {sample_size} samples x {iters} iters]",
        fmt_seconds(median),
        fmt_seconds(best),
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            line.push_str(&format!("  thrpt: {} elem/s", fmt_count(n as f64 / median)));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            line.push_str(&format!("  thrpt: {}B/s", fmt_count(n as f64 / median)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(16));
        let mut runs = 0usize;
        group.bench_function("sum", |b| {
            runs += 1;
            b.iter(|| (0u64..16).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 8), &8u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput);
        });
        group.finish();
        // Calibration pass + sample passes.
        assert_eq!(runs, 3);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("load", 4).to_string(), "load/4");
        assert_eq!(BenchmarkId::from_parameter("btree").to_string(), "btree");
    }
}
