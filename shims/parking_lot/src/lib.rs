//! Offline shim for the `parking_lot` crate.
//!
//! The Chronos workspace builds in environments without a crates.io mirror,
//! so the external locking crate is replaced by this thin wrapper over
//! `std::sync`. It reproduces the parts of the parking_lot API the codebase
//! relies on — most importantly that `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s (poisoning is swallowed: a panic
//! while holding a lock does not wedge every later caller).

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // A parking_lot-style mutex keeps working after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
