//! Offline shim for the `proptest` crate.
//!
//! Chronos builds in environments without a crates.io mirror, so the
//! external property-testing crate is replaced by this self-contained
//! implementation of the subset the workspace uses: the [`Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_recursive`, tuple and
//! range strategies, subset-regex string strategies (`".*"`,
//! `"[a-z]{1,8}"`, …), `prop::collection::{vec, hash_set, btree_set}`,
//! `prop::sample::Index`, `any::<T>()`, and the `proptest!` /
//! `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the generated input printed, which is enough to reproduce and
//! debug (runs are deterministic for a given `PROPTEST_SEED`).

use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{HalfOpen, Rng, SampleUniform, SeedableRng};

/// The RNG handed to strategies while generating cases.
pub type TestRng = StdRng;

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (regenerating up to a cap).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), f }
    }

    /// Builds a recursive strategy: `self` is the leaf, `f` wraps an
    /// inner strategy into a branch, nesting at most `depth` levels.
    /// (`_desired_size` and `_expected_branch` are accepted for API
    /// compatibility; the shim controls size via `depth` alone.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S,
    {
        let leaf = ArcStrategy::new(self);
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = ArcStrategy::new(f(strat));
            // Bias toward branching so nested values actually appear;
            // the leaf arm guarantees termination at every level.
            strat = ArcStrategy::new(Union::weighted(vec![(1, leaf.clone()), (2, branch)]));
        }
        strat
    }

    /// Type-erases the strategy behind an `Arc`.
    fn boxed(self) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        ArcStrategy::new(self)
    }
}

/// Object-safe mirror of [`Strategy`] used by [`ArcStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply clonable, type-erased strategy (the shim's `BoxedStrategy`).
pub struct ArcStrategy<T>(Arc<dyn DynStrategy<T>>);

/// Alias matching the real crate's name for an erased strategy.
pub type BoxedStrategy<T> = ArcStrategy<T>;

impl<T> Clone for ArcStrategy<T> {
    fn clone(&self) -> Self {
        ArcStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug + 'static> ArcStrategy<T> {
    /// Erases `strategy`.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        ArcStrategy(Arc::new(strategy))
    }
}

impl<T: fmt::Debug> Strategy for ArcStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 consecutive values", self.reason);
    }
}

/// Chooses uniformly (or by weight) between several strategies of one
/// value type — what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<(u32, ArcStrategy<T>)>,
    total_weight: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Equal-weight union.
    pub fn new(options: Vec<ArcStrategy<T>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted union.
    pub fn weighted(options: Vec<(u32, ArcStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union { options, total_weight }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return option.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, tuples, patterns, any::<T>
// ---------------------------------------------------------------------------

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + HalfOpen + Copy + fmt::Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + Copy + fmt::Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as subset-regex string strategies (`".*"`,
/// `"[a-z]{1,8}"`, `"[ -~]{0,40}"`, …).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

/// Types with a canonical strategy, reachable via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one value, biased toward boundary cases where sensible.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` — `any::<u8>()`, `any::<f64>()`, ….
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        const EDGES: [u64; 6] = [0, 1, 2, u64::MAX, u64::MAX - 1, 1 << 32];
        if rng.gen_range(0u32..8) == 0 {
            EDGES[rng.gen_range(0..EDGES.len())]
        } else {
            rng.gen()
        }
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        const EDGES: [i64; 6] = [0, 1, -1, i64::MAX, i64::MIN, i64::MIN + 1];
        if rng.gen_range(0u32..8) == 0 {
            EDGES[rng.gen_range(0..EDGES.len())]
        } else {
            rng.gen()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        const EDGES: [f64; 10] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::EPSILON,
        ];
        match rng.gen_range(0u32..8) {
            0 => EDGES[rng.gen_range(0..EDGES.len())],
            // Raw bit patterns reach every exponent (including NaN payloads).
            1 | 2 => f64::from_bits(rng.gen()),
            // Human-scale magnitudes, where most arithmetic bugs live.
            _ => (rng.gen::<f64>() - 0.5) * 2e6,
        }
    }
}

/// Collection strategies: `prop::collection::{vec, hash_set, btree_set}`.
pub mod collection {
    use super::{fmt, Strategy, TestRng};
    use rand::Rng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeMap` whose size lands in `size` (key space permitting).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..(target * 20 + 10) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// A `HashSet` whose size lands in `size` (element space permitting).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = HashSet::new();
            // Duplicates don't grow the set; cap the attempts so tiny
            // element spaces can't loop forever.
            for _ in 0..(target * 20 + 10) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// A `BTreeSet` whose size lands in `size` (element space permitting).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            for _ in 0..(target * 20 + 10) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Sampling helpers: `prop::sample::Index`.
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::Rng;

    /// A position into a collection whose length is unknown at
    /// generation time; resolve with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen())
        }
    }
}

// ---------------------------------------------------------------------------
// Subset-regex string generation
// ---------------------------------------------------------------------------

mod pattern {
    use super::TestRng;
    use rand::Rng;

    enum Atom {
        /// `.` — any char, biased toward ASCII and escape-relevant bytes.
        Any,
        /// `[...]` — inclusive char ranges.
        Class(Vec<(char, char)>),
        Lit(char),
        /// `(...)` — a repeatable sub-sequence.
        Group(Vec<(Atom, usize, usize)>),
    }

    /// Generates one string matching `pattern` (the supported subset:
    /// literals, `.`, `[...]` classes with ranges and escapes, `(...)`
    /// groups, and the repetitions `*`, `+`, `?`, `{m}`, `{m,n}`).
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (atoms, end) = parse_sequence(pattern, &chars, 0, None);
        if end != chars.len() {
            bad::<()>(pattern, "unbalanced parenthesis");
        }
        let mut out = String::new();
        emit_sequence(&atoms, rng, &mut out);
        out
    }

    fn emit_sequence(atoms: &[(Atom, usize, usize)], rng: &mut TestRng, out: &mut String) {
        for (atom, min, max) in atoms {
            let count = rng.gen_range(*min..=*max);
            for _ in 0..count {
                match atom {
                    Atom::Group(inner) => emit_sequence(inner, rng, out),
                    leaf => out.push(sample_atom(leaf, rng)),
                }
            }
        }
    }

    /// Parses atoms until end-of-pattern (`until: None`) or a closing
    /// delimiter (`until: Some(')')`), returning the index past it.
    fn parse_sequence(
        pattern: &str,
        chars: &[char],
        mut i: usize,
        until: Option<char>,
    ) -> (Vec<(Atom, usize, usize)>, usize) {
        let mut atoms = Vec::new();
        while i < chars.len() {
            if until == Some(chars[i]) {
                return (atoms, i + 1);
            }
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).unwrap_or_else(|| bad(pattern, "trailing backslash"));
                    i += 1;
                    Atom::Lit(unescape(c))
                }
                '[' => {
                    i += 1;
                    let (class, next) = parse_class(pattern, chars, i);
                    i = next;
                    class
                }
                '(' => {
                    let (inner, next) = parse_sequence(pattern, chars, i + 1, Some(')'));
                    i = next;
                    Atom::Group(inner)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max, next) = parse_repetition(pattern, chars, i);
            i = next;
            atoms.push((atom, min, max));
        }
        if until.is_some() {
            bad::<()>(pattern, "unterminated group");
        }
        (atoms, i)
    }

    fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Atom, usize) {
        // Tokenize first so escaped chars can never act as range dashes.
        enum Tok {
            Char(char),
            Dash,
        }
        let mut toks = Vec::new();
        loop {
            match *chars.get(i).unwrap_or_else(|| bad(pattern, "unterminated class")) {
                ']' => {
                    i += 1;
                    break;
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).unwrap_or_else(|| bad(pattern, "trailing backslash"));
                    i += 1;
                    toks.push(Tok::Char(unescape(c)));
                }
                '-' => {
                    i += 1;
                    toks.push(Tok::Dash);
                }
                c => {
                    i += 1;
                    toks.push(Tok::Char(c));
                }
            }
        }
        let mut ranges = Vec::new();
        let mut t = 0;
        while t < toks.len() {
            match (&toks[t], toks.get(t + 1), toks.get(t + 2)) {
                (Tok::Char(lo), Some(Tok::Dash), Some(Tok::Char(hi))) => {
                    if lo > hi {
                        bad::<()>(pattern, "inverted class range");
                    }
                    ranges.push((*lo, *hi));
                    t += 3;
                }
                (Tok::Char(c), _, _) => {
                    ranges.push((*c, *c));
                    t += 1;
                }
                // A dash at the start/end of the class (or next to
                // another dash) is a literal.
                (Tok::Dash, _, _) => {
                    ranges.push(('-', '-'));
                    t += 1;
                }
            }
        }
        if ranges.is_empty() {
            bad::<()>(pattern, "empty class");
        }
        (Atom::Class(ranges), i)
    }

    fn parse_repetition(pattern: &str, chars: &[char], mut i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('*') => (0, 16, i + 1),
            Some('+') => (1, 16, i + 1),
            Some('?') => (0, 1, i + 1),
            Some('{') => {
                i += 1;
                let mut min = 0usize;
                let mut saw_digit = false;
                while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                    min = min * 10 + d as usize;
                    saw_digit = true;
                    i += 1;
                }
                if !saw_digit {
                    bad::<()>(pattern, "malformed repetition");
                }
                let max = if chars.get(i) == Some(&',') {
                    i += 1;
                    let mut max = 0usize;
                    saw_digit = false;
                    while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                        max = max * 10 + d as usize;
                        saw_digit = true;
                        i += 1;
                    }
                    if !saw_digit {
                        bad::<()>(pattern, "open-ended repetition is unsupported");
                    }
                    max
                } else {
                    min
                };
                if chars.get(i) != Some(&'}') {
                    bad::<()>(pattern, "unterminated repetition");
                }
                if max < min {
                    bad::<()>(pattern, "inverted repetition");
                }
                (min, max, i + 1)
            }
            _ => (1, 1, i),
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            _ => c,
        }
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Group(_) => unreachable!("groups are expanded by emit_sequence"),
            Atom::Lit(c) => *c,
            Atom::Any => {
                // Escape-relevant bytes show up often so serializer tests
                // exercise quoting, control escapes and backslashes hard.
                const SPICY: [char; 12] = [
                    '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', '/',
                    '\u{7f}',
                ];
                match rng.gen_range(0u32..10) {
                    0..=4 => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
                    5..=7 => SPICY[rng.gen_range(0..SPICY.len())],
                    _ => loop {
                        if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                            break c;
                        }
                    },
                }
            }
            Atom::Class(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi) - u64::from(*lo) + 1;
                    if pick < span {
                        // Classes in the workspace never straddle the
                        // surrogate gap, so this always succeeds.
                        return char::from_u32(u32::from(*lo) + pick as u32)
                            .expect("class range straddles a surrogate");
                    }
                    pick -= span;
                }
                unreachable!("class pick out of range")
            }
        }
    }

    fn bad<T>(pattern: &str, what: &str) -> &'static T {
        panic!("unsupported pattern {pattern:?}: {what}");
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed property check (what `prop_assert!` returns).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one `proptest!` test: generates `config.cases` inputs and runs
/// `test` on each, panicking with the offending input on failure.
///
/// Runs are deterministic; set `PROPTEST_SEED` to explore a different
/// part of the input space.
pub fn run_cases<S: Strategy>(
    config: ProptestConfig,
    strategy: S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x0C_E5_1A_5E_ED_u64);
    let mut rng = TestRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        let printed = format!("{input:?}");
        match catch_unwind(AssertUnwindSafe(|| test(input))) {
            Ok(Ok(())) => {}
            Ok(Err(err)) => panic!(
                "proptest: case {} of {} failed: {err}\n    input: {printed}",
                case + 1,
                config.cases
            ),
            Err(panic) => {
                eprintln!(
                    "proptest: case {} of {} panicked\n    input: {printed}",
                    case + 1,
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] over the tuple of strategies.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                $config,
                ($($strategy,)+),
                |($($arg,)+)| {
                    $body;
                    Ok(())
                },
            );
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses between strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::ArcStrategy::new($strategy)),+])
    };
}

/// Like `assert!` but fails the current case instead of panicking,
/// letting the runner report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`: {}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ArcStrategy,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn patterns_match_their_shape() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let p = "[ -~]{0,40}".generate(&mut rng);
            assert!(p.chars().count() <= 40);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");

            let fixed = "ab{3}c".generate(&mut rng);
            assert_eq!(fixed, "abbbc");

            let path = "[a-z]{1,4}(/[a-z]{1,4}){0,3}".generate(&mut rng);
            let segments: Vec<&str> = path.split('/').collect();
            assert!((1..=4).contains(&segments.len()), "{path:?}");
            for segment in segments {
                assert!((1..=4).contains(&segment.len()), "{path:?}");
                assert!(segment.chars().all(|c| c.is_ascii_lowercase()), "{path:?}");
            }
        }
    }

    #[test]
    fn escaped_classes_parse() {
        let mut rng = rng();
        let pat = r#"[\[\]{}",:0-9eE+\-. \\unltrfabcd]*"#;
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            for c in s.chars() {
                assert!(
                    "[]{}\",:eE+-. \\unltrfabcd".contains(c) || c.is_ascii_digit(),
                    "unexpected {c:?} from {pat}"
                );
            }
        }
    }

    #[test]
    fn dot_star_produces_escape_heavy_strings() {
        let mut rng = rng();
        let mut saw_quote = false;
        let mut saw_backslash = false;
        let mut saw_control = false;
        for _ in 0..500 {
            let s = ".*".generate(&mut rng);
            saw_quote |= s.contains('"');
            saw_backslash |= s.contains('\\');
            saw_control |= s.chars().any(|c| (c as u32) < 0x20);
        }
        assert!(saw_quote && saw_backslash && saw_control);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng();
        let strat = prop_oneof![(0i64..10).prop_map(|n| n * 2), Just(999i64),];
        let mut saw_even = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                999 => saw_just = true,
                n => {
                    assert!(n % 2 == 0 && (0..20).contains(&n));
                    saw_even = true;
                }
            }
        }
        assert!(saw_even && saw_just);
    }

    #[test]
    fn recursion_terminates_and_nests() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 64, 8, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = rng();
        let mut max_depth = 0;
        for _ in 0..500 {
            let t = strat.generate(&mut rng);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth >= 2, "recursion never nested (max depth {max_depth})");
        assert!(max_depth <= 4, "recursion overflowed its depth bound");
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = prop::collection::hash_set("[a-z]{1,8}", 1..6).generate(&mut rng);
            assert!((1..6).contains(&s.len()));
            let b = prop::collection::btree_set("[a-z]{1,6}", 1..5).generate(&mut rng);
            assert!((1..5).contains(&b.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, (b, c) in (0u8..4, any::<bool>())) {
            prop_assert!(a < 100);
            prop_assert!(b < 4, "b out of range: {b}");
            prop_assert_eq!(c as u8 * 2, if c { 2 } else { 0 });
        }
    }

    #[test]
    #[should_panic(expected = "input:")]
    fn failures_report_the_input() {
        crate::run_cases(ProptestConfig::with_cases(64), 0u64..100, |n| {
            crate::prop_assert!(n < 42);
            Ok(())
        });
    }
}
