//! Offline shim for the `rand` crate (0.8-compatible subset).
//!
//! Chronos builds in environments without a crates.io mirror, so the
//! external RNG crate is replaced by this self-contained implementation.
//! It provides exactly the surface the workspace uses: `rand::random`,
//! the [`Rng`] trait with `gen`/`gen_range`, [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! splitmix64 — statistically solid for workload generation and tests,
//! and deterministic for a given seed (which the workload generators rely
//! on for reproducible benchmark runs).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `Rng` (the shim's stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire); the retry loop is rarely
                // taken for the small spans Chronos samples.
                let bound = span + 1;
                let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((low as $wide).wrapping_add((v % bound) as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

/// Range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HalfOpen> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.one_less())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for half-open integer ranges (`low..high`).
pub trait HalfOpen {
    /// The predecessor of `self` (the inclusive upper bound of `..self`).
    fn one_less(self) -> Self;
}

macro_rules! impl_half_open {
    ($($t:ty),* $(,)?) => {$(
        impl HalfOpen for $t {
            fn one_less(self) -> Self {
                self.checked_sub(1).expect("gen_range: empty range")
            }
        }
    )*};
}

impl_half_open!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing RNG trait (rand 0.8 subset).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range` (`low..high` or `low..=high`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed (rand 0.8 subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A value drawn from a global, lazily seeded generator — `rand::random`.
pub fn random<T: Standard>() -> T {
    use std::cell::Cell;
    use std::time::{SystemTime, UNIX_EPOCH};

    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    STATE.with(|state| {
        if state.get() == 0 {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            // Mix in a per-thread address so threads seeded in the same
            // nanosecond diverge.
            let tid = &state as *const _ as u64;
            state.set(nanos ^ tid.rotate_left(32) | 1);
        }
        let mut s = state.get();
        // splitmix64 step shared with StdRng seeding.
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        state.set(s);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        struct One(u64);
        impl RngCore for One {
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        T::sample(&mut One(z))
    })
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_values_vary() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }

    #[test]
    fn negative_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
        }
    }
}
