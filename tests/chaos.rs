#![cfg(feature = "failpoints")]

//! End-to-end chaos: Chronos Control + two agents over real sockets with a
//! seeded fault schedule — dropped responses after the server committed,
//! failing heartbeats, failing claims, failing uploads — and still every job
//! must finish **exactly once**: no job lost, no duplicate result.
//!
//! Fault draws are deterministic per (seed, site, hit index); a failure
//! reproduces with `CHRONOS_FAIL_SEED=<seed> cargo test --features
//! failpoints --test chaos`.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient};
use chronos::core::model::JobState;
use chronos::core::scheduler::SchedulerConfig;
use chronos::json::{arr, obj, Value};
use chronos::util::fail::{self, Policy};
use chronos::util::Id;
use common::TestEnv;

/// The failpoint registry is process-global; chaos scenarios must not
/// overlap. Resets and re-seeds the registry for replay.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    fail::reset();
    fail::set_seed(chaos_seed());
    guard
}

fn chaos_seed() -> u64 {
    std::env::var("CHRONOS_FAIL_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBADCAB)
}

fn replay() -> String {
    format!("(replay with CHRONOS_FAIL_SEED={})", fail::seed())
}

/// How many jobs an evaluation will run in total. Lazy evaluations create
/// job documents on the claim path, so at creation time the count lives in
/// `total_points`, not in the (still empty) `job_ids` list.
fn expected_jobs(evaluation: &Value) -> usize {
    evaluation.get("total_points").and_then(Value::as_i64).map(|n| n as usize).unwrap_or_else(
        || evaluation.get("job_ids").and_then(Value::as_array).map(Vec::len).unwrap(),
    )
}

/// An agent driver that keeps going through injected failures: a failed
/// claim or a failed run is exactly what the storm is supposed to produce;
/// the scheduler's reschedule + fencing machinery has to absorb it. Runs
/// until the main thread signals that every job settled (or the deadline).
fn storm_agent(
    base_url: &str,
    token: &str,
    deployment: Id,
    done: &AtomicBool,
    deadline: Instant,
) -> u64 {
    let client = ControlClient::new(base_url, token);
    let mut config = AgentConfig::new(deployment);
    config.heartbeat_interval = Duration::from_millis(100);
    config.poll_interval = Duration::from_millis(25);
    let mut agent = ChronosAgent::new(client, config, DocstoreClient::new());
    let mut completed = 0u64;
    while !done.load(Ordering::SeqCst) && Instant::now() < deadline {
        match agent.run_once() {
            Ok(true) => completed += 1,
            // Empty queue, or an injected transport/claim/upload failure:
            // either way, keep polling until the storm is over.
            Ok(false) | Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    completed
}

#[test]
fn chaos_storm_every_job_finishes_exactly_once() {
    let _guard = serial();
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 1500,
        max_attempts: 12,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = env.register_demo_system();
    // Both engines × {1, 2} threads — 4 jobs, small workloads so every job
    // runs in well under a heartbeat timeout.
    let (_project_id, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "engine" => obj! {"sweep" => "all"},
            "threads" => obj! {"sweep" => arr![1, 2]},
            "record_count" => 60,
            "operation_count" => 120,
        },
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();
    let job_count = expected_jobs(&evaluation);
    assert_eq!(job_count, 4);

    // The storm: every boundary of the claim → run → upload protocol
    // misbehaves with seeded probabilities. `http.server.drop_response`
    // is the nasty one — the server *has committed* and only the response
    // dies, which is exactly what the idempotency keys exist for.
    fail::arm("agent.claim", Policy::ErrorProb(0.10));
    fail::arm("agent.heartbeat", Policy::ErrorProb(0.15));
    fail::arm("agent.upload", Policy::ErrorProb(0.15));
    fail::arm("http.server.drop_response", Policy::ErrorProb(0.05));
    // Synthetic budget breaches ride along: each one costs an attempt and
    // re-runs the job, and with max_attempts=12 the storm still must end
    // with every job *finished* — breaches only delay, never lose work.
    fail::arm("agent.budget.breach", Policy::ErrorProb(0.10));
    // The reactor core (the default transport under this storm) takes its
    // own faults: accepts that die before admission, sockets that fail
    // mid-read or mid-write (including after the server committed), and
    // lost completion wakeups that the tick has to absorb.
    fail::arm("http.reactor.accept", Policy::ErrorProb(0.01));
    fail::arm("http.reactor.read", Policy::ErrorProb(0.01));
    fail::arm("http.reactor.write", Policy::ErrorProb(0.01));
    fail::arm("http.reactor.wakeup", Policy::ErrorProb(0.05));

    let deadline = Instant::now() + Duration::from_secs(90);
    let base_url = env.server.base_url();
    let token = env.admin_token.clone();
    let deployment = Id::parse_base32(&deployment_id).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let agents: Vec<_> = (0..2)
        .map(|i| {
            let base_url = base_url.clone();
            let token = token.clone();
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name(format!("chaos-agent-{i}"))
                .spawn(move || storm_agent(&base_url, &token, deployment, &done, deadline))
                .unwrap()
        })
        .collect();

    // Watch from the control side (in-process, unaffected by the armed
    // failpoints) and stop the agents once every job settled exactly once.
    let control = env.server.control();
    let evaluation = Id::parse_base32(&evaluation_id).unwrap();
    while Instant::now() < deadline {
        let jobs = control.list_jobs(evaluation).unwrap();
        if jobs.len() == job_count
            && jobs.iter().all(|j| j.state == JobState::Finished)
            && control.count_results() == job_count
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    done.store(true, Ordering::SeqCst);
    let completed: u64 = agents.into_iter().map(|h| h.join().unwrap()).sum();

    fail::reset();

    // Exactly-once: every job finished, and the number of stored results is
    // exactly the number of jobs — reclaims, retried uploads and dropped
    // responses must all have deduplicated.
    let jobs = control.list_jobs(evaluation).unwrap();
    assert_eq!(jobs.len(), job_count, "jobs vanished {}", replay());
    for job in &jobs {
        assert_eq!(
            job.state,
            JobState::Finished,
            "job {} ended {:?} after {} attempts (agents completed {completed}) {}",
            job.id,
            job.state,
            job.attempts,
            replay()
        );
        assert!(job.result_id.is_some(), "finished job {} has no result {}", job.id, replay());
    }
    assert_eq!(
        control.count_results(),
        job_count,
        "stored results != jobs: duplicate or lost uploads {}",
        replay()
    );
    // `completed` counts runs the *agents* saw succeed; a job whose final
    // upload response was eaten still finishes server-side, so this can
    // undercount — it must never overcount past one success per attempt.
    assert!(completed >= 1, "no agent ever completed a job {}", replay());
}

/// A breach storm against a *tight* attempt limit: jobs whose seeded
/// budget breaches exhaust `max_attempts` must land in quarantine, the
/// rest must finish exactly once, and the two sets together must account
/// for every job — no limbo states, no resurrections, no lost results.
#[test]
fn chaos_breach_storm_quarantines_poison_jobs_and_finishes_the_rest() {
    let _guard = serial();
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 30_000,
        max_attempts: 2,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = env.register_demo_system();
    // 2 engines × 3 thread counts — 6 jobs, enough for the seeded draws to
    // produce both quarantines and clean finishes.
    let (_project_id, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "engine" => obj! {"sweep" => "all"},
            "threads" => obj! {"sweep" => arr![1, 2, 3]},
            "record_count" => 40,
            "operation_count" => 80,
        },
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();
    let job_count = expected_jobs(&evaluation);
    assert_eq!(job_count, 6);

    // Only the breach site is armed: attempt accounting must be driven by
    // budget kills alone, so `attempts` on a quarantined job is exactly
    // the number of breaches it took.
    fail::arm("agent.budget.breach", Policy::ErrorProb(0.70));

    let deadline = Instant::now() + Duration::from_secs(90);
    let deployment = Id::parse_base32(&deployment_id).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let agent = {
        let base_url = env.server.base_url();
        let token = env.admin_token.clone();
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name("breach-agent".into())
            .spawn(move || storm_agent(&base_url, &token, deployment, &done, deadline))
            .unwrap()
    };

    let control = env.server.control();
    let evaluation = Id::parse_base32(&evaluation_id).unwrap();
    while Instant::now() < deadline {
        let jobs = control.list_jobs(evaluation).unwrap();
        if jobs.len() == job_count
            && jobs.iter().all(|j| matches!(j.state, JobState::Finished | JobState::Quarantined))
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    done.store(true, Ordering::SeqCst);
    let _ = agent.join().unwrap();
    fail::reset();

    let jobs = control.list_jobs(evaluation).unwrap();
    assert_eq!(jobs.len(), job_count, "jobs vanished {}", replay());
    let finished = jobs.iter().filter(|j| j.state == JobState::Finished).count();
    let quarantined = jobs.iter().filter(|j| j.state == JobState::Quarantined).count();
    assert_eq!(
        finished + quarantined,
        job_count,
        "every job must settle as finished or quarantined {}",
        replay()
    );
    for job in &jobs {
        match job.state {
            JobState::Finished => {
                assert!(job.result_id.is_some(), "finished {} has no result {}", job.id, replay())
            }
            JobState::Quarantined => {
                assert_eq!(job.attempts, 2, "quarantine fires at max_attempts {}", replay());
                assert!(
                    job.result_id.is_none(),
                    "quarantined {} has a result {}",
                    job.id,
                    replay()
                );
                let failure = job.failure.clone().unwrap_or_default();
                assert!(
                    failure.starts_with("budget_exceeded:"),
                    "quarantine cause is the typed breach: {failure} {}",
                    replay()
                );
                // Terminal means terminal: no manual resurrection...
                assert!(
                    control.reschedule_job(job.id).is_err(),
                    "quarantined job {} was rescheduled {}",
                    job.id,
                    replay()
                );
            }
            other => panic!("job {} in limbo state {:?} {}", job.id, other, replay()),
        }
    }
    // ...and no agent-side resurrection: the queue is permanently empty.
    let probe = ControlClient::new(&env.server.base_url(), &env.admin_token);
    assert!(probe.claim(deployment).unwrap().is_none(), "quarantined job resurfaced {}", replay());
    // Exactly-once on the success side: stored results == finished jobs.
    assert_eq!(control.count_results(), finished, "duplicate or lost uploads {}", replay());
    // Under the default seed the draws produce both outcomes; a custom
    // replay seed may legitimately produce all-finished or all-quarantined.
    if chaos_seed() == 0xBADCAB {
        assert!(quarantined >= 1, "default seed produced no quarantine");
        assert!(finished >= 1, "default seed finished nothing");
    }
}

#[test]
fn zombie_agent_is_fenced_after_lease_loss() {
    let _guard = serial();
    // Short leases + a 500 ms sweeper: a claimed job with no heartbeats is
    // rescheduled in well under two seconds.
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 400,
        max_attempts: 3,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 40, "operation_count" => 40});
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});

    let deployment = Id::parse_base32(&deployment_id).unwrap();
    let zombie = ControlClient::new(&env.server.base_url(), &env.admin_token);
    let job = zombie.claim(deployment).unwrap().expect("a job to claim");
    assert_eq!(job.attempts, 1);

    // The zombie goes silent. The sweeper must take the lease away.
    let start = Instant::now();
    loop {
        let state = env.server.control().get_job(job.id).unwrap();
        if state.state == JobState::Scheduled && state.attempts == 1 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "sweeper never rescheduled the stalled job (state {:?}) {}",
            state.state,
            replay()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // A healthy agent picks the job up (attempt 2) and finishes it.
    let healthy = ControlClient::new(&env.server.base_url(), &env.admin_token);
    let reclaimed = healthy.claim(deployment).unwrap().expect("rescheduled job");
    assert_eq!(reclaimed.id, job.id, "different job came back {}", replay());
    assert_eq!(reclaimed.attempts, 2);
    healthy.heartbeat(reclaimed.id, 50, reclaimed.attempts).unwrap();
    let result_id = healthy
        .upload_result(reclaimed.id, reclaimed.attempts, &obj! {"ops" => 40}, b"zip")
        .unwrap();

    // The zombie wakes up and tries to act on its stale lease: every write
    // is fenced with the distinct lease-lost error, not a generic conflict.
    match zombie.heartbeat(job.id, 99, job.attempts) {
        Err(chronos::agent::AgentError::LeaseLost { .. }) => {}
        other => panic!("zombie heartbeat not fenced: {other:?} {}", replay()),
    }
    match zombie.upload_result(job.id, job.attempts, &obj! {"ops" => 40}, b"zombie") {
        Err(chronos::agent::AgentError::LeaseLost { .. }) => {}
        other => panic!("zombie upload not fenced: {other:?} {}", replay()),
    }
    match zombie.fail(job.id, job.attempts, "zombie dying") {
        Err(chronos::agent::AgentError::LeaseLost { .. }) => {}
        other => panic!("zombie fail not fenced: {other:?} {}", replay()),
    }

    // The healthy result is the only one, and it is untouched.
    let control = env.server.control();
    assert_eq!(control.count_results(), 1, "zombie write landed {}", replay());
    let job = control.get_job(job.id).unwrap();
    assert_eq!(job.state, JobState::Finished);
    assert_eq!(job.result_id, Some(result_id));
}

#[test]
fn dropped_response_after_commit_is_deduplicated() {
    let _guard = serial();
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 40, "operation_count" => 40});
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});

    let deployment = Id::parse_base32(&deployment_id).unwrap();
    let client = ControlClient::new(&env.server.base_url(), &env.admin_token);
    let job = client.claim(deployment).unwrap().expect("a job to claim");

    // The server commits the result, then the connection dies before the
    // response leaves. The client's retry carries the same idempotency key,
    // so the second processing must return the already-stored result
    // instead of storing a duplicate.
    fail::arm("http.server.drop_response", Policy::ErrorTimes(1));
    let result_id = client
        .upload_result(job.id, job.attempts, &obj! {"ops" => 40}, b"zip")
        .unwrap_or_else(|e| panic!("retried upload failed: {e} {}", replay()));
    fail::disarm("http.server.drop_response");

    let control = env.server.control();
    assert_eq!(control.count_results(), 1, "duplicate result stored {}", replay());
    let job = control.get_job(job.id).unwrap();
    assert_eq!(job.state, JobState::Finished);
    assert_eq!(job.result_id, Some(result_id), "retry returned a different result {}", replay());

    // Same story for the claim: a lost claim response + retried claim with
    // the same key must not strand a second job in Running.
    fail::arm("http.server.drop_response", Policy::ErrorTimes(1));
    let second = client.claim(deployment).unwrap();
    fail::disarm("http.server.drop_response");
    if let Some(second) = second {
        let running = control
            .list_jobs(second.evaluation_id)
            .unwrap()
            .into_iter()
            .filter(|j| j.state == JobState::Running)
            .count();
        assert_eq!(running, 1, "retried claim left extra jobs running {}", replay());
    }
}

/// A cooperating background client hammering the health endpoint with
/// connection-per-request sockets: the offered load that pushes the bounded
/// server past its admission limits while the agents work. Honors the shed
/// `X-Chronos-Retry-After-Ms` hint (capped so the storm keeps blowing).
fn swarm_client(addr: std::net::SocketAddr, done: &AtomicBool) -> (u64, u64, u64) {
    use std::io::{Read, Write};
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    while !done.load(Ordering::SeqCst) {
        let outcome = (|| -> Option<u16> {
            let mut stream = std::net::TcpStream::connect(addr).ok()?;
            stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: swarm\r\nConnection: close\r\n\r\n")
                .ok()?;
            let mut raw = Vec::new();
            stream.read_to_end(&mut raw).ok()?;
            String::from_utf8_lossy(&raw).split_whitespace().nth(1).and_then(|s| s.parse().ok())
        })();
        match outcome {
            Some(status) if (200..300).contains(&status) => {
                ok += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Some(429) | Some(503) => {
                shed += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            // Dropped responses are expected here: the storm arms
            // `http.server.drop_response` against everyone, swarm included.
            _ => errors += 1,
        }
    }
    (ok, shed, errors)
}

/// The overload storm: a deliberately *undersized* bounded server (five
/// workers, no queue — just enough for the fixture client, two agent
/// connections and their per-job heartbeat connections) takes a fault
/// storm *and* a health-check swarm at the same time. Admission control
/// sheds the excess with typed 429s, the agents retry through it, and at
/// the end a graceful drain completes cleanly with every accepted job
/// finished exactly once.
#[test]
fn overload_storm_every_accepted_job_finishes_and_drain_is_clean() {
    let _guard = serial();
    let mut env = TestEnv::start_with_server(
        SchedulerConfig { heartbeat_timeout_millis: 1500, max_attempts: 12, auto_reschedule: true },
        chronos::http::Server::new()
            .workers(5)
            .queue_depth(0)
            .retry_after(Duration::from_millis(10)),
    );
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project_id, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "engine" => obj! {"sweep" => "all"},
            "record_count" => 60,
            "operation_count" => 120,
        },
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();
    let job_count = expected_jobs(&evaluation);
    assert_eq!(job_count, 2);

    fail::arm("agent.heartbeat", Policy::ErrorProb(0.10));
    fail::arm("http.server.drop_response", Policy::ErrorProb(0.03));
    // Transport-level faults on the reactor core: the accounting identity
    // (`accepted == completed + shed` at drain) must hold even when accepts
    // die pre-admission, sockets break mid-read/mid-write, and completion
    // wakeups are lost (the tick heartbeat has to absorb those).
    fail::arm("http.reactor.accept", Policy::ErrorProb(0.01));
    fail::arm("http.reactor.read", Policy::ErrorProb(0.01));
    fail::arm("http.reactor.write", Policy::ErrorProb(0.01));
    fail::arm("http.reactor.wakeup", Policy::ErrorProb(0.05));

    let deadline = Instant::now() + Duration::from_secs(90);
    let base_url = env.server.base_url();
    let addr = env.server.addr();
    let token = env.admin_token.clone();
    let deployment = Id::parse_base32(&deployment_id).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let agents: Vec<_> = (0..2)
        .map(|i| {
            let base_url = base_url.clone();
            let token = token.clone();
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name(format!("overload-agent-{i}"))
                .spawn(move || storm_agent(&base_url, &token, deployment, &done, deadline))
                .unwrap()
        })
        .collect();
    let swarm: Vec<_> = (0..2)
        .map(|i| {
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name(format!("overload-swarm-{i}"))
                .spawn(move || swarm_client(addr, &done))
                .unwrap()
        })
        .collect();

    // Watch from the control side until every job settled.
    let control = Arc::clone(env.server.control());
    let evaluation = Id::parse_base32(&evaluation_id).unwrap();
    while Instant::now() < deadline {
        let jobs = control.list_jobs(evaluation).unwrap();
        if jobs.len() == job_count
            && jobs.iter().all(|j| j.state == JobState::Finished)
            && control.count_results() == job_count
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    done.store(true, Ordering::SeqCst);
    let completed: u64 = agents.into_iter().map(|h| h.join().unwrap()).sum();
    let (swarm_ok, swarm_shed, _swarm_errors) = swarm
        .into_iter()
        .map(|h| h.join().unwrap())
        .fold((0, 0, 0), |acc, c| (acc.0 + c.0, acc.1 + c.1, acc.2 + c.2));

    fail::reset();

    // Exactly-once under overload: the storm must not have lost or
    // duplicated any accepted job.
    let jobs = control.list_jobs(evaluation).unwrap();
    assert_eq!(jobs.len(), job_count, "jobs vanished {}", replay());
    for job in &jobs {
        assert_eq!(
            job.state,
            JobState::Finished,
            "job {} ended {:?} after {} attempts (agents completed {completed}) {}",
            job.id,
            job.state,
            job.attempts,
            replay()
        );
        assert!(job.result_id.is_some(), "finished job {} has no result {}", job.id, replay());
    }
    assert_eq!(control.count_results(), job_count, "duplicate or lost uploads {}", replay());
    assert!(completed >= 1, "no agent ever completed a job {}", replay());

    // The storm really overloaded admission (the swarm got typed sheds,
    // not hangs or resets), and some health checks still got through.
    let metrics = env.server.metrics();
    assert!(swarm_shed >= 1, "swarm was never shed — server not overloaded {}", replay());
    assert!(swarm_ok >= 1, "no health check ever admitted during the storm {}", replay());
    assert!(metrics.shed_overload.get() >= swarm_shed, "server-side shed accounting {}", replay());

    // Graceful drain after the storm: no in-flight request is dropped, the
    // pool never panicked, and teardown completes inside the drain window.
    assert!(env.server.drain(), "drain timed out with requests in flight {}", replay());
    assert!(env.server.is_draining());
    assert_eq!(env.server.pool_panics(), 0, "worker pool panicked during the storm {}", replay());
}
