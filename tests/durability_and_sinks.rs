//! Long-running-evaluation realism: Chronos Control survives a full restart
//! on its durable store mid-evaluation (requirement *(iii)*), result
//! archives can be off-loaded to a NAS-style sink (paper §2.2), the
//! tpcc-lite client runs through the whole REST stack, and analysts can
//! export CSV.

mod common;

use std::sync::Arc;
use std::time::Duration;

use chronos::agent::{
    AgentConfig, ChronosAgent, ControlClient, DocstoreClient, LocalDirSink, TpccClient,
};
use chronos::core::auth::Role;
use chronos::core::store::MetadataStore;
use chronos::core::ChronosControl;
use chronos::json::{arr, obj, Value};
use chronos::server::ChronosServer;
use chronos::util::{Id, SystemClock};
use common::TestEnv;

#[test]
fn control_restart_mid_evaluation_resumes_from_the_log() {
    let store_path =
        std::env::temp_dir().join(format!("chronos-e2e-restart-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&store_path);

    let start_server = || {
        let control = Arc::new(ChronosControl::new(
            MetadataStore::open(&store_path).unwrap(),
            Arc::new(SystemClock),
            chronos::core::scheduler::SchedulerConfig {
                heartbeat_timeout_millis: 800,
                max_attempts: 3,
                auto_reschedule: true,
            },
        ));
        if control.find_user("admin").is_none() {
            control.create_user("admin", "pw", Role::Admin).unwrap();
        }
        ChronosServer::start(control, "127.0.0.1:0").unwrap()
    };

    // Phase 1: set everything up, run one of two jobs, crash mid-second-job.
    let (deployment_id, evaluation_id);
    {
        let server = start_server();
        let control = Arc::clone(server.control());
        let system = control
            .register_system(
                "sut",
                "",
                vec![chronos::core::params::ParamDef::new(
                    "threads",
                    "",
                    chronos::core::params::ParamType::Interval { min: 1, max: 4, step: 1 },
                    Value::from(1),
                )
                .unwrap()],
                vec![],
            )
            .unwrap();
        let deployment = control.create_deployment(system.id, "node", "1").unwrap();
        deployment_id = deployment.id;
        let owner = control.find_user("admin").unwrap();
        let project = control.create_project("p", "", owner.id).unwrap();
        let experiment = control
            .create_experiment(
                project.id,
                system.id,
                "e",
                "",
                chronos::core::params::ParamAssignments::new()
                    .sweep("threads", vec![Value::from(1), Value::from(2)]),
            )
            .unwrap();
        let evaluation = control.create_evaluation(experiment.id).unwrap();
        evaluation_id = evaluation.id;
        // Finish job 1 via the core API; claim job 2 and "crash".
        let job1 = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        control.finish_job(job1.id, obj! {"ok" => 1}, vec![], None, None).unwrap();
        control.claim_next_job(deployment.id, None).unwrap().unwrap();
        // Server (and the claimed job's agent) die here.
    }

    // Phase 2: a fresh server over the same store sees everything; the
    // orphaned running job is failed by the sweeper and re-scheduled.
    {
        let server = start_server();
        let control = Arc::clone(server.control());
        let status = control.evaluation_status(evaluation_id).unwrap();
        assert_eq!(status.finished, 1, "completed work survived the restart");
        // Wait for the sweeper to reap the orphaned lease.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let status = control.evaluation_status(evaluation_id).unwrap();
            if status.scheduled == 1 && status.running == 0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "sweeper never reaped: {status:?}");
            std::thread::sleep(Duration::from_millis(100));
        }
        // A healthy agent finishes the evaluation.
        let job = control.claim_next_job(deployment_id, None).unwrap().unwrap();
        control.finish_job(job.id, obj! {"ok" => 2}, vec![], None, None).unwrap();
        let status = control.evaluation_status(evaluation_id).unwrap();
        assert_eq!(status.finished, 2);
        assert!(status.is_settled());
    }
    std::fs::remove_file(&store_path).unwrap();
}

#[test]
fn nas_sink_offloads_archives_from_control() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_p, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 60, "operation_count" => 120});
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();

    let sink_dir = std::env::temp_dir().join(format!("chronos-nas-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sink_dir);
    let client = ControlClient::new(&env.server.base_url(), &env.admin_token);
    let mut config = AgentConfig::new(Id::parse_base32(&deployment_id).unwrap());
    config.heartbeat_interval = Duration::from_millis(100);
    config.sink = Box::new(LocalDirSink::new(&sink_dir));
    let mut agent = ChronosAgent::new(client, config, DocstoreClient::new());
    assert_eq!(agent.run_until_idle(Duration::from_millis(300)).unwrap(), 1);

    // The control-side result is tiny (no inline archive)...
    let evaluation = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    let job_id = evaluation.pointer("/job_ids/0").and_then(Value::as_str).unwrap().to_string();
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    let result_id = job.get("result_id").and_then(Value::as_str).unwrap();
    let result = env.get(&format!("/api/v1/results/{result_id}"));
    assert_eq!(result.get("archive_bytes").and_then(Value::as_u64), Some(0));
    // ...but carries a reference to the NAS copy, which is a valid zip.
    let reference = result
        .pointer("/data/archive_ref")
        .and_then(Value::as_str)
        .expect("archive_ref present")
        .to_string();
    let bytes = std::fs::read(&reference).unwrap();
    let zip = chronos::zip::ZipArchive::parse(&bytes).unwrap();
    assert!(zip.names().contains(&"result.json"));
    assert!(zip.names().contains(&"throughput.csv"));
    std::fs::remove_dir_all(&sink_dir).unwrap();
}

#[test]
fn tpcc_client_through_the_full_stack() {
    let env = TestEnv::start();
    // A second SuE with the tpcc parameter schema.
    let system = env.post(
        "/api/v1/systems",
        &obj! {
            "name" => "minidoc-tpcc",
            "parameters" => arr![
                obj! {"name" => "engine", "type" => "checkbox",
                       "options" => arr!["wiredtiger", "mmapv1"], "default" => "wiredtiger"},
                obj! {"name" => "warehouses", "type" => "value", "default" => 1},
                obj! {"name" => "transaction_count", "type" => "value", "default" => 200},
                obj! {"name" => "threads", "type" => "interval", "min" => 1, "max" => 8, "step" => 1, "default" => 2},
            ],
            "charts" => arr![],
        },
    );
    let system_id = system.get("id").and_then(Value::as_str).unwrap().to_string();
    let deployment = env.post(
        &format!("/api/v1/systems/{system_id}/deployments"),
        &obj! {"environment" => "tpcc-node", "version" => "1.0.0"},
    );
    let deployment_id = deployment.get("id").and_then(Value::as_str).unwrap().to_string();
    let (_p, experiment_id) =
        env.create_demo_experiment(&system_id, obj! {"engine" => obj! {"sweep" => "all"}});
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();

    let client = ControlClient::new(&env.server.base_url(), &env.admin_token);
    let mut config = AgentConfig::new(Id::parse_base32(&deployment_id).unwrap());
    config.heartbeat_interval = Duration::from_millis(100);
    let mut agent = ChronosAgent::new(client, config, TpccClient::new());
    assert_eq!(agent.run_until_idle(Duration::from_millis(300)).unwrap(), 2);

    let summary = env.get(&format!("/api/v1/evaluations/{evaluation_id}/summary"));
    let rows = summary.get("rows").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 2);
    for job in env.get(&format!("/api/v1/evaluations/{evaluation_id}/jobs")).as_array().unwrap() {
        let result_id = job.get("result_id").and_then(Value::as_str).unwrap();
        let result = env.get(&format!("/api/v1/results/{result_id}"));
        assert!(
            result.pointer("/data/new_orders_per_minute").and_then(Value::as_f64).unwrap() > 0.0
        );
        assert_eq!(result.pointer("/data/total_errors").and_then(Value::as_u64), Some(0));
    }
}

#[test]
fn csv_export_has_parameter_and_metric_columns() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_p, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "engine" => obj! {"sweep" => "all"},
            "record_count" => 60,
            "operation_count" => 120,
        },
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap();
    env.run_agent(&deployment_id);
    let response = env.get_raw(&format!("/api/v1/evaluations/{evaluation_id}/summary.csv"));
    assert!(response.status.is_success());
    assert!(response.headers.get("content-type").unwrap().starts_with("text/csv"));
    let csv = String::from_utf8_lossy(&response.body).into_owned();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("job_id,"));
    for column in ["engine", "threads", "throughput_ops_per_sec", "total_errors"] {
        assert!(header.contains(column), "missing column {column} in {header}");
    }
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 2, "one row per finished job");
    assert!(rows.iter().any(|r| r.contains("wiredtiger")));
    assert!(rows.iter().any(|r| r.contains("mmapv1")));
    // Every row has the same number of columns as the header.
    let columns = header.split(',').count();
    for row in rows {
        assert_eq!(row.split(',').count(), columns, "{row}");
    }
}
