//! Golden-wire fixtures for the v1 (and frozen v0) API contract.
//!
//! Every canonical request/response body is frozen byte-for-byte (key order
//! included — `chronos-json` writes maps in insertion order) under
//! `tests/fixtures/api_v1/`. The fixtures were captured from the wire shapes
//! *before* the typed `chronos-api` contract layer existed; every body below
//! is now produced by that layer (DTO encoders, the error envelope, version
//! negotiation), so these tests prove the refactor changed zero bytes on the
//! wire.
//!
//! Regenerating (only when the contract intentionally changes):
//! `CHRONOS_BLESS=1 cargo test --test wire_compat`.

use chronos::api::v1;
use chronos::api::{ApiIndex, ApiVersion, ErrorEnvelope, JobState, WireDecode, WireEncode};
use chronos::core::auth::{Role, User};
use chronos::core::charts::ChartSpec;
use chronos::core::jobsource::Frontier;
use chronos::core::model::{
    Deployment, Evaluation, Experiment, Job, JobResult, Project, System, TimelineEvent,
};
use chronos::core::params::{ParamAssignments, ParamDef, ParamType};
use chronos::core::scheduler::EvaluationStatus;
use chronos::core::{AdaptiveConfig, JobSourceState, Strategy};
use chronos::json::{obj, Value};
use chronos::util::Id;

/// Pinned entity id: fixtures must be reproducible run-to-run.
fn id(n: u128) -> Id {
    Id::from_u128(n)
}

/// Pinned timestamps (unix millis), far enough apart to look real.
const T0: u64 = 1_700_000_000_000;
const T1: u64 = 1_700_000_001_000;
const T2: u64 = 1_700_000_002_000;

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/api_v1")
}

/// Compares `actual` against the frozen fixture, byte for byte. With
/// `CHRONOS_BLESS=1` the fixture is (re)written instead.
fn golden(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("CHRONOS_BLESS").is_some() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e} (run with CHRONOS_BLESS=1)", name));
    assert_eq!(
        actual, expected,
        "wire contract drift in {name}: the encoded bytes no longer match the frozen fixture"
    );
}

// ---------------------------------------------------------------------------
// Pinned entities shared across fixtures
// ---------------------------------------------------------------------------

fn fixture_user() -> User {
    User {
        id: id(1),
        username: "ada".into(),
        password_hash: "salt$00ff".into(),
        role: Role::Admin,
        created_at: T0,
    }
}

fn fixture_system() -> System {
    System {
        id: id(2),
        name: "minidoc".into(),
        description: "embedded document store".into(),
        parameters: vec![ParamDef::new(
            "threads",
            "client threads",
            ParamType::Interval { min: 1, max: 8, step: 1 },
            Value::from(1),
        )
        .unwrap()],
        charts: vec![ChartSpec::from_json(&obj! {
            "kind" => "line",
            "title" => "Throughput by thread count",
            "x_param" => "threads",
            "series_param" => "engine",
            "value_path" => "/throughput_ops_per_sec",
            "y_label" => "ops/s",
        })
        .unwrap()],
        created_at: T0,
    }
}

fn fixture_deployment() -> Deployment {
    Deployment {
        id: id(3),
        system_id: id(2),
        environment: "test-node".into(),
        version: "0.1.0".into(),
        active: true,
        created_at: T0,
    }
}

fn fixture_project() -> Project {
    Project {
        id: id(4),
        name: "demo project".into(),
        description: "integration test".into(),
        members: vec![id(1)],
        archived: false,
        created_at: T0,
    }
}

fn fixture_experiment() -> Experiment {
    Experiment {
        id: id(5),
        project_id: id(4),
        system_id: id(2),
        name: "engine comparison".into(),
        description: "".into(),
        assignments: ParamAssignments::new().fix("threads", 4),
        archived: false,
        created_at: T1,
        strategy: Strategy::Grid,
        budget: None,
    }
}

fn fixture_evaluation() -> Evaluation {
    Evaluation {
        id: id(6),
        experiment_id: id(5),
        job_ids: vec![id(7)],
        swept_params: vec!["threads".into()],
        created_at: T1,
        source: None,
    }
}

fn fixture_job() -> Job {
    Job {
        id: id(7),
        evaluation_id: id(6),
        system_id: id(2),
        parameters: obj! {"threads" => 4},
        state: JobState::Running,
        deployment_id: Some(id(3)),
        progress: 42,
        log: "line1\nline2\n".into(),
        timeline: vec![
            TimelineEvent {
                at: T0,
                kind: "created".into(),
                message: "job created and scheduled".into(),
            },
            TimelineEvent { at: T1, kind: "running".into(), message: "claimed by agent".into() },
        ],
        heartbeat_at: Some(T2),
        attempts: 1,
        claim_key: Some("claim-fixture-key".into()),
        result_key: None,
        result_id: None,
        failure: None,
        created_at: T0,
        point_index: None,
        budget: None,
    }
}

fn fixture_result() -> JobResult {
    JobResult {
        id: id(8),
        job_id: id(7),
        data: obj! {"throughput_ops_per_sec" => 1234.5},
        archive: vec![0u8; 16],
        created_at: T2,
    }
}

fn fixture_status() -> EvaluationStatus {
    EvaluationStatus {
        scheduled: 1,
        running: 2,
        finished: 3,
        aborted: 0,
        failed: 1,
        quarantined: 0,
        remaining: None,
    }
}

/// The adaptive strategy pinned by the lazy-evaluation fixtures.
fn fixture_adaptive() -> Strategy {
    Strategy::Adaptive(AdaptiveConfig {
        seed: 42,
        initial: Some(4),
        eta: 2,
        metric: "/throughput_ops_per_sec".into(),
        maximize: true,
    })
}

// ---------------------------------------------------------------------------
// Version negotiation + error envelope
// ---------------------------------------------------------------------------

#[test]
fn version_and_index_bodies() {
    golden("version_v1.json", &ApiVersion::V1.version_body().to_string());
    golden("version_v0.json", &ApiVersion::V0.version_body().to_string());
    golden("api_index.json", &ApiIndex::default().encode());
}

#[test]
fn error_envelope_bodies() {
    golden(
        "error_invalid.json",
        &ErrorEnvelope::status(400, "missing field \"username\"").encode(),
    );
    golden(
        "error_lease_lost.json",
        &ErrorEnvelope::lease_lost("heartbeat rejected: stale attempt").encode(),
    );
    // The server's error mapping must produce the same bytes as the bare
    // envelope encoders used by clients.
    let response = chronos::http::Response::error(
        chronos::http::Status::BAD_REQUEST,
        "missing field \"username\"",
    );
    golden("error_invalid.json", &String::from_utf8(response.body).unwrap());
}

// ---------------------------------------------------------------------------
// Cluster protocol (leader/follower replication, votes, status)
// ---------------------------------------------------------------------------

#[test]
fn cluster_protocol_bodies() {
    // A not_leader refusal with and without the leader hint: followers emit
    // the hint once they know a leader; mid-election the field is absent
    // entirely (not null) so pre-cluster decoders never see a new field.
    golden(
        "error_not_leader.json",
        &ErrorEnvelope::not_leader(
            "this node is not the leader",
            Some("http://10.0.0.1:8080".into()),
        )
        .encode(),
    );
    golden(
        "error_not_leader_no_hint.json",
        &ErrorEnvelope::not_leader("election in progress", None).encode(),
    );
    let replicate = v1::ReplicateRequest {
        term: 7,
        leader: "http://10.0.0.1:8080".into(),
        start_offset: 4096,
        checksum: 0x00ab_cdef_0123_4567,
        frames:
            b"{\"op\":\"put\",\"kind\":\"job\",\"id\":\"j1\",\"doc\":{\"state\":\"finished\"}}\n"
                .to_vec(),
    };
    golden("cluster_replicate_request.json", &replicate.encode());
    golden("cluster_replicate_ack.json", &v1::ReplicateAck { term: 7, offset: 4161 }.encode());
    let vote =
        v1::VoteRequest { term: 8, candidate: "http://10.0.0.2:8080".into(), last_offset: 4161 };
    golden("cluster_vote_request.json", &vote.encode());
    golden("cluster_vote_response.json", &v1::VoteResponse { term: 8, granted: true }.encode());
    let status = v1::ClusterStatusDto {
        node: "node-2".into(),
        role: "follower".into(),
        term: 8,
        leader: Some("http://10.0.0.1:8080".into()),
        offset: 4161,
        lag_millis: 120,
        elections: 1,
        segments_shipped: 42,
    };
    golden("cluster_status.json", &status.encode());
    // Mid-election the leader field is omitted (mirrors the hint rule).
    let candidate = v1::ClusterStatusDto {
        node: "node-3".into(),
        role: "candidate".into(),
        term: 9,
        leader: None,
        offset: 4161,
        lag_millis: 900,
        elections: 2,
        segments_shipped: 0,
    };
    golden("cluster_status_candidate.json", &candidate.encode());
    // Round-trip: every cluster DTO decodes back to itself from its frozen
    // bytes (strict for requests, lenient for the status entity).
    assert_eq!(v1::ReplicateRequest::decode(&replicate.to_value()).unwrap(), replicate);
    assert_eq!(v1::VoteRequest::decode(&vote.to_value()).unwrap(), vote);
    assert_eq!(v1::ClusterStatusDto::decode(&status.to_value()).unwrap(), status);
}

// ---------------------------------------------------------------------------
// Auth + users
// ---------------------------------------------------------------------------

#[test]
fn auth_bodies() {
    let login = v1::LoginRequest { username: "admin".into(), password: "admin-pw".into() };
    golden("login_request.json", &login.encode());
    golden("login_response.json", &v1::LoginResponse { token: "tok-fixture".into() }.encode());
    golden("logout_response.json", &v1::LogoutResponse { revoked: true }.encode());
    // Served user documents redact the password hash.
    golden("user.json", &fixture_user().to_public_json().to_string());
}

// ---------------------------------------------------------------------------
// Entities (CRUD responses)
// ---------------------------------------------------------------------------

#[test]
fn entity_bodies() {
    golden("system.json", &fixture_system().to_json().to_string());
    golden("deployment.json", &fixture_deployment().to_json().to_string());
    golden("project.json", &fixture_project().to_json().to_string());
    golden("experiment.json", &fixture_experiment().to_json().to_string());
    golden("evaluation.json", &fixture_evaluation().to_json().to_string());
    golden("evaluation_status.json", &fixture_status().to_json().to_string());
    // GET /api/v1/evaluations/:id — the evaluation with its status roll-up.
    let mut detail = fixture_evaluation().to_json();
    detail.set("status", fixture_status().to_json());
    golden("evaluation_detail.json", &detail.to_string());
    golden("job.json", &fixture_job().to_json().to_string());
    // Listing view: the log and timeline are omitted.
    golden("job_listing_item.json", &fixture_job().to_json_summary().to_string());
    golden("job_result.json", &fixture_result().to_json().to_string());
}

#[test]
fn request_bodies() {
    let deployment =
        v1::CreateDeploymentRequest { environment: "test-node".into(), version: "0.1.0".into() };
    golden("create_deployment_request.json", &deployment.encode());
    let project = v1::CreateProjectRequest {
        name: "demo project".into(),
        description: "integration test".into(),
    };
    golden("create_project_request.json", &project.encode());
    let experiment = v1::CreateExperimentRequest {
        name: "engine comparison".into(),
        system_id: id(2),
        description: "".into(),
        parameters: Some(fixture_experiment().assignments.to_json()),
        strategy: None,
        budget: None,
    };
    golden("create_experiment_request.json", &experiment.encode());
}

// ---------------------------------------------------------------------------
// Lazy evaluations + adaptive scheduling
// ---------------------------------------------------------------------------

#[test]
fn lazy_and_adaptive_bodies() {
    // A lazy grid evaluation mid-iteration: the source cursor rides the
    // evaluation document.
    let mut evaluation = fixture_evaluation();
    evaluation.source = Some(JobSourceState {
        strategy: Strategy::Grid,
        total_points: 8,
        materialized: 1,
        frontier: None,
    });
    golden("evaluation_lazy_grid.json", &evaluation.to_json().to_string());

    // An adaptive evaluation on rung 1 with one recorded pruning decision.
    let mut evaluation = fixture_evaluation();
    evaluation.source = Some(JobSourceState {
        strategy: fixture_adaptive(),
        total_points: 8,
        materialized: 5,
        frontier: Some(Frontier {
            rung: 1,
            candidates: vec![2, 5],
            issued: 1,
            job_ids: vec![id(7)],
            decisions: vec![obj! {
                "rung" => 0u64,
                "candidates" => Value::Array(vec![2u64, 3, 5, 6].into_iter().map(Value::from).collect()),
                "scores" => Value::Array(vec![
                    Value::from(1800.0),
                    Value::from(900.5),
                    Value::from(2100.0),
                    Value::Null,
                ]),
                "promoted" => Value::Array(vec![2u64, 5].into_iter().map(Value::from).collect()),
            }],
        }),
    });
    let body = evaluation.to_json().to_string();
    golden("evaluation_adaptive.json", &body);
    // The document reads back losslessly through the core decoder.
    assert_eq!(Evaluation::from_json(&chronos::json::parse(&body).unwrap()).unwrap(), evaluation);

    // An experiment that selected the adaptive strategy.
    let mut experiment = fixture_experiment();
    experiment.strategy = fixture_adaptive();
    golden("experiment_adaptive.json", &experiment.to_json().to_string());

    // Status roll-up of a lazy evaluation: unmaterialized points appear as
    // `remaining_space`, count into `total`, and hold back `settled`.
    let status = EvaluationStatus {
        scheduled: 1,
        running: 2,
        finished: 3,
        aborted: 0,
        failed: 1,
        quarantined: 0,
        remaining: Some(5),
    };
    golden("evaluation_status_lazy.json", &status.to_json().to_string());

    // A lazily-materialized job carries its point index.
    let mut job = fixture_job();
    job.point_index = Some(3);
    golden("job_point_index.json", &job.to_json().to_string());
    golden("job_point_index_listing_item.json", &job.to_json_summary().to_string());

    // The create-experiment request opting into adaptive scheduling.
    let request = v1::CreateExperimentRequest {
        name: "engine comparison".into(),
        system_id: id(2),
        description: "".into(),
        parameters: Some(fixture_experiment().assignments.to_json()),
        strategy: Some(fixture_adaptive().dto()),
        budget: None,
    };
    golden("create_experiment_adaptive_request.json", &request.encode());
    let decoded = v1::CreateExperimentRequest::decode(&request.to_value()).unwrap();
    assert_eq!(decoded.strategy, request.strategy);

    // Stats with outstanding lazy points across the installation.
    let stats = v1::StatsResponse {
        scheduled: 1,
        running: 2,
        finished: 3,
        aborted: 0,
        failed: 1,
        quarantined: 0,
        remaining_space: 7,
        systems: 1,
        projects: 1,
    };
    golden("stats_lazy.json", &stats.encode());
}

// ---------------------------------------------------------------------------
// Agent protocol
// ---------------------------------------------------------------------------

#[test]
fn agent_protocol_bodies() {
    let claim = v1::ClaimRequest {
        deployment_id: id(3),
        idempotency_key: Some("claim-fixture-key".into()),
    };
    golden("claim_request.json", &claim.encode());
    let heartbeat = v1::HeartbeatRequest { progress: Some(42), attempt: Some(1) };
    golden("heartbeat_request.json", &heartbeat.encode());
    let ack = v1::HeartbeatAck { state: JobState::Running, progress: 42 };
    golden("heartbeat_ack.json", &ack.encode());
    let fail = v1::FailRequest { reason: "set_up failed: disk full".into(), attempt: Some(2) };
    golden("fail_request.json", &fail.encode());
    // The result upload streams its body through the contract's frame
    // writer (no intermediate Value tree) — same bytes either way.
    let upload = v1::UploadResultRequest {
        data: obj! {"throughput_ops_per_sec" => 1234.5},
        archive: vec![0u8; 16],
        attempt: Some(1),
        idempotency_key: Some("result-fixture-key".into()),
    };
    golden("upload_result_request.json", &upload.encode());
    let mut framed = String::new();
    v1::write_upload_frame(
        &mut framed,
        &upload.data,
        &upload.archive,
        upload.attempt,
        upload.idempotency_key.as_deref(),
    );
    golden("upload_result_request.json", &framed);
}

// ---------------------------------------------------------------------------
// Per-job resource budgets + quarantine
// ---------------------------------------------------------------------------

#[test]
fn budget_and_quarantine_bodies() {
    let budget = v1::JobBudget {
        cpu_millis: Some(60_000),
        max_rss_kib: Some(262_144),
        io_bytes: None,
        wall_millis: Some(120_000),
    };

    // An experiment declaring a budget: the document grows a conditional
    // trailing `budget` object (absent on unbudgeted experiments, which is
    // what keeps the pre-budget fixtures byte-identical).
    let mut experiment = fixture_experiment();
    experiment.budget = Some(budget);
    let body = experiment.to_json().to_string();
    golden("experiment_budgeted.json", &body);
    assert_eq!(Experiment::from_json(&chronos::json::parse(&body).unwrap()).unwrap(), experiment);

    // The budget rides each materialized job — and therefore the claim
    // response, which returns the full job document to the agent.
    let mut job = fixture_job();
    job.budget = Some(budget);
    let body = job.to_json().to_string();
    golden("job_budgeted.json", &body);
    assert_eq!(Job::from_json(&chronos::json::parse(&body).unwrap()).unwrap(), job);

    // A poison job after max_attempts typed budget failures: terminal
    // Quarantined state with the typed failure reason.
    let mut job = fixture_job();
    job.state = JobState::Quarantined;
    job.attempts = 3;
    job.claim_key = None;
    job.failure = Some("budget_exceeded:cpu_millis: measured 75000 > budget 60000".into());
    job.timeline.push(TimelineEvent {
        at: T2,
        kind: "quarantined".into(),
        message: "failed 3 of 3 attempts; quarantined".into(),
    });
    let body = job.to_json().to_string();
    golden("job_quarantined.json", &body);
    assert_eq!(Job::from_json(&chronos::json::parse(&body).unwrap()).unwrap(), job);

    // Status roll-up with quarantined jobs: the count is a conditional
    // trailing field, omitted while zero.
    let status = EvaluationStatus {
        scheduled: 0,
        running: 0,
        finished: 3,
        aborted: 0,
        failed: 0,
        quarantined: 2,
        remaining: Some(0),
    };
    golden("evaluation_status_quarantined.json", &status.to_json().to_string());

    // The create-experiment request declaring the budget.
    let request = v1::CreateExperimentRequest {
        name: "engine comparison".into(),
        system_id: id(2),
        description: "".into(),
        parameters: Some(fixture_experiment().assignments.to_json()),
        strategy: None,
        budget: Some(budget),
    };
    golden("create_experiment_budgeted_request.json", &request.encode());
    let decoded = v1::CreateExperimentRequest::decode(&request.to_value()).unwrap();
    assert_eq!(decoded.budget, request.budget);
}

// ---------------------------------------------------------------------------
// Integration hooks + stats
// ---------------------------------------------------------------------------

#[test]
fn trigger_and_stats_bodies() {
    let trigger = v1::TriggerBuildRequest { experiment_id: id(5), build: "abc123".into() };
    golden("trigger_build_request.json", &trigger.encode());
    let evaluation = fixture_evaluation();
    let response = v1::TriggerBuildResponse {
        jobs: evaluation.job_ids.len(),
        evaluation: evaluation.to_json(),
        build: "abc123".into(),
    };
    golden("trigger_build_response.json", &response.encode());
    let stats = v1::StatsResponse {
        scheduled: 1,
        running: 2,
        finished: 3,
        aborted: 0,
        failed: 1,
        quarantined: 0,
        remaining_space: 0,
        systems: 1,
        projects: 1,
    };
    golden("stats.json", &stats.encode());
}

// ---------------------------------------------------------------------------
// Result analytics (regression detection)
// ---------------------------------------------------------------------------

#[test]
fn regression_bodies() {
    let run = v1::RegressionRunDto {
        evaluation_id: id(6),
        created_at: T1,
        jobs_measured: 4,
        mean: 1234.5,
    };
    golden("regression_run.json", &run.encode());
    let change_point = v1::RegressionChangePointDto {
        index: 25,
        before_mean: 2000.5,
        after_mean: 1000.25,
        p_value: 0.005,
    };
    golden("regression_change_point.json", &change_point.encode());
    let report = v1::RegressionsResponse {
        experiment_id: id(5),
        value_path: "/throughput_ops_per_sec".into(),
        seed: 42,
        permutations: 199,
        significance: 0.05,
        min_segment: 5,
        runs: vec![
            run.clone(),
            v1::RegressionRunDto {
                evaluation_id: id(8),
                created_at: T2,
                jobs_measured: 4,
                mean: 618.0,
            },
        ],
        change_points: vec![change_point],
        regressed: true,
    };
    golden("regressions_response.json", &report.encode());
    let flag = v1::ExperimentRegressionFlag {
        value_path: "/throughput_ops_per_sec".into(),
        change_points: 1,
        regressed: true,
        runs: 50,
        scanned_at: T2,
    };
    golden("experiment_regression_flag.json", &flag.encode());

    // The typed layer reads its own bytes back losslessly.
    let decoded = v1::RegressionsResponse::decode_slice(report.encode().as_bytes()).unwrap();
    assert_eq!(decoded, report);
    let decoded = v1::ExperimentRegressionFlag::decode_slice(flag.encode().as_bytes()).unwrap();
    assert_eq!(decoded, flag);
}

// ---------------------------------------------------------------------------
// Frozen v0
// ---------------------------------------------------------------------------

#[test]
fn v0_bodies() {
    let job = chronos::api::v0::JobStatusV0 {
        id: id(7),
        status: JobState::Running,
        percent: 42,
        evaluation: id(6),
    };
    golden("v0_job_status.json", &job.encode());
    let status =
        chronos::api::v0::EvaluationStatusV0 { id: id(6), open: 3, closed: 4, percent: 57 };
    golden("v0_evaluation_status.json", &status.encode());
}
