#![cfg(feature = "failpoints")]

//! Crash-recovery torture: kill the storage layers at every write-path
//! failpoint (clean errors and torn writes at varied offsets), "crash" by
//! dropping the handle, reopen, and verify the durability contract:
//!
//! * every **acknowledged** write (the call returned `Ok`) survives recovery;
//! * a **failed** write may or may not survive (the fault can land after the
//!   bytes hit the disk) — but recovery itself must always succeed, and the
//!   store must keep working after reopen;
//! * torn tails are discarded, never misread as corruption.
//!
//! Every assertion message carries the active fault seed so a failure
//! reproduces with `CHRONOS_FAIL_SEED=<seed> cargo test --features
//! failpoints --test torture`.

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

use chronos::core::store::MetadataStore;
use chronos::json::obj;
use chronos::util::fail::{self, Policy};
use minidoc::{Database, DbConfig, EngineKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The failpoint registry is process-global; torture scenarios must not
/// overlap. The guard also resets the registry and seeds it for replay.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    fail::reset();
    fail::set_seed(torture_seed());
    guard
}

/// Seed for this run: `CHRONOS_FAIL_SEED` if set, a fixed default otherwise.
fn torture_seed() -> u64 {
    std::env::var("CHRONOS_FAIL_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

/// Context string appended to every assertion.
fn replay() -> String {
    format!("(replay with CHRONOS_FAIL_SEED={})", fail::seed())
}

// ---------------------------------------------------------------------------
// Chronos Control metadata store
// ---------------------------------------------------------------------------

/// One crash round against the metadata store: write until the armed fault
/// fires, then reopen and check that exactly the acknowledged documents are
/// recovered (the in-flight one may legitimately be on either side).
fn store_crash_round(dir: &std::path::Path, round: u64, policy: Policy) {
    let path = dir.join("control.log");
    let store = MetadataStore::open(&path).unwrap_or_else(|e| {
        panic!("round {round}: reopen before faulting failed: {e} {}", replay())
    });

    // Everything already acknowledged in earlier rounds must still be there.
    let prior: BTreeSet<String> = store.ids("job").into_iter().collect();

    fail::arm("core.store.wal.append", policy.clone());
    let mut acked: Vec<String> = Vec::new();
    let mut failed: Option<String> = None;
    for i in 0..64u64 {
        let id = format!("r{round}-doc{i}");
        match store.put("job", &id, obj! {"round" => round as i64, "i" => i as i64}) {
            Ok(()) => acked.push(id),
            Err(_) => {
                failed = Some(id);
                break; // the store is poisoned: crash here
            }
        }
    }
    fail::disarm("core.store.wal.append");
    assert!(
        failed.is_some(),
        "round {round}: fault {policy:?} never fired in 64 writes {}",
        replay()
    );
    // The sticky WAL failure must flip the readiness probe: this is what
    // `/readyz` reports so the fleet stops routing work here.
    assert!(!store.healthy(), "round {round}: failed store still reports healthy {}", replay());
    drop(store); // crash

    // A clean reopen restores health.
    let reopened = MetadataStore::open(&path)
        .unwrap_or_else(|e| panic!("round {round}: recovery failed: {e} {}", replay()));
    assert!(reopened.healthy(), "round {round}: recovered store must be healthy {}", replay());
    drop(reopened);

    let recovered = MetadataStore::open(&path)
        .unwrap_or_else(|e| panic!("round {round}: recovery failed: {e} {}", replay()));
    let ids: BTreeSet<String> = recovered.ids("job").into_iter().collect();
    for id in prior.iter().chain(acked.iter()) {
        assert!(
            ids.contains(id),
            "round {round}: acknowledged doc {id} lost in crash recovery {}",
            replay()
        );
    }
    // The unacknowledged write may have made it or not; anything else is a
    // bug. (ids = prior ∪ acked ∪ maybe{failed})
    let mut allowed: BTreeSet<String> = prior;
    allowed.extend(acked.iter().cloned());
    if let Some(f) = &failed {
        allowed.insert(f.clone());
    }
    for id in &ids {
        assert!(
            allowed.contains(id),
            "round {round}: recovery resurrected unknown doc {id} {}",
            replay()
        );
    }
    // The store must be fully usable after recovery.
    recovered
        .put("job", &format!("r{round}-post"), obj! {"post" => true})
        .unwrap_or_else(|e| panic!("round {round}: write after recovery failed: {e} {}", replay()));
}

#[test]
fn store_survives_wal_append_crashes() {
    let _guard = serial();
    let dir = tempdir("torture-store-append");
    let mut rng = StdRng::seed_from_u64(torture_seed());

    let mut round = 0u64;
    // Clean injected errors at random points in the write stream.
    for _ in 0..3 {
        let after = rng.gen_range(1..20u64);
        store_crash_round(&dir, round, Policy::ErrorEveryNth(after));
        round += 1;
    }
    // Torn writes at varied keep offsets: 0 (nothing persisted), 1 byte,
    // mid-record, and some seed-driven cuts. A put frame is tens of bytes,
    // so large keeps also exercise the keep > len clamp.
    for keep in [0usize, 1, 7, rng.gen_range(2..40), rng.gen_range(2..40), 4096] {
        store_crash_round(&dir, round, Policy::Torn { keep });
        round += 1;
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_survives_compaction_faults() {
    let _guard = serial();
    let dir = tempdir("torture-store-compact");
    let path = dir.join("control.log");

    let store = MetadataStore::open(&path).unwrap();
    for i in 0..50 {
        let id = format!("doc{}", i % 10); // overwrites → garbage to compact
        store.put("job", &id, obj! {"i" => i as i64}).unwrap();
    }
    let live = store.live_docs();

    for site in ["core.store.compact.sync", "core.store.compact.rename", "core.store.dir.fsync"] {
        fail::arm(site, Policy::ErrorTimes(1));
        let err = store.compact();
        fail::disarm(site);
        assert!(err.is_err(), "compaction with faulted {site} should fail {}", replay());
        // A failed compaction must not lose anything, with or without a
        // crash in between.
        assert_eq!(store.live_docs(), live, "{site}: live docs changed {}", replay());
        drop(MetadataStore::open(&path).unwrap_or_else(|e| {
            panic!("{site}: recovery after failed compaction broke: {e} {}", replay())
        }));
    }

    // With faults cleared the same store compacts fine and the result is
    // durable across reopen.
    store.compact().expect("clean compaction");
    drop(store);
    let recovered = MetadataStore::open(&path).unwrap();
    assert_eq!(recovered.live_docs(), live, "docs lost across compaction + reopen {}", replay());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// minidoc engines
// ---------------------------------------------------------------------------

/// One crash round against a durable minidoc database.
fn minidoc_crash_round(kind: EngineKind, dir: &std::path::Path, round: u64, policy: Policy) {
    let site = match kind {
        EngineKind::WiredTiger => "minidoc.wal.append",
        EngineKind::MmapV1 => "minidoc.extent.write",
    };
    let db = Database::open(DbConfig::at_dir(kind, dir))
        .unwrap_or_else(|e| panic!("{kind} round {round}: open failed: {e} {}", replay()));
    let coll = db.collection("bench");
    let prior: BTreeSet<String> =
        coll.scan("", usize::MAX).unwrap().into_iter().map(|(k, _)| k).collect();

    fail::arm(site, policy.clone());
    let mut acked: Vec<String> = Vec::new();
    let mut failed: Option<String> = None;
    for i in 0..64u64 {
        let key = format!("r{round}-k{i}");
        match coll.insert(&key, &obj! {"round" => round as i64, "i" => i as i64}) {
            Ok(()) => acked.push(key),
            Err(_) => {
                failed = Some(key);
                break; // crash at the first injected fault
            }
        }
    }
    fail::disarm(site);
    assert!(failed.is_some(), "{kind} round {round}: fault {policy:?} never fired {}", replay());
    drop(coll);
    drop(db); // crash: no checkpoint, recovery comes from the journal

    let db = Database::open(DbConfig::at_dir(kind, dir))
        .unwrap_or_else(|e| panic!("{kind} round {round}: recovery failed: {e} {}", replay()));
    let coll = db.collection("bench");
    let keys: BTreeSet<String> =
        coll.scan("", usize::MAX).unwrap().into_iter().map(|(k, _)| k).collect();
    for key in prior.iter().chain(acked.iter()) {
        assert!(
            keys.contains(key),
            "{kind} round {round}: acknowledged doc {key} lost {}",
            replay()
        );
    }
    let mut allowed = prior;
    allowed.extend(acked.iter().cloned());
    if let Some(f) = &failed {
        allowed.insert(f.clone());
    }
    for key in &keys {
        assert!(
            allowed.contains(key),
            "{kind} round {round}: recovery resurrected unknown doc {key} {}",
            replay()
        );
    }
    coll.insert(&format!("r{round}-post"), &obj! {"post" => true}).unwrap_or_else(|e| {
        panic!("{kind} round {round}: write after recovery failed: {e} {}", replay())
    });
    db.checkpoint().unwrap_or_else(|e| {
        panic!("{kind} round {round}: checkpoint after recovery failed: {e} {}", replay())
    });
}

#[test]
fn wiredtiger_survives_wal_crashes() {
    let _guard = serial();
    let dir = tempdir("torture-wt");
    let mut rng = StdRng::seed_from_u64(torture_seed() ^ 0x77);
    let mut round = 0u64;
    for _ in 0..2 {
        let after = rng.gen_range(1..16u64);
        minidoc_crash_round(EngineKind::WiredTiger, &dir, round, Policy::ErrorEveryNth(after));
        round += 1;
    }
    for keep in [0usize, 3, rng.gen_range(1..64), 4096] {
        minidoc_crash_round(EngineKind::WiredTiger, &dir, round, Policy::Torn { keep });
        round += 1;
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mmapv1_survives_write_faults() {
    let _guard = serial();
    let dir = tempdir("torture-mm");
    let mut rng = StdRng::seed_from_u64(torture_seed() ^ 0x99);
    for round in 0..3 {
        let after = rng.gen_range(1..16u64);
        minidoc_crash_round(EngineKind::MmapV1, &dir, round, Policy::ErrorEveryNth(after));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_rename_failure_preserves_journal() {
    let _guard = serial();
    for kind in [EngineKind::WiredTiger, EngineKind::MmapV1] {
        let dir = tempdir(&format!("torture-ckpt-{kind}"));
        let db = Database::open(DbConfig::at_dir(kind, &dir)).unwrap();
        let coll = db.collection("bench");
        for i in 0..20 {
            coll.insert(&format!("k{i}"), &obj! {"i" => i as i64}).unwrap();
        }

        fail::arm("minidoc.checkpoint.rename", Policy::ErrorTimes(1));
        let err = db.checkpoint();
        fail::disarm("minidoc.checkpoint.rename");
        assert!(err.is_err(), "{kind}: checkpoint with faulted rename should fail {}", replay());
        drop(coll);
        drop(db); // crash before any successful checkpoint

        // The journal was not truncated, so recovery still sees every write.
        let db = Database::open(DbConfig::at_dir(kind, &dir)).unwrap_or_else(|e| {
            panic!("{kind}: recovery after failed checkpoint broke: {e} {}", replay())
        });
        let coll = db.collection("bench");
        let n = coll.scan("", usize::MAX).unwrap().len();
        assert_eq!(n, 20, "{kind}: writes lost after failed checkpoint {}", replay());
        // And a clean checkpoint still works afterwards.
        db.checkpoint().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chronos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
