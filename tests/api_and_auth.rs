//! API versioning (paper §2.2: versioned REST API so old clients keep
//! working) and the session/role-based access control.

mod common;

use chronos::json::{obj, Value};
use common::TestEnv;

#[test]
fn v0_and_v1_serve_side_by_side() {
    let env = TestEnv::start();
    // Version discovery.
    let index = env.get("/api");
    assert_eq!(index.get("current").and_then(Value::as_str), Some("v1"));
    let v1 = env.get("/api/v1/version");
    assert_eq!(v1.get("version").and_then(Value::as_str), Some("v1"));
    let v0 = env.get("/api/v0/version");
    assert_eq!(v0.get("version").and_then(Value::as_str), Some("v0"));
    assert_eq!(v0.get("deprecated").and_then(Value::as_bool), Some(true));
}

#[test]
fn v0_job_shape_is_frozen() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_p, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 40, "operation_count" => 60});
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap();

    // The evaluation is lazy — no job documents yet — but its planned point
    // still counts as open work through the frozen v0 status shape.
    assert!(evaluation.get("job_ids").and_then(Value::as_array).unwrap().is_empty());
    let v0_status = env.get(&format!("/api/v0/evaluations/{evaluation_id}/status"));
    assert_eq!(v0_status.get("open").and_then(Value::as_i64), Some(1));
    assert_eq!(v0_status.get("closed").and_then(Value::as_i64), Some(0));
    assert_eq!(v0_status.get("percent").and_then(Value::as_i64), Some(0));

    env.run_agent(&deployment_id);

    // The agent's claim materialized the job; v0 exposes `status`/`percent`,
    // not v1's `state`/`progress`.
    let evaluation = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    let job_id = evaluation.pointer("/job_ids/0").and_then(Value::as_str).unwrap();
    let v0_job = env.get(&format!("/api/v0/jobs/{job_id}"));
    assert_eq!(v0_job.get("status").and_then(Value::as_str), Some("finished"));
    assert_eq!(v0_job.get("percent").and_then(Value::as_i64), Some(100));
    assert!(v0_job.get("state").is_none());
    let v0_status = env.get(&format!("/api/v0/evaluations/{evaluation_id}/status"));
    assert_eq!(v0_status.get("open").and_then(Value::as_i64), Some(0));
    assert_eq!(v0_status.get("closed").and_then(Value::as_i64), Some(1));
}

#[test]
fn missing_or_bad_tokens_are_rejected() {
    let env = TestEnv::start();
    let anonymous = chronos::http::Client::new(&env.server.base_url());
    let response = anonymous.get("/api/v1/systems").unwrap();
    assert_eq!(response.status.0, 403);
    anonymous.set_default_header("X-Chronos-Token", "forged-token");
    let response = anonymous.get("/api/v1/systems").unwrap();
    assert_eq!(response.status.0, 403);
    // Bearer form works too.
    let bearer = chronos::http::Client::new(&env.server.base_url());
    bearer.set_default_header("Authorization", &format!("Bearer {}", env.admin_token));
    assert!(bearer.get("/api/v1/systems").unwrap().status.is_success());
}

#[test]
fn logout_invalidates_the_session() {
    let env = TestEnv::start();
    let me = env.get("/api/v1/me");
    assert_eq!(me.get("username").and_then(Value::as_str), Some("admin"));
    assert!(me.get("password_hash").is_none(), "hash must be redacted");
    env.post("/api/v1/logout", &obj! {});
    let response = env.get_raw("/api/v1/me");
    assert_eq!(response.status.0, 403);
}

#[test]
fn role_enforcement_across_endpoints() {
    let env = TestEnv::start();
    // Admin creates a member and a viewer.
    env.post("/api/v1/users", &obj! {"username" => "m", "password" => "pw", "role" => "member"});
    env.post("/api/v1/users", &obj! {"username" => "v", "password" => "pw", "role" => "viewer"});

    let login = |user: &str| {
        let client = chronos::http::Client::new(&env.server.base_url());
        let response = client
            .post_json("/api/v1/login", &obj! {"username" => user, "password" => "pw"})
            .unwrap();
        let token =
            response.json_body().unwrap().get("token").and_then(Value::as_str).unwrap().to_string();
        client.set_default_header("X-Chronos-Token", &token);
        client
    };

    let member = login("m");
    let viewer = login("v");

    // Members can create projects; viewers cannot.
    let created = member.post_json("/api/v1/projects", &obj! {"name" => "mp"}).unwrap();
    assert!(created.status.is_success());
    let denied = viewer.post_json("/api/v1/projects", &obj! {"name" => "vp"}).unwrap();
    assert_eq!(denied.status.0, 403);

    // Only admins may register systems or create users.
    let denied = member.post_json("/api/v1/systems", &TestEnv::demo_system_definition()).unwrap();
    assert_eq!(denied.status.0, 403);
    let denied =
        member.post_json("/api/v1/users", &obj! {"username" => "x", "password" => "pw"}).unwrap();
    assert_eq!(denied.status.0, 403);

    // Project isolation: the viewer is not a member of the member's project.
    let project_id =
        created.json_body().unwrap().get("id").and_then(Value::as_str).unwrap().to_string();
    let denied = viewer.get(&format!("/api/v1/projects/{project_id}")).unwrap();
    assert_eq!(denied.status.0, 403);
    // Until they are added as a member.
    let viewer_id = {
        let me = viewer.get("/api/v1/me").unwrap().json_body().unwrap();
        me.get("id").and_then(Value::as_str).unwrap().to_string()
    };
    member
        .post_json(
            &format!("/api/v1/projects/{project_id}/members"),
            &obj! {"user_id" => viewer_id},
        )
        .unwrap();
    assert!(viewer.get(&format!("/api/v1/projects/{project_id}")).unwrap().status.is_success());
    // Project listings are membership-filtered.
    let visible = viewer.get("/api/v1/projects").unwrap().json_body().unwrap();
    assert_eq!(visible.as_array().map(Vec::len), Some(1));
}

#[test]
fn unknown_routes_and_methods() {
    let env = TestEnv::start();
    assert_eq!(env.get_raw("/api/v9/version").status.0, 404);
    assert_eq!(env.get_raw("/api/v1/login").status.0, 405); // GET on a POST route
    let bad_body =
        env.http.post_bytes("/api/v1/login", "application/json", b"{not json".to_vec()).unwrap();
    assert_eq!(bad_body.status.0, 400);
}
