//! Cluster-mode end-to-end tests over real sockets: leader election,
//! follower write refusal with leader hints, term fencing of a deposed
//! leader's late segments, torn shipped tails, bounded-staleness reads —
//! and, under `--features failpoints`, a seeded chaos storm that kills the
//! leader mid-evaluation and still demands every job finish exactly once.
//!
//! Fault draws are deterministic per (seed, site, hit index); a storm
//! failure reproduces with `CHRONOS_FAIL_SEED=<seed> cargo test
//! --features failpoints --test cluster`.

mod common;

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use chronos::agent::ControlClient;
use chronos::api::{v1, ErrorCode, ErrorEnvelope, WireDecode, WireEncode, TOKEN_HEADER};
use chronos::core::auth::Role;
use chronos::core::cluster::segment_checksum;
use chronos::core::scheduler::SchedulerConfig;
use chronos::core::store::MetadataStore;
use chronos::core::ChronosControl;
use chronos::http::{Client, Server};
use chronos::json::{obj, Value};
use chronos::server::{
    ChronosServer, ClusterOptions, CODE_BAD_SEGMENT, CODE_OFFSET_GAP, CODE_STALE_TERM,
};
use chronos::util::{Id, SystemClock};
use common::TestEnv;

/// Cluster tests share process-global state (bound ports under load and,
/// with `failpoints` on, the fault registry), so they run one at a time.
/// With failpoints compiled in, acquiring the lock also resets and
/// re-seeds the registry for deterministic replay.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    #[cfg(feature = "failpoints")]
    {
        chronos::util::fail::reset();
        chronos::util::fail::set_seed(storm::chaos_seed());
    }
    guard
}

fn default_scheduler() -> SchedulerConfig {
    SchedulerConfig { heartbeat_timeout_millis: 30_000, max_attempts: 3, auto_reschedule: true }
}

/// Starts `n` cluster nodes on port 0, then wires every node's peer list
/// once all listeners are bound (addresses exist only after binding).
fn start_cluster_with(
    n: usize,
    lease: Duration,
    config: impl Fn() -> SchedulerConfig,
) -> Vec<ChronosServer> {
    let servers: Vec<ChronosServer> = (0..n)
        .map(|i| {
            let control = Arc::new(ChronosControl::new(
                MetadataStore::in_memory(),
                Arc::new(SystemClock),
                config(),
            ));
            ChronosServer::start_cluster(
                control,
                "127.0.0.1:0",
                Server::new(),
                ClusterOptions::new(format!("node-{i}")).with_lease(lease),
            )
            .expect("bind cluster node")
        })
        .collect();
    let urls: Vec<String> = servers.iter().map(ChronosServer::base_url).collect();
    for (i, server) in servers.iter().enumerate() {
        server.set_cluster_peers(
            urls.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, u)| u.clone()).collect(),
        );
    }
    servers
}

fn wait_for_leader(servers: &[ChronosServer], timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(i) = servers.iter().position(|s| s.cluster().unwrap().is_leader()) {
            return i;
        }
        assert!(Instant::now() < deadline, "no leader elected within {timeout:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Waits until every node's replication feed reaches `offset`.
fn wait_replicated(servers: &[ChronosServer], offset: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while servers.iter().any(|s| s.control().replication_offset() < offset) {
        assert!(Instant::now() < deadline, "replication never caught up to offset {offset}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Logs in at `base_url` and returns a client with the session header set.
/// Sessions are node-local, so each node a test reads from needs its own.
fn login(base_url: &str, username: &str, password: &str) -> Client {
    let client = Client::new(base_url);
    let response = client
        .post_json(
            "/api/v1/login",
            &v1::LoginRequest { username: username.into(), password: password.into() }.to_value(),
        )
        .expect("login transport");
    assert!(
        response.status.is_success(),
        "login at {base_url} failed: {}",
        String::from_utf8_lossy(&response.body)
    );
    let token = v1::LoginResponse::decode(&response.json_body().unwrap()).unwrap().token;
    client.set_default_header(TOKEN_HEADER, &token);
    client
}

fn post_ok(client: &Client, path: &str, body: &Value) -> Value {
    let response = client.post_json(path, body).expect("transport");
    assert!(
        response.status.is_success(),
        "POST {path} -> {}: {}",
        response.status.0,
        String::from_utf8_lossy(&response.body)
    );
    response.json_body().expect("json body")
}

fn id_of(value: &Value) -> String {
    value.get("id").and_then(Value::as_str).expect("id field").to_string()
}

fn envelope_of(response: &chronos::http::Response) -> ErrorEnvelope {
    ErrorEnvelope::decode(&response.json_body().expect("envelope json")).expect("typed envelope")
}

#[test]
fn followers_refuse_writes_with_a_leader_hint_and_clients_follow_it() {
    let _guard = serial();
    let servers = start_cluster_with(3, Duration::from_millis(300), default_scheduler);
    let leader = wait_for_leader(&servers, Duration::from_secs(10));
    let leader_url = servers[leader].base_url();
    servers[leader].control().create_user("admin", "admin-pw", Role::Admin).unwrap();

    // Set up a system + deployment through the leader's public API.
    let leader_client = login(&leader_url, "admin", "admin-pw");
    let system = post_ok(&leader_client, "/api/v1/systems", &TestEnv::demo_system_definition());
    let system_id = id_of(&system);
    let deployment = post_ok(
        &leader_client,
        &format!("/api/v1/systems/{system_id}/deployments"),
        &obj! {"environment" => "cluster-test", "version" => "0.1.0"},
    );
    let deployment_id = Id::parse_base32(&id_of(&deployment)).unwrap();
    wait_replicated(
        &servers,
        servers[leader].control().replication_offset(),
        Duration::from_secs(5),
    );

    let follower_url = servers[(leader + 1) % servers.len()].base_url();
    let follower_client = login(&follower_url, "admin", "admin-pw");

    // A write against the follower is refused with a typed leader hint.
    let refusal = follower_client
        .post_json("/api/v1/projects", &obj! {"name" => "p", "description" => "d"})
        .unwrap();
    assert_eq!(refusal.status.0, 503);
    let envelope = envelope_of(&refusal);
    assert!(envelope.is_not_leader(), "expected not_leader, got {envelope:?}");
    assert_eq!(envelope.leader_hint(), Some(leader_url.trim_end_matches('/')));
    assert!(refusal.retry_after().is_some(), "not_leader refusals carry a Retry-After hint");

    // Fresh follower reads are served from the replica itself.
    let listing = follower_client.get("/api/v1/systems").unwrap();
    assert_eq!(listing.status.0, 200);
    assert!(String::from_utf8_lossy(&listing.body).contains("minidoc"));

    // The agent client follows the hint transparently: a claim aimed at the
    // follower lands on the leader (who answers 204: nothing scheduled) and
    // the client is re-aimed for subsequent calls.
    let agent = ControlClient::login(&follower_url, "admin", "admin-pw").unwrap();
    assert!(agent.claim(deployment_id).unwrap().is_none());
    assert_eq!(agent.base_url(), leader_url.trim_end_matches('/'));

    for mut server in servers {
        server.shutdown();
    }
}

#[test]
fn fenced_leaders_late_segment_is_refused_with_the_store_byte_identical() {
    let _guard = serial();
    // A lone node with no peers never stands for election: a permanent
    // follower we can ship segments at by hand.
    let mut follower =
        start_cluster_with(1, Duration::from_millis(200), default_scheduler).pop().unwrap();
    let api = Client::new(&follower.base_url());

    // A scratch control plane plays the leader's store: real WAL frames.
    let scratch =
        ChronosControl::new(MetadataStore::in_memory(), Arc::new(SystemClock), default_scheduler());
    scratch.create_user("admin", "admin-pw", Role::Admin).unwrap();
    let first = scratch.read_replication(0, 1 << 20).unwrap();
    assert!(!first.is_empty());

    let ship = |term: u64, start_offset: u64, checksum: u64, frames: Vec<u8>| {
        let request = v1::ReplicateRequest {
            term,
            leader: "http://old-leader:1".into(),
            start_offset,
            checksum,
            frames,
        };
        api.post_json("/api/v1/cluster/replicate", &request.to_value()).expect("transport")
    };
    let assert_code = |response: &chronos::http::Response, code: &str| {
        let envelope = envelope_of(response);
        assert_eq!(
            envelope.code,
            ErrorCode::Named(code.into()),
            "unexpected refusal: {envelope:?}"
        );
    };

    // Term 5 installs and the follower adopts the term.
    let response = ship(5, 0, segment_checksum(&first), first.clone());
    assert_eq!(response.status.0, 200, "{}", String::from_utf8_lossy(&response.body));
    let ack = v1::ReplicateAck::decode(&response.json_body().unwrap()).unwrap();
    assert_eq!((ack.term, ack.offset), (5, first.len() as u64));
    let before = follower.control().read_replication(0, 1 << 20).unwrap();
    assert_eq!(before, first, "install must re-append the exact shipped bytes");

    // The deposed leader (term 4) ships a late segment: refused with
    // `stale_term`, and the follower store is byte-identical afterwards.
    scratch.create_user("zombie", "zombie-pw", Role::Admin).unwrap();
    let delta = scratch.read_replication(first.len() as u64, 1 << 20).unwrap();
    let refusal = ship(4, first.len() as u64, segment_checksum(&delta), delta.clone());
    assert_eq!(refusal.status.0, 409);
    assert_code(&refusal, CODE_STALE_TERM);
    assert_eq!(follower.control().replication_offset(), first.len() as u64);
    assert_eq!(
        follower.control().read_replication(0, 1 << 20).unwrap(),
        before,
        "a fenced segment must not mutate the follower store"
    );

    // A corrupt segment (checksum mismatch) is refused before any install.
    let refusal = ship(6, first.len() as u64, segment_checksum(&delta) ^ 1, delta.clone());
    assert_eq!(refusal.status.0, 400);
    assert_code(&refusal, CODE_BAD_SEGMENT);
    assert_eq!(follower.control().read_replication(0, 1 << 20).unwrap(), before);

    // A segment that does not chain onto the follower's offset is refused.
    let refusal = ship(6, first.len() as u64 + 7, segment_checksum(&delta), delta.clone());
    assert_eq!(refusal.status.0, 409);
    assert_code(&refusal, CODE_OFFSET_GAP);
    assert_eq!(follower.control().read_replication(0, 1 << 20).unwrap(), before);

    // A torn tail (segment truncated mid-frame) installs the complete
    // prefix and acks where shipping must resume — the same recovery rule
    // as the WAL's torn-tail truncation.
    let torn = delta[..delta.len() - 5].to_vec();
    let response = ship(6, first.len() as u64, segment_checksum(&torn), torn.clone());
    assert_eq!(response.status.0, 200, "{}", String::from_utf8_lossy(&response.body));
    let ack = v1::ReplicateAck::decode(&response.json_body().unwrap()).unwrap();
    let applied = (ack.offset - first.len() as u64) as usize;
    assert!(applied < torn.len() || torn.ends_with(b"\n"), "mid-frame bytes must not apply");
    let rest = scratch.read_replication(ack.offset, 1 << 20).unwrap();
    let response = ship(6, ack.offset, segment_checksum(&rest), rest);
    assert_eq!(response.status.0, 200);
    assert_eq!(follower.control().replication_offset(), scratch.replication_offset());
    assert_eq!(
        follower.control().read_replication(0, 1 << 20).unwrap(),
        scratch.read_replication(0, 1 << 20).unwrap(),
        "after catch-up the replica is byte-identical to the leader feed"
    );

    // The replicated frames are live state, not just bytes: the user the
    // "leader" created can log in against the replica.
    login(&follower.base_url(), "zombie", "zombie-pw");
    follower.shutdown();
}

#[test]
fn minority_survivor_goes_stale_and_refuses_reads() {
    let _guard = serial();
    let lease = Duration::from_millis(150);
    let mut servers = start_cluster_with(2, lease, default_scheduler);
    let leader = wait_for_leader(&servers, Duration::from_secs(10));
    servers[leader].control().create_user("admin", "admin-pw", Role::Admin).unwrap();
    wait_replicated(
        &servers,
        servers[leader].control().replication_offset(),
        Duration::from_secs(5),
    );

    let survivor_client = login(&servers[1 - leader].base_url(), "admin", "admin-pw");
    let fresh = survivor_client.get("/api/v1/systems").unwrap();
    assert_eq!(fresh.status.0, 200, "a fresh follower serves reads");

    // The leader dies. One node of two can never reach a majority, so the
    // survivor stands for election, fails, stands again — and must still
    // go stale: standing resets the election timer, not the staleness
    // clock, or a partitioned node would serve its frozen store forever.
    let mut dead = servers.remove(leader);
    dead.shutdown();
    let mut survivor = servers.pop().unwrap();

    let state = Arc::clone(survivor.cluster().unwrap());
    let deadline = Instant::now() + Duration::from_secs(5);
    while !state.is_stale(Instant::now()) {
        assert!(Instant::now() < deadline, "survivor never went stale");
        std::thread::sleep(Duration::from_millis(10));
    }
    let refusal = survivor_client.get("/api/v1/systems").unwrap();
    assert_eq!(refusal.status.0, 503, "stale replica reads must be refused");
    assert!(envelope_of(&refusal).is_not_leader());

    // Readiness agrees, so load balancers stop routing reads here.
    let readyz = survivor_client.get("/readyz").unwrap();
    assert_eq!(readyz.status.0, 503);
    assert!(String::from_utf8_lossy(&readyz.body).contains("\"stale\""));

    // And the survivor did keep standing (term keeps advancing) — it just
    // can never win alone.
    let deadline = Instant::now() + Duration::from_secs(5);
    while state.elections_started() == 0 {
        assert!(Instant::now() < deadline, "survivor never stood for election");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!state.is_leader(), "one vote of two is not a majority");
    survivor.shutdown();
}

#[cfg(feature = "failpoints")]
mod storm {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    use chronos::agent::{AgentConfig, ChronosAgent, DocstoreClient, EvaluationClient, JobContext};
    use chronos::core::model::JobState;
    use chronos::core::params::{ParamAssignments, ParamDef, ParamType};
    use chronos::core::{AdaptiveConfig, Strategy};
    use chronos::json::arr;
    use chronos::util::fail::{self, Policy};
    use chronos::workload::ResponseSurface;

    pub fn chaos_seed() -> u64 {
        std::env::var("CHRONOS_FAIL_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBADCAB)
    }

    fn replay() -> String {
        format!("(replay with CHRONOS_FAIL_SEED={})", fail::seed())
    }

    /// An agent driver that keeps going through injected failures and the
    /// leader's death: claims redirect via `not_leader` hints, a dead node
    /// rotates to the next seed, and the scheduler's fencing machinery has
    /// to absorb everything else.
    fn storm_agent<C: EvaluationClient>(
        client: ControlClient,
        deployment: Id,
        evaluation_client: C,
        done: &AtomicBool,
        deadline: Instant,
    ) -> u64 {
        let mut config = AgentConfig::new(deployment);
        config.heartbeat_interval = Duration::from_millis(100);
        config.poll_interval = Duration::from_millis(25);
        let mut agent = ChronosAgent::new(client, config, evaluation_client);
        let mut completed = 0u64;
        while !done.load(Ordering::SeqCst) && Instant::now() < deadline {
            match agent.run_once() {
                Ok(true) => completed += 1,
                Ok(false) | Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        completed
    }

    #[test]
    fn cluster_storm_leader_death_finishes_every_job_exactly_once() {
        let _guard = serial();
        let lease = Duration::from_millis(500);
        let mut servers = start_cluster_with(3, lease, || SchedulerConfig {
            heartbeat_timeout_millis: 2500,
            max_attempts: 12,
            auto_reschedule: true,
        });
        let leader = wait_for_leader(&servers, Duration::from_secs(10));
        let leader_url = servers[leader].base_url();
        servers[leader].control().create_user("admin", "admin-pw", Role::Admin).unwrap();

        // Both engines × {1, 2} threads — 4 jobs, workloads small enough
        // that a job finishes well inside one heartbeat timeout.
        let leader_client = login(&leader_url, "admin", "admin-pw");
        let system = post_ok(&leader_client, "/api/v1/systems", &TestEnv::demo_system_definition());
        let system_id = id_of(&system);
        let deployment = post_ok(
            &leader_client,
            &format!("/api/v1/systems/{system_id}/deployments"),
            &obj! {"environment" => "cluster-storm", "version" => "0.1.0"},
        );
        let deployment_id = Id::parse_base32(&id_of(&deployment)).unwrap();
        let project = post_ok(
            &leader_client,
            "/api/v1/projects",
            &obj! {"name" => "storm", "description" => "cluster chaos"},
        );
        let experiment = post_ok(
            &leader_client,
            &format!("/api/v1/projects/{}/experiments", id_of(&project)),
            &obj! {
                "name" => "failover sweep",
                "system_id" => system_id,
                "parameters" => obj! {
                    "engine" => obj! {"sweep" => "all"},
                    "threads" => obj! {"sweep" => arr![1, 2]},
                    "record_count" => 60,
                    "operation_count" => 120,
                },
            },
        );
        let evaluation = post_ok(
            &leader_client,
            &format!("/api/v1/experiments/{}/evaluations", id_of(&experiment)),
            &obj! {},
        );
        let evaluation_id = Id::parse_base32(&id_of(&evaluation)).unwrap();
        // Lazy planning: the space is known up front, jobs appear on claim.
        let job_count = evaluation.get("total_points").and_then(Value::as_u64).unwrap() as usize;
        assert_eq!(job_count, 4);
        assert!(evaluation.get("job_ids").and_then(Value::as_array).unwrap().is_empty());
        wait_replicated(
            &servers,
            servers[leader].control().replication_offset(),
            Duration::from_secs(5),
        );

        // The storm: the agent protocol misbehaves AND the cluster
        // transport loses replication sends (heartbeats) and vote
        // requests, all from one seeded schedule.
        fail::arm("agent.claim", Policy::ErrorProb(0.05));
        fail::arm("agent.heartbeat", Policy::ErrorProb(0.10));
        fail::arm("agent.upload", Policy::ErrorProb(0.10));
        fail::arm("cluster.replicate.send", Policy::ErrorProb(0.10));
        fail::arm("cluster.vote.send", Policy::ErrorProb(0.05));

        let urls: Vec<String> = servers.iter().map(ChronosServer::base_url).collect();
        let deadline = Instant::now() + Duration::from_secs(90);
        let done = Arc::new(AtomicBool::new(false));

        // A read probe hammers one follower for the whole storm: every
        // read it serves must be within the staleness bound (with one
        // measurement grace), every refusal must be a typed 503.
        let probe_idx = (leader + 1) % servers.len();
        let probe_state = Arc::clone(servers[probe_idx].cluster().unwrap());
        let probe_client = login(&servers[probe_idx].base_url(), "admin", "admin-pw");
        let bound = probe_state.staleness_bound();
        let probe = {
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name("cluster-read-probe".into())
                .spawn(move || {
                    let (mut served, mut refused) = (0u64, 0u64);
                    while !done.load(Ordering::SeqCst) {
                        let Ok(response) = probe_client.get("/api/v1/systems") else {
                            std::thread::sleep(Duration::from_millis(20));
                            continue;
                        };
                        let lag = probe_state.lag(Instant::now());
                        if response.status.0 == 200 {
                            served += 1;
                            assert!(
                                probe_state.is_leader()
                                    || lag <= bound + Duration::from_millis(250),
                                "follower served a read at lag {lag:?}, beyond the bound {bound:?}"
                            );
                        } else {
                            refused += 1;
                            assert_eq!(response.status.0, 503, "refusals must be typed 503s");
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    (served, refused)
                })
                .unwrap()
        };

        // Two agents, each starting at a *follower*: their writes discover
        // the leader through typed hints; the seed list lets them escape a
        // dead node entirely.
        let agents: Vec<_> = (0..2)
            .map(|i| {
                let start = urls[(leader + 1 + i) % urls.len()].clone();
                let urls = urls.clone();
                let done = Arc::clone(&done);
                std::thread::Builder::new()
                    .name(format!("cluster-agent-{i}"))
                    .spawn(move || {
                        let client = ControlClient::login(&start, "admin", "admin-pw")
                            .expect("agent login")
                            .with_seed_nodes(&urls);
                        storm_agent(client, deployment_id, DocstoreClient::new(), &done, deadline)
                    })
                    .unwrap()
            })
            .collect();

        // Phase 1: let the evaluation get under way under the original
        // leader — at least one job must finish before the kill.
        let old_control = Arc::clone(servers[leader].control());
        let phase_deadline = Instant::now() + Duration::from_secs(45);
        loop {
            let finished = old_control
                .list_jobs(evaluation_id)
                .unwrap()
                .iter()
                .filter(|j| j.state == JobState::Finished)
                .count();
            if finished >= 1 {
                break;
            }
            assert!(
                Instant::now() < phase_deadline,
                "no job finished before the kill {}",
                replay()
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        // Kill the leader mid-evaluation.
        let mut dead = servers.remove(leader);
        dead.shutdown();
        let killed_at = Instant::now();

        // Failover: a survivor must win within the lease budget. A clean
        // round is one lease to notice plus under one more of jitter, but
        // the storm also eats vote requests and heartbeats, and a round
        // can die to an early candidacy (the voter's own lease has not
        // expired yet) or a split — each failure costs roughly another
        // lease, so budget several rounds. The *tight* two-lease bound is
        // E14's, measured without the storm.
        let budget = lease * 12;
        let new_leader = loop {
            if let Some(i) = servers.iter().position(|s| s.cluster().unwrap().is_leader()) {
                break i;
            }
            assert!(
                Instant::now() < killed_at + budget,
                "no new leader within {budget:?} of the kill {}",
                replay()
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let failover = killed_at.elapsed();

        // Phase 2: the evaluation must finish on the new leader.
        let control = Arc::clone(servers[new_leader].control());
        while Instant::now() < deadline {
            let jobs = control.list_jobs(evaluation_id).unwrap();
            if jobs.len() == job_count
                && jobs.iter().all(|j| j.state == JobState::Finished)
                && control.count_results() == job_count
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        done.store(true, Ordering::SeqCst);
        let completed: u64 = agents.into_iter().map(|h| h.join().unwrap()).sum();
        let (served, refused) = probe.join().expect("read probe panicked");
        fail::reset();

        // Exactly once, across a leader death: every job finished, and the
        // surviving ledger holds exactly one result per job — reclaims,
        // re-executions of unreplicated work, retried uploads and dropped
        // responses must all have deduplicated or fenced.
        let jobs = control.list_jobs(evaluation_id).unwrap();
        assert_eq!(jobs.len(), job_count, "jobs vanished {}", replay());
        for job in &jobs {
            assert_eq!(
                job.state,
                JobState::Finished,
                "job {} ended {:?} after {} attempts (failover {failover:?}, agents \
                 completed {completed}) {}",
                job.id,
                job.state,
                job.attempts,
                replay()
            );
            assert!(job.result_id.is_some(), "finished job {} has no result {}", job.id, replay());
        }
        assert_eq!(
            control.count_results(),
            job_count,
            "stored results != jobs: duplicate or lost results across the failover {}",
            replay()
        );
        assert!(completed >= 1, "no agent ever completed a job {}", replay());
        assert!(served >= 1, "the read probe never got a single read through {}", replay());
        let _ = refused; // refusals are legal at any count (failover window)

        for mut server in servers {
            server.shutdown();
        }
    }

    /// A deterministic evaluation client over the seeded response surface:
    /// the measured metric is a pure function of the job's `(x, y)`
    /// coordinates, so re-executions after dropped uploads, lease reclaims,
    /// or a leader failover always score identically.
    struct SurfaceClient {
        surface: ResponseSurface,
        axis: i64,
    }

    impl EvaluationClient for SurfaceClient {
        fn name(&self) -> &str {
            "surface-probe"
        }

        fn set_up(&mut self, _ctx: &JobContext) -> Result<(), String> {
            Ok(())
        }

        fn execute(&mut self, ctx: &JobContext) -> Result<Value, String> {
            let x = ctx.param_i64("x").ok_or("missing x")?;
            let y = ctx.param_i64("y").ok_or("missing y")?;
            let d = (self.axis - 1) as f64;
            Ok(self.surface.result_document(&[x as f64 / d, y as f64 / d]))
        }
    }

    #[test]
    fn adaptive_storm_leader_death_replays_identical_pruning_decisions() {
        let _guard = serial();
        // A 6×6 integer grid over the seeded surface; successive halving
        // with initial=8, eta=2 runs rungs of 8, 4, 2 and 1 jobs (15 of 36
        // points) and records three pruning decisions.
        let axis: i64 = 6;
        let surface_seed = 9u64;
        let strategy_seed = 7u64;
        let expected_jobs = 15usize;
        let surface = ResponseSurface::new(surface_seed, 2);

        let lease = Duration::from_millis(500);
        let mut servers = start_cluster_with(3, lease, || SchedulerConfig {
            heartbeat_timeout_millis: 2500,
            max_attempts: 12,
            auto_reschedule: true,
        });
        let leader = wait_for_leader(&servers, Duration::from_secs(10));
        let leader_url = servers[leader].base_url();
        servers[leader].control().create_user("admin", "admin-pw", Role::Admin).unwrap();
        let leader_client = login(&leader_url, "admin", "admin-pw");

        let system = post_ok(
            &leader_client,
            "/api/v1/systems",
            &obj! {
                "name" => "surface-sut",
                "parameters" => arr![
                    obj! {"name" => "x", "type" => "interval", "min" => 0,
                          "max" => axis - 1, "step" => 1, "default" => 0},
                    obj! {"name" => "y", "type" => "interval", "min" => 0,
                          "max" => axis - 1, "step" => 1, "default" => 0},
                ],
                "charts" => arr![],
            },
        );
        let system_id = id_of(&system);
        let deployment = post_ok(
            &leader_client,
            &format!("/api/v1/systems/{system_id}/deployments"),
            &obj! {"environment" => "adaptive-storm", "version" => "0.1.0"},
        );
        let deployment_id = Id::parse_base32(&id_of(&deployment)).unwrap();
        let project = post_ok(
            &leader_client,
            "/api/v1/projects",
            &obj! {"name" => "adaptive-storm", "description" => "failover pruning"},
        );
        let experiment = post_ok(
            &leader_client,
            &format!("/api/v1/projects/{}/experiments", id_of(&project)),
            &obj! {
                "name" => "adaptive failover sweep",
                "system_id" => system_id,
                "parameters" => obj! {
                    "x" => obj! {"sweep" => "all"},
                    "y" => obj! {"sweep" => "all"},
                },
                "strategy" => obj! {
                    "kind" => "adaptive", "seed" => strategy_seed, "initial" => 8,
                    "eta" => 2, "metric" => "/throughput_ops_per_sec", "maximize" => true,
                },
            },
        );
        let evaluation = post_ok(
            &leader_client,
            &format!("/api/v1/experiments/{}/evaluations", id_of(&experiment)),
            &obj! {},
        );
        let evaluation_id = Id::parse_base32(&id_of(&evaluation)).unwrap();
        assert_eq!(evaluation.get("total_points").and_then(Value::as_u64), Some(36));
        assert!(evaluation.get("job_ids").and_then(Value::as_array).unwrap().is_empty());
        wait_replicated(
            &servers,
            servers[leader].control().replication_offset(),
            Duration::from_secs(5),
        );

        // The same seeded storm as the exactly-once test: flaky agent
        // protocol, lossy replication and vote transport.
        fail::arm("agent.claim", Policy::ErrorProb(0.05));
        fail::arm("agent.heartbeat", Policy::ErrorProb(0.10));
        fail::arm("agent.upload", Policy::ErrorProb(0.10));
        fail::arm("cluster.replicate.send", Policy::ErrorProb(0.10));
        fail::arm("cluster.vote.send", Policy::ErrorProb(0.05));

        let urls: Vec<String> = servers.iter().map(ChronosServer::base_url).collect();
        let deadline = Instant::now() + Duration::from_secs(120);
        let done = Arc::new(AtomicBool::new(false));
        let agents: Vec<_> = (0..2)
            .map(|i| {
                let start = urls[(leader + 1 + i) % urls.len()].clone();
                let urls = urls.clone();
                let done = Arc::clone(&done);
                let client = SurfaceClient { surface: ResponseSurface::new(surface_seed, 2), axis };
                std::thread::Builder::new()
                    .name(format!("adaptive-agent-{i}"))
                    .spawn(move || {
                        let control_client = ControlClient::login(&start, "admin", "admin-pw")
                            .expect("agent login")
                            .with_seed_nodes(&urls);
                        storm_agent(control_client, deployment_id, client, &done, deadline)
                    })
                    .unwrap()
            })
            .collect();

        // Phase 1: the evaluation must be genuinely mid-flight — at least
        // one pruning decision recorded — before the leader dies.
        let old_control = Arc::clone(servers[leader].control());
        let phase_deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let decided = old_control
                .get_evaluation(evaluation_id)
                .unwrap()
                .source
                .and_then(|s| s.frontier)
                .map_or(0, |f| f.decisions.len());
            if decided >= 1 {
                break;
            }
            assert!(
                Instant::now() < phase_deadline,
                "no pruning decision before the kill {}",
                replay()
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        let mut dead = servers.remove(leader);
        dead.shutdown();
        let killed_at = Instant::now();
        let budget = lease * 12;
        let new_leader = loop {
            if let Some(i) = servers.iter().position(|s| s.cluster().unwrap().is_leader()) {
                break i;
            }
            assert!(
                Instant::now() < killed_at + budget,
                "no new leader within {budget:?} of the kill {}",
                replay()
            );
            std::thread::sleep(Duration::from_millis(10));
        };

        // Phase 2: the adaptive evaluation must settle on the new leader —
        // every remaining rung issued, scored and pruned down to one
        // survivor, with the unsampled space written off.
        let control = Arc::clone(servers[new_leader].control());
        while Instant::now() < deadline {
            let status = control.evaluation_status(evaluation_id).unwrap();
            if status.is_settled() && status.remaining == Some(0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        done.store(true, Ordering::SeqCst);
        let completed: u64 = agents.into_iter().map(|h| h.join().unwrap()).sum();
        fail::reset();

        let status = control.evaluation_status(evaluation_id).unwrap();
        assert!(
            status.is_settled() && status.remaining == Some(0),
            "adaptive evaluation never settled after the failover: {status:?} {}",
            replay()
        );
        let frontier = control
            .get_evaluation(evaluation_id)
            .unwrap()
            .source
            .and_then(|s| s.frontier)
            .expect("adaptive evaluation keeps its frontier");
        assert_eq!(frontier.candidates.len(), 1, "exactly one survivor {}", replay());

        // Ledger: one job per issued (rung, candidate) slot, every one
        // finished with exactly one stored result — reclaims and retried
        // uploads across the failover must have deduplicated.
        let jobs = control.list_jobs(evaluation_id).unwrap();
        assert_eq!(jobs.len(), expected_jobs, "issued jobs != rung budget {}", replay());
        for job in &jobs {
            assert_eq!(
                job.state,
                JobState::Finished,
                "job {} ended {:?} after {} attempts {}",
                job.id,
                job.state,
                job.attempts,
                replay()
            );
            assert!(job.result_id.is_some(), "finished job {} has no result {}", job.id, replay());
        }
        assert_eq!(control.count_results(), expected_jobs, "ledger imbalance {}", replay());
        assert!(completed >= 1, "no agent ever completed a job {}", replay());

        // The heart of the property: the decision log assembled across a
        // leader death is identical to a fresh single-node replay of the
        // same seed against the same surface — pruning is a pure function
        // of (seed, scores), never of timing, job ids or which node ruled.
        let replayed = ChronosControl::new(
            MetadataStore::in_memory(),
            Arc::new(SystemClock),
            default_scheduler(),
        );
        let owner = replayed.create_user("replay", "pw", Role::Admin).unwrap();
        let system = replayed
            .register_system(
                "surface-sut",
                "",
                vec![
                    ParamDef::new(
                        "x",
                        "",
                        ParamType::Interval { min: 0, max: axis - 1, step: 1 },
                        Value::from(0),
                    )
                    .unwrap(),
                    ParamDef::new(
                        "y",
                        "",
                        ParamType::Interval { min: 0, max: axis - 1, step: 1 },
                        Value::from(0),
                    )
                    .unwrap(),
                ],
                vec![],
            )
            .unwrap();
        let replay_deployment = replayed.create_deployment(system.id, "replay", "1").unwrap();
        let replay_project = replayed.create_project("replay", "", owner.id).unwrap();
        let replay_experiment = replayed
            .create_experiment_with_strategy(
                replay_project.id,
                system.id,
                "adaptive failover sweep",
                "",
                ParamAssignments::new().sweep_all("x").sweep_all("y"),
                Strategy::Adaptive(AdaptiveConfig {
                    seed: strategy_seed,
                    initial: Some(8),
                    eta: 2,
                    metric: "/throughput_ops_per_sec".into(),
                    maximize: true,
                }),
            )
            .unwrap();
        let replay_evaluation = replayed.create_evaluation(replay_experiment.id).unwrap();
        while let Some(job) = replayed.claim_next_job(replay_deployment.id, None).unwrap() {
            let x = job.parameters.get("x").and_then(Value::as_i64).unwrap();
            let y = job.parameters.get("y").and_then(Value::as_i64).unwrap();
            let d = (axis - 1) as f64;
            replayed
                .finish_job(
                    job.id,
                    surface.result_document(&[x as f64 / d, y as f64 / d]),
                    vec![],
                    Some(job.attempts),
                    None,
                )
                .unwrap();
        }
        let replay_frontier = replayed
            .get_evaluation(replay_evaluation.id)
            .unwrap()
            .source
            .and_then(|s| s.frontier)
            .unwrap();
        assert_eq!(
            frontier.decisions,
            replay_frontier.decisions,
            "pruning decisions diverged across the leader failover {}",
            replay()
        );
        assert_eq!(
            frontier.candidates,
            replay_frontier.candidates,
            "different survivor across the leader failover {}",
            replay()
        );

        for mut server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn torn_shipped_segment_installs_prefix_and_is_reshipped() {
        let _guard = serial();
        let lease = Duration::from_millis(200);
        let servers = start_cluster_with(2, lease, default_scheduler);
        let leader = wait_for_leader(&servers, Duration::from_secs(10));
        wait_replicated(
            &servers,
            servers[leader].control().replication_offset(),
            Duration::from_secs(5),
        );

        // The next *data* segment tears after 20 bytes (torn policies are
        // one-shot, modelling a crash mid-install; heartbeats don't spend
        // it). The follower applies the complete frame prefix — none, for
        // a 20-byte keep — and acks short, so the leader re-ships the
        // segment from the acked offset and the replica self-heals.
        fail::arm("cluster.install.torn", Policy::Torn { keep: 20 });
        servers[leader].control().create_user("torn-user", "torn-pw", Role::Admin).unwrap();
        let target = servers[leader].control().replication_offset();
        let follower = 1 - leader;
        let deadline = Instant::now() + Duration::from_secs(5);
        while fail::hits("cluster.install.torn") == 0 {
            assert!(Instant::now() < deadline, "the torn failpoint never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        wait_replicated(&servers, target, Duration::from_secs(5));
        assert_eq!(
            servers[follower].control().read_replication(0, 1 << 20).unwrap(),
            servers[leader].control().read_replication(0, 1 << 20).unwrap(),
            "after the re-ship the replica feed is byte-identical: the torn install \
             neither lost nor duplicated frames"
        );
        // State-level proof the torn frame applied exactly once in the end.
        login(&servers[follower].base_url(), "torn-user", "torn-pw");
        for mut server in servers {
            server.shutdown();
        }
    }
}
