//! Result-analytics integration tests: the automatic regression endpoint
//! over a real 50-run history with an injected 2× step, its determinism
//! under a fixed seed, the regression flag on the experiment status body,
//! and deadline propagation on the new handlers.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use chronos::api::{ErrorEnvelope, WireDecode, CODE_DEADLINE_EXCEEDED};
use chronos::json::{obj, Value};
use common::TestEnv;

/// Runs one evaluation (single job — all parameters at their defaults),
/// claims it, and uploads a result with the given throughput. Returns the
/// evaluation id.
fn upload_run(env: &TestEnv, experiment_id: &str, deployment_id: &str, throughput: f64) -> String {
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();
    let total = evaluation.get("total_points").and_then(Value::as_u64).unwrap();
    assert_eq!(total, 1, "default parameters must plan one point");
    let claimed = env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id});
    let job_id = claimed.get("id").and_then(Value::as_str).unwrap().to_string();
    let data = obj! {
        "throughput_ops_per_sec" => throughput,
        "wall_millis" => 2_000,
        "total_ops" => 400,
    };
    let response =
        env.post_raw(&format!("/api/v1/agent/jobs/{job_id}/result"), &obj! {"data" => data});
    assert_eq!(response.status.0, 201, "{}", String::from_utf8_lossy(&response.body));
    evaluation_id
}

/// Deterministic per-run jitter, small next to the injected step.
fn jitter(i: usize) -> f64 {
    ((i * 37) % 11) as f64 - 5.0
}

#[test]
fn regression_scan_flags_injected_step_and_is_deterministic() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project_id, experiment_id) = env.create_demo_experiment(&system_id, obj! {});

    // 50 runs: flat around 2000 ops/s, dropping 2× to ~1000 at run 25.
    for i in 0..50 {
        let level = if i < 25 { 2_000.0 } else { 1_000.0 };
        upload_run(&env, &experiment_id, &deployment_id, level + jitter(i));
    }

    // Before any scan the experiment status body carries no flag — it is
    // byte-compatible with bodies from before the field existed.
    let detail = env.get(&format!("/api/v1/experiments/{experiment_id}"));
    assert!(detail.get("regressions").is_none(), "{detail}");

    let report = env.get(&format!("/api/v1/experiments/{experiment_id}/regressions"));
    assert_eq!(report.get("experiment_id").and_then(Value::as_str), Some(experiment_id.as_str()));
    assert_eq!(report.get("value_path").and_then(Value::as_str), Some("/throughput_ops_per_sec"));
    let runs = report.get("runs").and_then(Value::as_array).unwrap();
    assert_eq!(runs.len(), 50);
    for (i, run) in runs.iter().enumerate() {
        let level = if i < 25 { 2_000.0 } else { 1_000.0 };
        assert_eq!(run.get("mean").and_then(Value::as_f64), Some(level + jitter(i)), "run {i}");
        assert_eq!(run.get("jobs_measured").and_then(Value::as_i64), Some(1));
    }

    // Exactly one change point at the injected step — no false positives
    // on the flat prefix (or suffix).
    let change_points = report.get("change_points").and_then(Value::as_array).unwrap();
    assert_eq!(change_points.len(), 1, "{report}");
    let cp = &change_points[0];
    let index = cp.get("index").and_then(Value::as_i64).unwrap();
    assert!((24..=26).contains(&index), "change point at {index}, expected ~25");
    let before = cp.get("before_mean").and_then(Value::as_f64).unwrap();
    let after = cp.get("after_mean").and_then(Value::as_f64).unwrap();
    assert!(before > 1_900.0 && before < 2_100.0, "before_mean {before}");
    assert!(after > 900.0 && after < 1_100.0, "after_mean {after}");
    assert!(cp.get("p_value").and_then(Value::as_f64).unwrap() <= 0.05);
    assert_eq!(report.get("regressed").and_then(Value::as_bool), Some(true));

    // Fixed seed → byte-identical reports, call after call.
    let first = env.get_raw(&format!("/api/v1/experiments/{experiment_id}/regressions"));
    let second = env.get_raw(&format!("/api/v1/experiments/{experiment_id}/regressions"));
    assert_eq!(first.body, second.body, "detection must be deterministic under a fixed seed");
    // Echoed detection parameters are the documented defaults.
    assert_eq!(report.get("seed").and_then(Value::as_i64), Some(42));
    assert_eq!(report.get("permutations").and_then(Value::as_i64), Some(199));
    assert_eq!(report.get("min_segment").and_then(Value::as_i64), Some(5));

    // The scan cached a flag on the experiment status body.
    let detail = env.get(&format!("/api/v1/experiments/{experiment_id}"));
    let flag = detail.get("regressions").expect("flag after scan");
    assert_eq!(flag.get("regressed").and_then(Value::as_bool), Some(true));
    assert_eq!(flag.get("change_points").and_then(Value::as_i64), Some(1));
    assert_eq!(flag.get("runs").and_then(Value::as_i64), Some(50));
    assert_eq!(flag.get("value_path").and_then(Value::as_str), Some("/throughput_ops_per_sec"));
}

#[test]
fn flat_history_has_no_false_positives() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project_id, experiment_id) = env.create_demo_experiment(&system_id, obj! {});

    for i in 0..30 {
        upload_run(&env, &experiment_id, &deployment_id, 1_500.0 + jitter(i));
    }

    let report = env.get(&format!("/api/v1/experiments/{experiment_id}/regressions"));
    let change_points = report.get("change_points").and_then(Value::as_array).unwrap();
    assert!(change_points.is_empty(), "flat history flagged: {report}");
    assert_eq!(report.get("regressed").and_then(Value::as_bool), Some(false));

    let detail = env.get(&format!("/api/v1/experiments/{experiment_id}"));
    let flag = detail.get("regressions").expect("flag after scan");
    assert_eq!(flag.get("regressed").and_then(Value::as_bool), Some(false));
    assert_eq!(flag.get("change_points").and_then(Value::as_i64), Some(0));
}

#[test]
fn improvement_step_is_a_change_point_but_not_a_regression() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project_id, experiment_id) = env.create_demo_experiment(&system_id, obj! {});

    // Throughput doubles at run 15: a change point, but not a regression.
    for i in 0..30 {
        let level = if i < 15 { 1_000.0 } else { 2_000.0 };
        upload_run(&env, &experiment_id, &deployment_id, level + jitter(i));
    }

    let report = env.get(&format!("/api/v1/experiments/{experiment_id}/regressions"));
    let change_points = report.get("change_points").and_then(Value::as_array).unwrap();
    assert_eq!(change_points.len(), 1, "{report}");
    assert_eq!(report.get("regressed").and_then(Value::as_bool), Some(false));
}

/// One raw `GET` over a fresh connection (`Connection: close`) so extra
/// header lines — the deadline budget — can be injected verbatim.
fn raw_get(addr: SocketAddr, path: &str, extra_headers: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: test\r\n{extra_headers}Connection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .expect("status line");
    (status, body.to_string())
}

#[test]
fn regression_endpoint_propagates_deadline() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project_id, experiment_id) = env.create_demo_experiment(&system_id, obj! {});
    upload_run(&env, &experiment_id, &deployment_id, 1_000.0);

    // A zero-millisecond budget has always expired by dispatch time: the
    // handler must refuse with the typed 504 before doing any scan work.
    let path = format!("/api/v1/experiments/{experiment_id}/regressions");
    let (status, body) = raw_get(env.server.addr(), &path, "X-Chronos-Deadline-Ms: 0\r\n");
    assert_eq!(status, 504, "body: {body}");
    let envelope = ErrorEnvelope::decode(&chronos::json::parse(&body).unwrap()).unwrap();
    assert!(envelope.is_deadline_exceeded(), "envelope: {envelope:?}");
    assert_eq!(envelope.code, chronos::api::ErrorCode::Named(CODE_DEADLINE_EXCEEDED.into()));

    // A generous budget (plus the session token) sails through.
    let token = format!("X-Chronos-Token: {}\r\n", env.admin_token);
    let (status, body) =
        raw_get(env.server.addr(), &path, &format!("X-Chronos-Deadline-Ms: 30000\r\n{token}"));
    assert_eq!(status, 200, "body: {body}");
}
