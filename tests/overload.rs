//! Overload-protection and graceful-degradation integration tests.
//!
//! Exercises the bounded admission path end to end over real sockets: typed
//! `429 overloaded` / `503 draining` shed envelopes with `Retry-After`
//! hints, deadline-budget refusal, the two-phase drain (in-flight requests
//! finish, keep-alive connections close politely), and the agent's
//! Retry-After-honoring retry loop.
//!
//! Load-bearing detail: the blocking server pins one worker per *admitted
//! connection*, so every test that needs to pass through admission control
//! uses raw connection-per-request sockets (`Connection: close`) instead of
//! the keep-alive [`chronos::http::Client`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos::api::{ErrorEnvelope, WireDecode, CODE_DEADLINE_EXCEEDED, CODE_OVERLOADED};
use chronos::core::auth::Role;
use chronos::core::scheduler::SchedulerConfig;
use chronos::core::store::MetadataStore;
use chronos::core::ChronosControl;
use chronos::http::{Client, Server};
use chronos::json::Value;
use chronos::server::ChronosServer;
use chronos::util::{Id, SystemClock};

/// A parsed raw-socket response: status code, lower-cased headers, body.
struct RawResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl RawResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    fn envelope(&self) -> ErrorEnvelope {
        let value = chronos::json::parse(&self.body)
            .unwrap_or_else(|e| panic!("unparseable body {:?}: {e}", self.body));
        ErrorEnvelope::decode(&value).expect("typed error envelope")
    }
}

/// Reads everything the server sends until EOF and parses it as one
/// response (all shed and `Connection: close` responses end with EOF).
fn read_response(stream: &mut TcpStream) -> RawResponse {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    assert!(!raw.is_empty(), "server closed the connection without a response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    RawResponse { status, headers, body: body.to_string() }
}

/// One `GET path` over a fresh connection with `Connection: close`, plus
/// any extra header lines (already `\r\n`-terminated).
fn raw_get(addr: SocketAddr, path: &str, extra_headers: &str) -> RawResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: test\r\n{extra_headers}Connection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("write request");
    read_response(&mut stream)
}

/// A connection that is *admitted* (it occupies a worker) but whose request
/// never completes until [`HeldRequest::finish`] sends the final blank
/// line. This is how the tests pin server capacity deterministically.
struct HeldRequest {
    stream: TcpStream,
}

impl HeldRequest {
    fn open(addr: SocketAddr, path: &str) -> HeldRequest {
        let mut stream = TcpStream::connect(addr).expect("connect holder");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Complete request line, dangling header section: the worker parses
        // the line, then blocks polling for the rest of the head.
        let partial = format!("GET {path} HTTP/1.1\r\nHost: holder\r\n");
        stream.write_all(partial.as_bytes()).expect("write partial request");
        HeldRequest { stream }
    }

    /// Completes the request and returns the server's response.
    fn finish(mut self) -> RawResponse {
        self.stream.write_all(b"Connection: close\r\n\r\n").expect("finish request");
        read_response(&mut self.stream)
    }
}

fn small_control() -> Arc<ChronosControl> {
    let control = Arc::new(ChronosControl::new(
        MetadataStore::in_memory(),
        Arc::new(SystemClock),
        SchedulerConfig::default(),
    ));
    control.create_user("admin", "admin-pw", Role::Admin).unwrap();
    control
}

/// Spins until `condition` holds (the accept thread runs asynchronously).
fn wait_for(what: &str, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn healthz_and_readyz_answer_without_auth() {
    let server = ChronosServer::start(small_control(), "127.0.0.1:0").unwrap();
    let health = raw_get(server.addr(), "/healthz", "");
    assert_eq!(health.status, 200, "healthz body: {}", health.body);
    assert!(health.body.contains("\"ok\""), "healthz body: {}", health.body);

    let ready = raw_get(server.addr(), "/readyz", "");
    assert_eq!(ready.status, 200, "readyz body: {}", ready.body);
    let value = chronos::json::parse(&ready.body).unwrap();
    assert_eq!(value.get("ready").and_then(Value::as_bool), Some(true));
    assert_eq!(value.get("draining").and_then(Value::as_bool), Some(false));
    assert_eq!(value.get("store_healthy").and_then(Value::as_bool), Some(true));
}

#[test]
fn shed_connection_gets_typed_overloaded_envelope_with_retry_hints() {
    // Capacity one: a single worker, no queue slots, in-flight cap 1.
    let mut server = ChronosServer::start_with(
        small_control(),
        "127.0.0.1:0",
        Server::new().workers(1).queue_depth(0).retry_after(Duration::from_millis(250)),
    )
    .unwrap();
    let metrics = server.metrics();

    // Pin the only capacity unit with a held request…
    let holder = HeldRequest::open(server.addr(), "/healthz");
    wait_for("holder admission", || metrics.inflight.get() >= 1);

    // …so the next connection must be shed with the typed envelope.
    let shed = raw_get(server.addr(), "/healthz", "");
    assert_eq!(shed.status, 429, "expected a shed, got: {}", shed.body);
    let envelope = shed.envelope();
    assert!(envelope.is_retryable_overload(), "envelope: {envelope:?}");
    assert_eq!(shed.envelope().code, chronos::api::ErrorCode::Named(CODE_OVERLOADED.into()));
    // Both hint flavors: standard seconds (rounded up) and exact millis.
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert_eq!(shed.header("x-chronos-retry-after-ms"), Some("250"));
    assert!(metrics.shed_overload.get() >= 1);

    // Releasing the held request frees the capacity again.
    let held = holder.finish();
    assert_eq!(held.status, 200);
    wait_for("capacity release", || metrics.inflight.get() == 0);
    // The worker decrements `inflight` just before it re-polls the queue, so
    // with queue_depth(0) a request landing in that sliver can still be shed;
    // retry briefly until the worker is parked on the queue again.
    let deadline = Instant::now() + Duration::from_secs(5);
    let after = loop {
        let response = raw_get(server.addr(), "/healthz", "");
        if response.status != 429 || Instant::now() >= deadline {
            break response;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(after.status, 200, "after release: {}", after.body);
    server.shutdown();
}

#[test]
fn expired_deadline_is_refused_with_typed_504() {
    let mut server = ChronosServer::start(small_control(), "127.0.0.1:0").unwrap();
    let metrics = server.metrics();

    // A zero-millisecond budget has always expired by dispatch time.
    let refused = raw_get(server.addr(), "/healthz", "X-Chronos-Deadline-Ms: 0\r\n");
    assert_eq!(refused.status, 504, "body: {}", refused.body);
    let envelope = refused.envelope();
    assert!(envelope.is_deadline_exceeded(), "envelope: {envelope:?}");
    assert_eq!(envelope.code, chronos::api::ErrorCode::Named(CODE_DEADLINE_EXCEEDED.into()));
    assert_eq!(metrics.deadline_exceeded.get(), 1);

    // A generous budget sails through.
    let ok = raw_get(server.addr(), "/healthz", "X-Chronos-Deadline-Ms: 30000\r\n");
    assert_eq!(ok.status, 200, "body: {}", ok.body);
    server.shutdown();
}

#[test]
fn drain_finishes_inflight_requests_and_flips_readyz() {
    let mut server = ChronosServer::start_with(
        small_control(),
        "127.0.0.1:0",
        Server::new().workers(2).queue_depth(2),
    )
    .unwrap();
    let addr = server.addr();
    let metrics = server.metrics();

    // A keep-alive client connection, admitted while the server is healthy.
    let client = Client::new(&server.base_url()).with_timeout(Duration::from_secs(5));
    let ready = client.get("/readyz").unwrap();
    assert_eq!(ready.status.0, 200);

    // An in-flight request that drain must wait for.
    let holder = HeldRequest::open(addr, "/healthz");
    wait_for("holder admission", || metrics.inflight.get() >= 2);

    let (held_response, drain_clean) = std::thread::scope(|scope| {
        let drain = scope.spawn(|| server.drain());

        // While draining, readiness reports unavailability: either the
        // still-open keep-alive connection serves `/readyz` as 503
        // `ready:false` (then closes politely), or a reconnect is shed with
        // the typed 503 `draining` envelope. Both are correct; both say
        // "draining".
        let mut saw_draining = false;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline && !saw_draining {
            match client.get("/readyz") {
                Ok(response) if response.status.0 == 503 => {
                    let body = String::from_utf8_lossy(&response.body).into_owned();
                    assert!(body.contains("draining"), "503 without drain marker: {body}");
                    saw_draining = true;
                }
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        assert!(saw_draining, "readyz never reported draining");

        // The held request still completes — drain never drops admitted
        // work — and its connection is cut politely, not mid-keep-alive.
        let held_response = holder.finish();
        (held_response, drain.join().expect("drain thread"))
    });

    assert_eq!(held_response.status, 200, "in-flight request dropped during drain");
    assert_eq!(
        held_response.header("connection"),
        Some("close"),
        "drain must close served keep-alive connections politely"
    );
    assert!(drain_clean, "drain timed out with requests still in flight");
    assert!(server.is_draining());
    assert_eq!(server.pool_panics(), 0);

    // Fully stopped now: readiness can no longer be probed, and shutdown
    // after drain is an idempotent no-op.
    server.shutdown();
}

#[test]
fn agent_retry_honors_server_retry_after_hint() {
    // A stub control endpoint: the first claim attempt is shed with a
    // 150 ms Retry-After hint, the second returns an empty queue.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let stub_hits = Arc::clone(&hits);
    let stub = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain the request head + body (small, single read suffices
            // once the blank line has arrived).
            let mut buf = [0u8; 4096];
            let mut head = Vec::new();
            while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => head.extend_from_slice(&buf[..n]),
                }
            }
            let hit = stub_hits.fetch_add(1, Ordering::SeqCst);
            let response = if hit == 0 {
                let body = r#"{"error":{"code":"overloaded","message":"stub shed"}}"#;
                format!(
                    "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                     Retry-After: 1\r\nX-Chronos-Retry-After-Ms: 150\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
            } else {
                "HTTP/1.1 204 No Content\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                    .to_string()
            };
            let _ = stream.write_all(response.as_bytes());
            if hit >= 1 {
                break;
            }
        }
    });

    let client = chronos::agent::ControlClient::new(&format!("http://{addr}"), "stub-token");
    let started = Instant::now();
    let claimed = client.claim(Id::generate()).expect("claim after retry");
    let elapsed = started.elapsed();
    stub.join().unwrap();

    assert!(claimed.is_none(), "stub reports an empty queue");
    assert_eq!(hits.load(Ordering::SeqCst), 2, "exactly one retry");
    assert!(
        elapsed >= Duration::from_millis(150),
        "retry fired after {elapsed:?}, before the 150 ms Retry-After hint"
    );
}

#[test]
fn every_connection_gets_an_answer_under_overload() {
    // Tight capacity and an aggressive client swarm: nobody may be dropped
    // silently — every connection ends in a 2xx or a typed shed.
    let mut server = ChronosServer::start_with(
        small_control(),
        "127.0.0.1:0",
        Server::new().workers(1).queue_depth(1).retry_after(Duration::from_millis(5)),
    )
    .unwrap();
    let addr = server.addr();
    let metrics = server.metrics();

    const THREADS: usize = 3;
    const REQUESTS: usize = 30;
    let counts: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(move || {
                    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
                    for _ in 0..REQUESTS {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                        let request = "GET /healthz HTTP/1.1\r\nHost: swarm\r\n\
                                       Connection: close\r\n\r\n";
                        if stream.write_all(request.as_bytes()).is_err() {
                            errors += 1;
                            continue;
                        }
                        let mut raw = Vec::new();
                        if stream.read_to_end(&mut raw).is_err() || raw.is_empty() {
                            errors += 1;
                            continue;
                        }
                        let status = String::from_utf8_lossy(&raw)
                            .split_whitespace()
                            .nth(1)
                            .and_then(|s| s.parse::<u16>().ok())
                            .unwrap_or(0);
                        match status {
                            200..=299 => ok += 1,
                            429 => shed += 1,
                            other => panic!("unexpected status {other}"),
                        }
                    }
                    (ok, shed, errors)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let total = (THREADS * REQUESTS) as u64;
    let ok: u64 = counts.iter().map(|c| c.0).sum();
    let shed: u64 = counts.iter().map(|c| c.1).sum();
    let errors: u64 = counts.iter().map(|c| c.2).sum();
    assert_eq!(errors, 0, "connections dropped without a response");
    assert_eq!(ok + shed, total);
    assert!(ok >= 1, "no request was ever admitted");

    // Server-side accounting agrees: every connection was either admitted
    // or counted as shed — none vanished.
    wait_for("metrics settling", || metrics.accepted.get() + metrics.shed_overload.get() == total);
    assert_eq!(metrics.shed_draining.get(), 0);
    assert_eq!(server.pool_panics(), 0);
    server.shutdown();
}
