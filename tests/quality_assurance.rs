//! Paper §3: "The separation of experiments and evaluations comes in handy
//! if certain evaluations need to be repeated multiple times [...] for the
//! quality assurance monitoring the performance of an SuE over subsequent
//! change sets." — re-run the same experiment, track the trend, detect
//! regressions.

mod common;

use chronos::json::{obj, Value};
use common::TestEnv;

/// Finishes every scheduled job of `experiment` with a fixed throughput,
/// simulating an SuE build with that performance level.
fn run_evaluation_with_throughput(
    env: &TestEnv,
    experiment_id: &str,
    deployment_id: &str,
    throughput: f64,
) {
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    // Lazy planning: jobs materialize as the claim path pulls points.
    let total = evaluation.get("total_points").and_then(Value::as_u64).unwrap();
    for _ in 0..total {
        let claimed = env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id});
        let job_id = claimed.get("id").and_then(Value::as_str).unwrap();
        env.post(
            &format!("/api/v1/agent/jobs/{job_id}/result"),
            &obj! {"data" => obj! {"throughput_ops_per_sec" => throughput}},
        );
    }
}

#[test]
fn trend_detects_a_regression_between_change_sets() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 50, "operation_count" => 50});

    // Three "builds": stable, stable, then a 40% performance regression.
    run_evaluation_with_throughput(&env, &experiment_id, &deployment_id, 1000.0);
    run_evaluation_with_throughput(&env, &experiment_id, &deployment_id, 1020.0);
    run_evaluation_with_throughput(&env, &experiment_id, &deployment_id, 600.0);

    let trend = env.get(&format!(
        "/api/v1/experiments/{experiment_id}/trend?path=/throughput_ops_per_sec&threshold=0.1"
    ));
    let runs = trend.get("runs").and_then(Value::as_array).unwrap();
    assert_eq!(runs.len(), 3);
    assert_eq!(runs[0].get("mean").and_then(Value::as_f64), Some(1000.0));
    assert_eq!(runs[0].get("change"), Some(&Value::Null), "first run has no baseline");
    assert_eq!(runs[0].get("regressed").and_then(Value::as_bool), Some(false));
    // +2% is not a regression.
    assert_eq!(runs[1].get("regressed").and_then(Value::as_bool), Some(false));
    // -41% is.
    assert_eq!(runs[2].get("regressed").and_then(Value::as_bool), Some(true));
    let change = runs[2].get("change").and_then(Value::as_f64).unwrap();
    assert!((change - (600.0 - 1020.0) / 1020.0).abs() < 1e-9);
    assert_eq!(trend.get("regressions").and_then(Value::as_i64), Some(1));
}

#[test]
fn trend_threshold_is_configurable() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 50, "operation_count" => 50});
    run_evaluation_with_throughput(&env, &experiment_id, &deployment_id, 1000.0);
    run_evaluation_with_throughput(&env, &experiment_id, &deployment_id, 950.0); // -5%

    // 10% threshold: fine. 2% threshold: regression.
    let lax = env.get(&format!("/api/v1/experiments/{experiment_id}/trend?threshold=0.10"));
    assert_eq!(lax.get("regressions").and_then(Value::as_i64), Some(0));
    let strict = env.get(&format!("/api/v1/experiments/{experiment_id}/trend?threshold=0.02"));
    assert_eq!(strict.get("regressions").and_then(Value::as_i64), Some(1));
}

#[test]
fn unfinished_evaluations_are_skipped() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 50, "operation_count" => 50});
    run_evaluation_with_throughput(&env, &experiment_id, &deployment_id, 500.0);
    // A second evaluation exists but has no results yet.
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let trend = env.get(&format!("/api/v1/experiments/{experiment_id}/trend"));
    assert_eq!(trend.get("runs").and_then(Value::as_array).map(Vec::len), Some(1));
}
