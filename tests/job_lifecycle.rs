//! F3c — job details: status, progress, log, timeline, abort and
//! reschedule (paper Fig. 3c), plus the reliability machinery of
//! requirement *(iii)*: heartbeat timeouts and automatic re-scheduling.

mod common;

use std::time::Duration;

use chronos::core::scheduler::SchedulerConfig;
use chronos::json::{obj, Value};
use common::TestEnv;

/// One evaluation with a single point, materialized and back in
/// `scheduled`: lazy evaluations only create job documents on the claim
/// path, so this claims the point and fails it once (auto-reschedule puts
/// it straight back) to hand tests a concrete scheduled job id.
fn schedule_one_job(env: &TestEnv) -> (String, String) {
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 50, "operation_count" => 100});
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let claimed =
        env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    let job_id = claimed.get("id").and_then(Value::as_str).unwrap().to_string();
    let failed = env.post(
        &format!("/api/v1/agent/jobs/{job_id}/fail"),
        &obj! {"reason" => "released for test setup"},
    );
    assert_eq!(failed.get("state").and_then(Value::as_str), Some("scheduled"));
    (job_id, deployment_id)
}

#[test]
fn abort_scheduled_job_via_api() {
    let env = TestEnv::start();
    let (job_id, deployment_id) = schedule_one_job(&env);
    let aborted = env.post(&format!("/api/v1/jobs/{job_id}/abort"), &obj! {});
    assert_eq!(aborted.get("state").and_then(Value::as_str), Some("aborted"));
    // The timeline records the abort.
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    let timeline = job.get("timeline").and_then(Value::as_array).unwrap();
    assert!(timeline.iter().any(|e| e.get("kind").and_then(Value::as_str) == Some("aborted")));
    // An agent finds nothing to claim.
    assert_eq!(env.run_agent(&deployment_id), 0);
    // Aborting again conflicts (409).
    let again = env.http.post_json(&format!("/api/v1/jobs/{job_id}/abort"), &obj! {}).unwrap();
    assert_eq!(again.status.0, 409);
}

#[test]
fn agent_failure_reports_reschedules_then_quarantines() {
    // max_attempts=2 under auto-reschedule: first failure auto-reschedules,
    // second exhausts the attempt budget and quarantines the job.
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 30_000,
        max_attempts: 2,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = env.register_demo_system();
    // workload "z" is invalid -> DocstoreClient::set_up fails every attempt.
    // (The experiment layer cannot catch this: "z" is a valid checkbox
    // option only in the schema-less value sense, so use a bad record count
    // instead: engine name that the client rejects.)
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => -5, "operation_count" => 10});
    // record_count -5 clamps to 1 in the client, so that would succeed —
    // instead drive the failure through the API directly:
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});

    // Claim via the agent endpoint (this materializes the single point),
    // then report failure (attempt 1).
    let claimed =
        env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    let job_id = claimed.get("id").and_then(Value::as_str).unwrap().to_string();
    let failed = env.post(
        &format!("/api/v1/agent/jobs/{job_id}/fail"),
        &obj! {"reason" => "benchmark binary crashed"},
    );
    // Auto-rescheduled after the first failure.
    assert_eq!(failed.get("state").and_then(Value::as_str), Some("scheduled"));
    assert_eq!(failed.get("attempts").and_then(Value::as_i64), Some(1));

    // Attempt 2 fails -> the attempt budget is spent; the job is poison
    // and lands in the terminal quarantine instead of thrashing forever.
    env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    let failed =
        env.post(&format!("/api/v1/agent/jobs/{job_id}/fail"), &obj! {"reason" => "crashed again"});
    assert_eq!(failed.get("state").and_then(Value::as_str), Some("quarantined"));
    assert_eq!(failed.get("failure").and_then(Value::as_str), Some("crashed again"));

    // Quarantine is terminal: the UI reschedule endpoint (Fig. 3c)
    // refuses, and an agent finds nothing to claim.
    let refused =
        env.http.post_json(&format!("/api/v1/jobs/{job_id}/reschedule"), &obj! {}).unwrap();
    assert_eq!(refused.status.0, 409);
    assert_eq!(env.run_agent(&deployment_id), 0);
    // The timeline tells the whole story.
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    let kinds: Vec<String> = job
        .get("timeline")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str).map(str::to_string))
        .collect();
    assert_eq!(kinds.iter().filter(|k| *k == "failed").count(), 2);
    assert!(kinds.contains(&"quarantined".to_string()));
}

#[test]
fn manual_mode_failure_sticks_and_reschedules() {
    // auto_reschedule=false: a failure sticks as `failed` (reschedulable,
    // never quarantined) until an operator intervenes via Fig. 3c.
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 30_000,
        max_attempts: 2,
        auto_reschedule: false,
    });
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 20, "operation_count" => 10});
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});

    let claimed =
        env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    let job_id = claimed.get("id").and_then(Value::as_str).unwrap().to_string();
    let failed = env.post(
        &format!("/api/v1/agent/jobs/{job_id}/fail"),
        &obj! {"reason" => "benchmark binary crashed"},
    );
    assert_eq!(failed.get("state").and_then(Value::as_str), Some("failed"));
    assert_eq!(failed.get("failure").and_then(Value::as_str), Some("benchmark binary crashed"));

    // Manual reschedule via the UI endpoint and a healthy run.
    let rescheduled = env.post(&format!("/api/v1/jobs/{job_id}/reschedule"), &obj! {});
    assert_eq!(rescheduled.get("state").and_then(Value::as_str), Some("scheduled"));
    assert_eq!(env.run_agent(&deployment_id), 1);
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    assert_eq!(job.get("state").and_then(Value::as_str), Some("finished"));
    let kinds: Vec<String> = job
        .get("timeline")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str).map(str::to_string))
        .collect();
    assert_eq!(kinds.iter().filter(|k| *k == "failed").count(), 1);
    assert!(kinds.contains(&"finished".to_string()));
    assert!(!kinds.contains(&"quarantined".to_string()));
}

#[test]
fn heartbeat_timeout_fails_and_reschedules_job() {
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 300,
        max_attempts: 5,
        auto_reschedule: true,
    });
    let (job_id, deployment_id) = schedule_one_job(&env);
    // Claim the job and then "crash" (never heartbeat again).
    env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    // The server-side sweeper (500 ms interval) must notice within ~1.5 s.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let job = env.get(&format!("/api/v1/jobs/{job_id}"));
        let state = job.get("state").and_then(Value::as_str).unwrap().to_string();
        if state == "scheduled" {
            let timeline: Vec<String> = job
                .get("timeline")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .filter_map(|e| e.get("message").and_then(Value::as_str).map(str::to_string))
                .collect();
            assert!(timeline.iter().any(|m| m.contains("heartbeat timeout")), "{timeline:?}");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sweeper never fired; state={state}");
        std::thread::sleep(Duration::from_millis(100));
    }
    // A healthy agent picks the job up again and completes it.
    assert_eq!(env.run_agent(&deployment_id), 1);
}

#[test]
fn heartbeats_keep_long_jobs_alive() {
    // Tight 700 ms lease: the job only survives because the agent's
    // heartbeat thread (100 ms interval) keeps renewing it.
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 700,
        max_attempts: 1,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env.create_demo_experiment(
        &system_id,
        // Big enough to run for over a second.
        obj! {"record_count" => 2000, "operation_count" => 30000, "threads" => 2},
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();
    assert_eq!(env.run_agent(&deployment_id), 1);
    let evaluation = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    let job_id = evaluation.pointer("/job_ids/0").and_then(Value::as_str).unwrap().to_string();
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    assert_eq!(job.get("state").and_then(Value::as_str), Some("finished"), "{job}");
    assert_eq!(job.get("attempts").and_then(Value::as_i64), Some(1), "no retry happened");
}

#[test]
fn progress_is_observable_while_running() {
    let env = TestEnv::start();
    let (job_id, deployment_id) = schedule_one_job(&env);
    env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    env.post(&format!("/api/v1/agent/jobs/{job_id}/heartbeat"), &obj! {"progress" => 37});
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    assert_eq!(job.get("progress").and_then(Value::as_i64), Some(37));
    assert_eq!(job.get("state").and_then(Value::as_str), Some("running"));
    // Log streaming shows up immediately.
    let log_upload = env
        .http
        .post_bytes(
            &format!("/api/v1/agent/jobs/{job_id}/log"),
            "text/plain",
            b"phase 2 of 5 running\n".to_vec(),
        )
        .unwrap();
    assert!(log_upload.status.is_success());
    let log = env.get_raw(&format!("/api/v1/jobs/{job_id}/log"));
    assert!(String::from_utf8_lossy(&log.body).contains("phase 2 of 5"));
}
