//! F2 — system configuration (paper Fig. 2 and workflow 1 of §3):
//! registering a system with its parameters and chart definitions, either
//! inline or from a definition document on disk (the git/mercurial
//! repository path substitute).

mod common;

use chronos::json::{arr, obj, Value};
use common::TestEnv;

#[test]
fn register_system_inline_and_fetch() {
    let env = TestEnv::start();
    let created = env.post("/api/v1/systems", &TestEnv::demo_system_definition());
    let system_id = created.get("id").and_then(Value::as_str).unwrap();
    assert_eq!(created.get("name").and_then(Value::as_str), Some("minidoc"));
    let fetched = env.get(&format!("/api/v1/systems/{system_id}"));
    assert_eq!(fetched.get("parameters").and_then(Value::as_array).map(Vec::len), Some(6));
    assert_eq!(fetched.get("charts").and_then(Value::as_array).map(Vec::len), Some(2));
    let listing = env.get("/api/v1/systems");
    assert_eq!(listing.as_array().map(Vec::len), Some(1));
}

#[test]
fn register_system_from_definition_file() {
    // Workflow 1 of §3: the system definition lives in a (checked-out)
    // repository; Chronos imports the definition document.
    let env = TestEnv::start();
    let path = std::env::temp_dir().join(format!("chronos-system-def-{}.json", std::process::id()));
    std::fs::write(&path, TestEnv::demo_system_definition().to_pretty_string()).unwrap();
    let definition = chronos::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let created = env.post("/api/v1/systems", &definition);
    assert_eq!(created.get("name").and_then(Value::as_str), Some("minidoc"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn duplicate_system_names_conflict() {
    let env = TestEnv::start();
    env.post("/api/v1/systems", &TestEnv::demo_system_definition());
    let again = env.http.post_json("/api/v1/systems", &TestEnv::demo_system_definition()).unwrap();
    assert_eq!(again.status.0, 409);
}

#[test]
fn malformed_definitions_are_rejected() {
    let env = TestEnv::start();
    for (definition, why) in [
        (obj! {"description" => "nameless"}, "missing name"),
        (
            obj! {
                "name" => "bad1",
                "parameters" => arr![obj! {"name" => "p", "type" => "alien", "default" => 1}],
            },
            "unknown parameter type",
        ),
        (
            obj! {
                "name" => "bad2",
                "parameters" => arr![obj! {
                    "name" => "p", "type" => "interval", "min" => 9, "max" => 1, "default" => 1
                }],
            },
            "inverted interval",
        ),
        (
            obj! {
                "name" => "bad3",
                "parameters" => arr![obj! {
                    "name" => "p", "type" => "boolean", "default" => "not-a-bool"
                }],
            },
            "default/type mismatch",
        ),
    ] {
        let response = env.http.post_json("/api/v1/systems", &definition).unwrap();
        assert_eq!(response.status.0, 400, "{why}: {}", String::from_utf8_lossy(&response.body));
    }
    // None of the rejects leaked into the store.
    assert_eq!(env.get("/api/v1/systems").as_array().map(Vec::len), Some(0));
}

#[test]
fn experiments_validate_against_the_schema() {
    let env = TestEnv::start();
    let (system_id, _deployment) = env.register_demo_system();
    let project = env.post("/api/v1/projects", &obj! {"name" => "p"});
    let project_id = project.get("id").and_then(Value::as_str).unwrap();

    // Unknown parameter.
    let bad = env
        .http
        .post_json(
            &format!("/api/v1/projects/{project_id}/experiments"),
            &obj! {
                "name" => "bad",
                "system_id" => system_id.as_str(),
                "parameters" => obj! {"warp_factor" => 9},
            },
        )
        .unwrap();
    assert_eq!(bad.status.0, 400);

    // Out-of-range interval value.
    let bad = env
        .http
        .post_json(
            &format!("/api/v1/projects/{project_id}/experiments"),
            &obj! {
                "name" => "bad",
                "system_id" => system_id.as_str(),
                "parameters" => obj! {"threads" => 99},
            },
        )
        .unwrap();
    assert_eq!(bad.status.0, 400);

    // Option not in the checkbox list.
    let bad = env
        .http
        .post_json(
            &format!("/api/v1/projects/{project_id}/experiments"),
            &obj! {
                "name" => "bad",
                "system_id" => system_id.as_str(),
                "parameters" => obj! {"engine" => "rocksdb"},
            },
        )
        .unwrap();
    assert_eq!(bad.status.0, 400);

    // A valid one still goes through.
    let good = env.post(
        &format!("/api/v1/projects/{project_id}/experiments"),
        &obj! {
            "name" => "good",
            "system_id" => system_id.as_str(),
            "parameters" => obj! {"threads" => obj! {"sweep" => arr![1, 2, 4]}},
        },
    );
    assert!(good.get("id").is_some());
}
