//! The server-rendered web UI (paper §2.2 / Figs. 2 and 3): every page the
//! original Chronos Control shows in a browser, reproduced as HTML over the
//! same core, navigated end-to-end.

mod common;

use chronos::json::{arr, obj, Value};
use common::TestEnv;

fn get_html(env: &TestEnv, path: &str) -> String {
    let response = env.get_raw(path);
    assert!(
        response.status.is_success(),
        "GET {path}: {} {}",
        response.status.0,
        String::from_utf8_lossy(&response.body)
    );
    assert!(response.headers.get("content-type").unwrap_or_default().starts_with("text/html"));
    String::from_utf8_lossy(&response.body).into_owned()
}

#[test]
fn ui_pages_require_a_token() {
    let env = TestEnv::start();
    for path in ["/ui", "/ui/systems/x", "/ui/jobs/x"] {
        let response = env.get_raw(path); // header token is ignored by the UI
        assert_eq!(response.status.0, 403, "{path}");
    }
    let response = env.get_raw("/ui?token=forged");
    assert_eq!(response.status.0, 403);
}

#[test]
fn full_ui_walkthrough() {
    let env = TestEnv::start();
    let token = env.admin_token.clone();
    let (system_id, deployment_id) = env.register_demo_system();
    let (project_id, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "engine" => obj! {"sweep" => "all"},
            "threads" => obj! {"sweep" => arr![1, 2]},
            "record_count" => 80,
            "operation_count" => 160,
        },
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();

    // Overview lists the system and the project.
    let overview = get_html(&env, &format!("/ui?token={token}"));
    assert!(overview.contains("minidoc"));
    assert!(overview.contains("demo project"));

    // System page (Fig. 2) shows the parameter schema and chart config.
    let system_page = get_html(&env, &format!("/ui/systems/{system_id}?token={token}"));
    assert!(system_page.contains("engine"));
    assert!(system_page.contains("checkbox"));
    assert!(system_page.contains("interval"));
    assert!(system_page.contains("Throughput by thread count"));
    assert!(system_page.contains("test-node"), "deployments listed");

    // Project -> experiment (Fig. 3a) with the parameter assignment.
    let project_page = get_html(&env, &format!("/ui/projects/{project_id}?token={token}"));
    assert!(project_page.contains("engine comparison"));
    let experiment_page = get_html(&env, &format!("/ui/experiments/{experiment_id}?token={token}"));
    assert!(experiment_page.contains("&quot;sweep&quot;"), "assignment JSON shown escaped");

    // Evaluation page before the run (Fig. 3b): the space is planned but
    // lazy — no job documents yet, all four points pending materialization.
    let eval_page = get_html(&env, &format!("/ui/evaluations/{evaluation_id}?token={token}"));
    assert_eq!(eval_page.matches("state scheduled").count(), 0);
    assert!(eval_page.contains("4 points not yet materialized"), "{eval_page}");
    assert!(!eval_page.contains("<svg"), "no charts before results exist");

    // Run the evaluation and revisit.
    assert_eq!(env.run_agent(&deployment_id), 4);
    let evaluation = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    let job_id = evaluation.pointer("/job_ids/0").and_then(Value::as_str).unwrap().to_string();
    let eval_page = get_html(&env, &format!("/ui/evaluations/{evaluation_id}?token={token}"));
    assert_eq!(eval_page.matches("state finished").count(), 4);
    assert!(eval_page.contains("100% settled"));
    // Charts render inline as SVG (Fig. 3d) with both engine series.
    assert!(eval_page.contains("<svg"), "charts embedded after the run");
    assert!(eval_page.contains("wiredtiger") && eval_page.contains("mmapv1"));

    // Job page (Fig. 3c): badge, timeline, log, result.
    let job_page = get_html(&env, &format!("/ui/jobs/{job_id}?token={token}"));
    assert!(job_page.contains("state finished"));
    assert!(job_page.contains("Timeline"));
    assert!(job_page.contains("result uploaded"));
    assert!(job_page.contains("agent: starting minidoc-ycsb"), "log shown");
    assert!(job_page.contains("throughput_ops_per_sec"), "result document shown");
}

#[test]
fn ui_escapes_hostile_content() {
    let env = TestEnv::start();
    let token = env.admin_token.clone();
    // A system whose description tries to inject markup.
    env.post(
        "/api/v1/systems",
        &obj! {
            "name" => "xss<script>alert(1)</script>",
            "description" => "<img src=x onerror=alert(1)>",
            "parameters" => arr![],
            "charts" => arr![],
        },
    );
    let overview = get_html(&env, &format!("/ui?token={token}"));
    assert!(!overview.contains("<script>alert"), "script tags must be escaped");
    assert!(overview.contains("&lt;script&gt;"));
    assert!(!overview.contains("<img src=x"));
}

#[test]
fn ui_404_for_missing_entities() {
    let env = TestEnv::start();
    let token = env.admin_token.clone();
    let bogus = chronos::util::Id::generate();
    let response = env.get_raw(&format!("/ui/jobs/{bogus}?token={token}"));
    assert_eq!(response.status.0, 404);
}
