//! F1 — the full toolkit wired end-to-end over real sockets (paper Fig. 1):
//! Chronos Control (REST API) + a Chronos Agent + the minidoc SuE.
//!
//! Reproduces the complete demo workflow of §3: register the system, create
//! project and experiment (engine × threads), run the evaluation through an
//! agent, and analyze the results (status roll-up, summary, charts).

mod common;

use chronos::json::{arr, obj, Value};
use common::TestEnv;

#[test]
fn full_demo_workflow() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();

    // Experiment: both engines × {1, 2} threads — 4 jobs.
    let (project_id, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "engine" => obj! {"sweep" => "all"},
            "threads" => obj! {"sweep" => arr![1, 2]},
            "record_count" => 150,
            "operation_count" => 300,
        },
    );

    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();
    // Lazy planning: the full space is known, but no jobs exist yet.
    assert_eq!(evaluation.get("job_ids").and_then(Value::as_array).map(Vec::len), Some(0));
    assert_eq!(evaluation.get("total_points").and_then(Value::as_u64), Some(4));

    // Status before any agent runs: nothing materialized, 4 points pending.
    let detail = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    assert_eq!(detail.pointer("/status/scheduled").and_then(Value::as_i64), Some(0));
    assert_eq!(detail.pointer("/status/remaining_space").and_then(Value::as_i64), Some(4));
    assert_eq!(detail.pointer("/status/total").and_then(Value::as_i64), Some(4));
    assert_eq!(detail.pointer("/status/progress_percent").and_then(Value::as_i64), Some(0));
    assert_eq!(detail.pointer("/status/settled").and_then(Value::as_bool), Some(false));

    // Run the agent until the queue drains.
    let completed = env.run_agent(&deployment_id);
    assert_eq!(completed, 4);

    // All jobs finished.
    let detail = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    assert_eq!(detail.pointer("/status/finished").and_then(Value::as_i64), Some(4));
    assert_eq!(detail.pointer("/status/settled").and_then(Value::as_bool), Some(true));
    assert_eq!(detail.pointer("/status/progress_percent").and_then(Value::as_i64), Some(100));

    // Every job carries progress 100, a result id and a log.
    let jobs = env.get(&format!("/api/v1/evaluations/{evaluation_id}/jobs"));
    for job in jobs.as_array().unwrap() {
        assert_eq!(job.get("state").and_then(Value::as_str), Some("finished"));
        assert_eq!(job.get("progress").and_then(Value::as_i64), Some(100));
        let job_id = job.get("id").and_then(Value::as_str).unwrap();
        let log = env.get_raw(&format!("/api/v1/jobs/{job_id}/log"));
        let log_text = String::from_utf8_lossy(&log.body).into_owned();
        assert!(log_text.contains("agent: starting minidoc-ycsb"), "{log_text}");
        assert!(log_text.contains("execute:"), "{log_text}");
        // Result document has the standard measurements.
        let result_id = job.get("result_id").and_then(Value::as_str).unwrap();
        let result = env.get(&format!("/api/v1/results/{result_id}"));
        assert_eq!(result.pointer("/data/total_ops").and_then(Value::as_u64), Some(300));
        assert!(result.pointer("/data/agent/execute_millis").is_some());
        // And the zip archive contains result.json + throughput.csv.
        let archive = env.get_raw(&format!("/api/v1/results/{result_id}/archive.zip"));
        let zip = chronos::zip::ZipArchive::parse(&archive.body).unwrap();
        assert!(zip.names().contains(&"result.json"));
        assert!(zip.names().contains(&"throughput.csv"));
    }

    // Analysis: the summary table has 4 rows.
    let summary = env.get(&format!("/api/v1/evaluations/{evaluation_id}/summary"));
    assert_eq!(summary.get("rows").and_then(Value::as_array).map(Vec::len), Some(4));

    // Charts render in both formats (paper Fig. 3d).
    let svg = env.get_raw(&format!("/api/v1/evaluations/{evaluation_id}/charts/0.svg"));
    assert!(svg.status.is_success());
    let svg_text = String::from_utf8_lossy(&svg.body).into_owned();
    assert!(svg_text.starts_with("<svg"));
    assert!(svg_text.contains("wiredtiger") && svg_text.contains("mmapv1"));
    let txt = env.get_raw(&format!("/api/v1/evaluations/{evaluation_id}/charts/1.txt"));
    assert!(txt.status.is_success());

    // Archive the whole project (requirement iv) and inspect the bundle.
    let archive = env.get_raw(&format!("/api/v1/projects/{project_id}/archive.zip"));
    assert!(archive.status.is_success());
    let zip = chronos::zip::ZipArchive::parse(&archive.body).unwrap();
    assert!(zip.names().contains(&"project.json"));
    assert!(zip.names().contains(&"manifest.json"));
    assert!(zip.names().iter().filter(|n| n.ends_with("/result.json")).count() == 4);
}

#[test]
fn trigger_endpoint_schedules_evaluation_from_build_bot() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_project, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 50, "operation_count" => 100});
    // A CI system reports a successful build -> evaluation is scheduled.
    let triggered = env.post(
        "/api/v1/trigger/build",
        &obj! {"experiment_id" => experiment_id.as_str(), "build" => "ci-build-1234"},
    );
    assert_eq!(triggered.get("jobs").and_then(Value::as_i64), Some(1));
    assert_eq!(
        triggered.pointer("/triggered_by/build").and_then(Value::as_str),
        Some("ci-build-1234")
    );
    assert_eq!(env.run_agent(&deployment_id), 1);
}

#[test]
fn installation_stats_roll_up() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let (_p, experiment_id) = env
        .create_demo_experiment(&system_id, obj! {"record_count" => 50, "operation_count" => 50});
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let stats = env.get("/api/v1/stats");
    // The planned-but-unmaterialized point shows up as remaining space.
    assert_eq!(stats.pointer("/jobs/scheduled").and_then(Value::as_i64), Some(0));
    assert_eq!(stats.pointer("/jobs/remaining_space").and_then(Value::as_i64), Some(1));
    assert_eq!(stats.get("systems").and_then(Value::as_i64), Some(1));
    env.run_agent(&deployment_id);
    let stats = env.get("/api/v1/stats");
    assert_eq!(stats.pointer("/jobs/finished").and_then(Value::as_i64), Some(1));
}
