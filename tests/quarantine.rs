//! Budget enforcement end to end: a runaway job is killed by the agent's
//! budget watchdog with a typed `budget_exceeded` failure, retried up to
//! `max_attempts`, and finally quarantined — while compliant jobs in the
//! same queue finish exactly once.

mod common;

use std::time::Duration;

use chronos::agent::{
    AgentConfig, ChronosAgent, ControlClient, EvaluationClient, JobContext, BUDGET_EXCEEDED_PREFIX,
};
use chronos::core::scheduler::SchedulerConfig;
use chronos::json::{arr, obj, Value};
use chronos::workload::{RunawayKind, RunawayScenario};
use common::TestEnv;

/// A harness client: `scenario=well_behaved` returns a quick result,
/// `spin_cpu` / `alloc_bomb` abuse that resource until cancelled (the
/// bounded [`RunawayScenario`] loops poll the context, as any well-
/// integrated evaluation client does).
struct RunawayClient;

impl EvaluationClient for RunawayClient {
    fn name(&self) -> &str {
        "runaway-harness"
    }

    fn set_up(&mut self, _ctx: &JobContext) -> Result<(), String> {
        Ok(())
    }

    fn execute(&mut self, ctx: &JobContext) -> Result<Value, String> {
        let scenario = ctx.param_str("scenario").unwrap_or_default();
        match RunawayKind::parse(&scenario) {
            Some(kind) => {
                RunawayScenario::new(kind).run(&|| ctx.is_cancelled());
                // Only reached when cancelled (or the safety cap saved the
                // host): the watchdog's breach report supersedes this.
                Err(format!("runaway scenario stopped: {}", ctx.cancel_reason()))
            }
            None => Ok(obj! {"throughput_ops_per_sec" => 1234}),
        }
    }
}

/// The harness system: one parameter selecting the behavior.
fn register_runaway_system(env: &TestEnv) -> (String, String) {
    let system = env.post(
        "/api/v1/systems",
        &obj! {
            "name" => "runaway-harness",
            "description" => "budget enforcement test harness",
            "parameters" => arr![
                obj! {
                    "name" => "scenario",
                    "description" => "how the job behaves",
                    "type" => "checkbox",
                    "options" => arr!["well_behaved", "spin_cpu", "alloc_bomb"],
                    "default" => "well_behaved",
                },
            ],
            "charts" => arr![],
        },
    );
    let system_id = system.get("id").and_then(Value::as_str).unwrap().to_string();
    let deployment = env.post(
        &format!("/api/v1/systems/{system_id}/deployments"),
        &obj! {"environment" => "test-node", "version" => "0.1.0"},
    );
    let deployment_id = deployment.get("id").and_then(Value::as_str).unwrap().to_string();
    (system_id, deployment_id)
}

/// Creates a budgeted experiment over the given scenario sweep; returns the
/// evaluation id.
fn budgeted_evaluation(env: &TestEnv, system_id: &str, scenarios: Value, budget: Value) -> String {
    let project = env
        .post("/api/v1/projects", &obj! {"name" => "containment", "description" => "budget tests"});
    let project_id = project.get("id").and_then(Value::as_str).unwrap().to_string();
    let experiment = env.post(
        &format!("/api/v1/projects/{project_id}/experiments"),
        &obj! {
            "name" => "budgeted run",
            "system_id" => system_id,
            "parameters" => obj! {"scenario" => obj! {"sweep" => scenarios}},
            "budget" => budget,
        },
    );
    let experiment_id = experiment.get("id").and_then(Value::as_str).unwrap().to_string();
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    evaluation.get("id").and_then(Value::as_str).unwrap().to_string()
}

fn run_harness_agent(env: &TestEnv, deployment_id: &str) -> u64 {
    let client = ControlClient::new(&env.server.base_url(), &env.admin_token);
    let deployment = chronos::util::Id::parse_base32(deployment_id).unwrap();
    let mut config = AgentConfig::new(deployment);
    config.heartbeat_interval = Duration::from_millis(100);
    config.poll_interval = Duration::from_millis(50);
    config.budget_poll_interval = Duration::from_millis(10);
    let mut agent = ChronosAgent::new(client, config, RunawayClient);
    agent.run_until_idle(Duration::from_millis(400)).unwrap()
}

#[test]
fn runaway_cpu_job_is_killed_and_quarantined_while_others_finish() {
    // max_attempts=2: the runaway breaches twice, then is quarantined.
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 30_000,
        max_attempts: 2,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = register_runaway_system(&env);
    let evaluation_id = budgeted_evaluation(
        &env,
        &system_id,
        arr!["well_behaved", "spin_cpu"],
        // Generous wall ceiling; the spin loop trips the cpu budget long
        // before the runaway scenario's own 10 s safety cap.
        obj! {"cpu_millis" => 250, "wall_millis" => 5_000},
    );

    run_harness_agent(&env, &deployment_id);

    // Roll-up: one finished, one quarantined, nothing left open.
    let evaluation = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    let status = evaluation.get("status").unwrap();
    assert_eq!(status.get("finished").and_then(Value::as_i64), Some(1), "{status}");
    assert_eq!(status.get("quarantined").and_then(Value::as_i64), Some(1), "{status}");
    assert_eq!(status.get("scheduled").and_then(Value::as_i64), Some(0), "{status}");
    assert_eq!(status.get("running").and_then(Value::as_i64), Some(0), "{status}");
    assert_eq!(status.get("progress_percent").and_then(Value::as_i64), Some(100), "{status}");

    // The quarantined job carries the typed failure naming the dimension.
    let jobs = env.get(&format!("/api/v1/evaluations/{evaluation_id}/jobs"));
    let jobs = jobs.as_array().unwrap();
    assert_eq!(jobs.len(), 2, "results + quarantined account for every job");
    let quarantined = jobs
        .iter()
        .find(|j| j.get("state").and_then(Value::as_str) == Some("quarantined"))
        .expect("one job must be quarantined");
    let job_id = quarantined.get("id").and_then(Value::as_str).unwrap();
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    let failure = job.get("failure").and_then(Value::as_str).unwrap_or_default();
    assert!(
        failure.starts_with(BUDGET_EXCEEDED_PREFIX) && failure.contains("cpu_millis"),
        "typed failure names the violated dimension: {failure}"
    );
    assert_eq!(job.get("attempts").and_then(Value::as_i64), Some(2), "{job}");
    let kinds: Vec<&str> = job
        .get("timeline")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str))
        .collect();
    assert_eq!(kinds.iter().filter(|k| **k == "failed").count(), 2, "{kinds:?}");
    assert!(kinds.contains(&"quarantined"), "{kinds:?}");

    // Quarantine is terminal: no manual resurrection, no re-claim.
    let reschedule = env.post_raw(&format!("/api/v1/jobs/{job_id}/reschedule"), &obj! {});
    assert_eq!(reschedule.status.0, 409, "quarantined jobs cannot be rescheduled");
    assert_eq!(run_harness_agent(&env, &deployment_id), 0, "nothing left to claim");

    // The well-behaved job finished exactly once with a result.
    let finished = jobs
        .iter()
        .find(|j| j.get("state").and_then(Value::as_str) == Some("finished"))
        .expect("the compliant job must finish");
    assert_eq!(finished.get("attempts").and_then(Value::as_i64), Some(1));
    assert!(finished.get("result_id").and_then(Value::as_str).is_some());

    // The frozen v0 shape folds quarantined into `closed`.
    let v0 = env.get(&format!("/api/v0/evaluations/{evaluation_id}/status"));
    assert_eq!(v0.get("open").and_then(Value::as_i64), Some(0), "{v0}");
    assert_eq!(v0.get("closed").and_then(Value::as_i64), Some(2), "{v0}");
    assert_eq!(v0.get("percent").and_then(Value::as_i64), Some(100), "{v0}");
}

#[test]
fn alloc_bomb_breaches_the_rss_budget() {
    // max_attempts=1: a single breach quarantines immediately.
    let env = TestEnv::start_with_config(SchedulerConfig {
        heartbeat_timeout_millis: 30_000,
        max_attempts: 1,
        auto_reschedule: true,
    });
    let (system_id, deployment_id) = register_runaway_system(&env);
    // Budget = current resident set + 40 MiB: the 1-MiB-per-step alloc
    // bomb must cross it long before its own 256 MiB safety cap.
    let rss_now = chronos::agent::current_rss_kib().expect("procfs on linux");
    let evaluation_id = budgeted_evaluation(
        &env,
        &system_id,
        arr!["alloc_bomb"],
        obj! {"max_rss_kib" => rss_now + 40 * 1024},
    );

    run_harness_agent(&env, &deployment_id);

    let evaluation = env.get(&format!("/api/v1/evaluations/{evaluation_id}"));
    let status = evaluation.get("status").unwrap();
    assert_eq!(status.get("quarantined").and_then(Value::as_i64), Some(1), "{status}");
    let jobs = env.get(&format!("/api/v1/evaluations/{evaluation_id}/jobs"));
    let job = &jobs.as_array().unwrap()[0];
    assert_eq!(job.get("state").and_then(Value::as_str), Some("quarantined"));
    let job_id = job.get("id").and_then(Value::as_str).unwrap();
    let failure = env
        .get(&format!("/api/v1/jobs/{job_id}"))
        .get("failure")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    assert!(
        failure.starts_with(BUDGET_EXCEEDED_PREFIX) && failure.contains("max_rss_kib"),
        "typed failure names the violated dimension: {failure}"
    );
}

#[test]
fn budget_rides_the_claim_response() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = register_runaway_system(&env);
    budgeted_evaluation(
        &env,
        &system_id,
        arr!["well_behaved"],
        obj! {"cpu_millis" => 9000, "io_bytes" => 123456},
    );
    let claimed =
        env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    assert_eq!(claimed.pointer("/budget/cpu_millis").and_then(Value::as_i64), Some(9000));
    assert_eq!(claimed.pointer("/budget/io_bytes").and_then(Value::as_i64), Some(123456));
    assert!(claimed.pointer("/budget/wall_millis").is_none(), "absent dimensions stay absent");
}

#[test]
fn unbudgeted_experiments_never_arm_the_watchdog() {
    // An empty budget object normalizes away entirely: the claim carries
    // no budget and the runaway-capable agent runs the job unconstrained.
    let env = TestEnv::start();
    let (system_id, deployment_id) = register_runaway_system(&env);
    budgeted_evaluation(&env, &system_id, arr!["well_behaved"], obj! {});
    let claimed =
        env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.as_str()});
    assert!(claimed.get("budget").is_none(), "empty budgets are dropped at creation");
    let job_id = claimed.get("id").and_then(Value::as_str).unwrap().to_string();
    env.post(&format!("/api/v1/agent/jobs/{job_id}/fail"), &obj! {"reason" => "released for test"});
    assert_eq!(run_harness_agent(&env, &deployment_id), 1);
}
