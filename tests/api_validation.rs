//! Regression tests for the request-validation hardening that came with the
//! typed wire contract: fields the handlers used to silently default are now
//! rejected with a 400 envelope, malformed JSON bodies are 400s instead of
//! being treated as empty objects, and ill-formed path ids are 400s.

mod common;

use chronos::api::{ErrorEnvelope, WireDecode};
use chronos::json::{obj, Value};
use common::TestEnv;

/// Decodes the error envelope of a non-2xx response and asserts the status.
fn expect_error(response: chronos::http::Response, status: u16) -> ErrorEnvelope {
    assert_eq!(
        response.status.0,
        status,
        "expected {status}, got {}: {}",
        response.status.0,
        String::from_utf8_lossy(&response.body)
    );
    let body = response.json_body().expect("error responses carry a JSON body");
    ErrorEnvelope::decode(&body).expect("error responses carry the standard envelope")
}

/// A claimed job to exercise the agent endpoints against.
fn claimed_job(env: &TestEnv, deployment_id: &str, system_id: &str) -> String {
    let (_p, experiment_id) = env
        .create_demo_experiment(system_id, obj! {"engine" => "wiredtiger", "record_count" => 10});
    env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let job = env.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id});
    job.get("id").and_then(Value::as_str).expect("claim returns the job").to_string()
}

#[test]
fn deployment_without_version_is_rejected() {
    let env = TestEnv::start();
    let system = env.post("/api/v1/systems", &TestEnv::demo_system_definition());
    let system_id = system.get("id").and_then(Value::as_str).unwrap();
    // `version` used to default to "unknown", which made every deployment
    // indistinguishable in trend analysis. Now it is required.
    let response = env.post_raw(
        &format!("/api/v1/systems/{system_id}/deployments"),
        &obj! {"environment" => "test-node"},
    );
    let envelope = expect_error(response, 400);
    assert!(envelope.message.contains("missing field \"version\""), "got: {}", envelope.message);
    // The documented default for `environment` is still honoured.
    let deployment =
        env.post(&format!("/api/v1/systems/{system_id}/deployments"), &obj! {"version" => "0.1.0"});
    assert_eq!(deployment.get("environment").and_then(Value::as_str), Some("default"));
}

#[test]
fn fail_without_reason_is_rejected() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let job_id = claimed_job(&env, &deployment_id, &system_id);
    // A failure report without a reason used to become a canned string;
    // now the agent must say what went wrong.
    let response =
        env.post_raw(&format!("/api/v1/agent/jobs/{job_id}/fail"), &obj! {"attempt" => 1});
    let envelope = expect_error(response, 400);
    assert!(envelope.message.contains("missing field \"reason\""), "got: {}", envelope.message);
    // The job is untouched by the rejected report.
    let job = env.get(&format!("/api/v1/jobs/{job_id}"));
    assert_eq!(job.get("state").and_then(Value::as_str), Some("running"));
}

#[test]
fn malformed_json_bodies_are_rejected() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let job_id = claimed_job(&env, &deployment_id, &system_id);
    // Garbage bodies used to decode as empty objects and take the silent
    // defaults; every typed endpoint now answers 400.
    for path in [
        format!("/api/v1/agent/jobs/{job_id}/heartbeat"),
        format!("/api/v1/agent/jobs/{job_id}/fail"),
        "/api/v1/agent/claim".to_string(),
    ] {
        let response = env.post_bytes_raw(&path, "application/json", b"{not json");
        let envelope = expect_error(response, 400);
        assert!(envelope.message.contains("bad JSON body"), "{path}: {}", envelope.message);
    }
}

#[test]
fn heartbeat_with_ill_typed_fields_is_rejected() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let job_id = claimed_job(&env, &deployment_id, &system_id);
    let path = format!("/api/v1/agent/jobs/{job_id}/heartbeat");
    // Progress and attempt stay optional, but a present ill-typed value is
    // an error — a heartbeat that silently drops its fencing token would
    // defeat the lease protocol.
    expect_error(env.post_raw(&path, &obj! {"progress" => "later"}), 400);
    expect_error(env.post_raw(&path, &obj! {"progress" => 250}), 400);
    expect_error(env.post_raw(&path, &obj! {"attempt" => "one"}), 400);
    // An empty heartbeat (just liveness) is still fine.
    let ack = env.post(&path, &obj! {});
    assert_eq!(ack.get("state").and_then(Value::as_str), Some("running"));
}

#[test]
fn result_upload_without_data_is_rejected() {
    let env = TestEnv::start();
    let (system_id, deployment_id) = env.register_demo_system();
    let job_id = claimed_job(&env, &deployment_id, &system_id);
    let response =
        env.post_raw(&format!("/api/v1/agent/jobs/{job_id}/result"), &obj! {"attempt" => 1});
    let envelope = expect_error(response, 400);
    assert!(envelope.message.contains("result needs \"data\""), "got: {}", envelope.message);
}

#[test]
fn claim_without_deployment_is_rejected() {
    let env = TestEnv::start();
    let response = env.post_raw("/api/v1/agent/claim", &obj! {});
    let envelope = expect_error(response, 400);
    assert!(
        envelope.message.contains("missing field \"deployment_id\""),
        "got: {}",
        envelope.message
    );
}

#[test]
fn unknown_role_is_rejected_but_absent_role_defaults_to_member() {
    let env = TestEnv::start();
    // Present-but-unknown used to silently downgrade to viewer/member.
    let response = env.post_raw(
        "/api/v1/users",
        &obj! {"username" => "eve", "password" => "pw", "role" => "root"},
    );
    let envelope = expect_error(response, 400);
    assert!(envelope.message.contains("invalid role"), "got: {}", envelope.message);
    // Ill-typed role is rejected too (it used to be ignored).
    expect_error(
        env.post_raw("/api/v1/users", &obj! {"username" => "eve", "password" => "pw", "role" => 7}),
        400,
    );
    // Absent role keeps its documented default.
    let user = env.post("/api/v1/users", &obj! {"username" => "bob", "password" => "pw"});
    assert_eq!(user.get("role").and_then(Value::as_str), Some("member"));
    assert!(user.get("password_hash").is_none(), "hash must never be served");
}

#[test]
fn bad_path_ids_are_rejected_with_a_typed_message() {
    let env = TestEnv::start();
    let envelope = expect_error(env.get_raw("/api/v1/jobs/not-a-valid-id"), 400);
    assert!(envelope.message.contains("invalid :id id"), "got: {}", envelope.message);
    // The numeric envelope code mirrors the HTTP status.
    assert_eq!(envelope, ErrorEnvelope::status(400, envelope.message.clone()));
}
