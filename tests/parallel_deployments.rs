//! Requirement *(ii)* — multiple SuEs and parallel benchmark execution:
//! "Depending on the evaluation, the execution of jobs can be parallelized
//! if there are multiple identical deployments of the SuE" (paper §2.1).

mod common;

use std::collections::HashSet;
use std::time::Duration;

use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient};
use chronos::json::{arr, obj, Value};
use chronos::util::Id;
use common::TestEnv;

#[test]
fn two_identical_deployments_drain_one_evaluation_in_parallel() {
    let env = TestEnv::start();
    let (system_id, deployment_a) = env.register_demo_system();
    // A second identical deployment of the same system.
    let deployment_b = env
        .post(
            &format!("/api/v1/systems/{system_id}/deployments"),
            &obj! {"environment" => "test-node-2", "version" => "0.1.0"},
        )
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let (_project, experiment_id) = env.create_demo_experiment(
        &system_id,
        obj! {
            "threads" => obj! {"sweep" => arr![1, 2]},
            "engine" => obj! {"sweep" => "all"},
            "record_count" => 100,
            "operation_count" => 200,
        },
    );
    let evaluation =
        env.post(&format!("/api/v1/experiments/{experiment_id}/evaluations"), &obj! {});
    let evaluation_id = evaluation.get("id").and_then(Value::as_str).unwrap().to_string();

    // Two agents (one per deployment) run concurrently.
    let base_url = env.server.base_url();
    let token = env.admin_token.clone();
    let totals: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = [&deployment_a, &deployment_b]
            .into_iter()
            .map(|deployment_id| {
                let base_url = base_url.clone();
                let token = token.clone();
                let deployment = Id::parse_base32(deployment_id).unwrap();
                scope.spawn(move || {
                    let client = ControlClient::new(&base_url, &token);
                    let mut config = AgentConfig::new(deployment);
                    config.heartbeat_interval = Duration::from_millis(100);
                    config.poll_interval = Duration::from_millis(25);
                    let mut agent = ChronosAgent::new(client, config, DocstoreClient::new());
                    agent.run_until_idle(Duration::from_millis(400)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All four jobs ran exactly once, split across the deployments.
    assert_eq!(totals.iter().sum::<u64>(), 4, "totals: {totals:?}");
    let jobs = env.get(&format!("/api/v1/evaluations/{evaluation_id}/jobs"));
    let mut deployments_used = HashSet::new();
    for job in jobs.as_array().unwrap() {
        assert_eq!(job.get("state").and_then(Value::as_str), Some("finished"));
        assert_eq!(job.get("attempts").and_then(Value::as_i64), Some(1), "no double runs");
        deployments_used
            .insert(job.get("deployment_id").and_then(Value::as_str).unwrap().to_string());
    }
    // With 4 jobs, 2 agents and per-job runtimes well above the poll
    // interval, both deployments get work with overwhelming probability.
    assert_eq!(deployments_used.len(), 2, "both deployments participated");
}

#[test]
fn two_different_systems_evaluate_independently() {
    let env = TestEnv::start();
    let (minidoc_id, minidoc_deployment) = env.register_demo_system();
    // A second SuE with a disjoint parameter schema.
    let other = env.post(
        "/api/v1/systems",
        &obj! {
            "name" => "other-db",
            "parameters" => arr![
                obj! {"name" => "record_count", "type" => "value", "default" => 40},
                obj! {"name" => "operation_count", "type" => "value", "default" => 80},
            ],
            "charts" => arr![],
        },
    );
    let other_id = other.get("id").and_then(Value::as_str).unwrap().to_string();
    let other_deployment = env
        .post(
            &format!("/api/v1/systems/{other_id}/deployments"),
            &obj! {"environment" => "elsewhere", "version" => "0.1.0"},
        )
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let (_p1, minidoc_experiment) = env
        .create_demo_experiment(&minidoc_id, obj! {"record_count" => 60, "operation_count" => 120});
    let (_p2, other_experiment) = env.create_demo_experiment(&other_id, obj! {});
    env.post(&format!("/api/v1/experiments/{minidoc_experiment}/evaluations"), &obj! {});
    env.post(&format!("/api/v1/experiments/{other_experiment}/evaluations"), &obj! {});

    // The minidoc agent must only execute the minidoc job...
    assert_eq!(env.run_agent(&minidoc_deployment), 1);
    // ...and the other system's job is untouched until its agent runs.
    // (DocstoreClient happily runs any parameter object, so reuse it.)
    assert_eq!(env.run_agent(&other_deployment), 1);
}
