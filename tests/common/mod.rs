#![allow(dead_code)] // each integration-test binary uses a different subset

//! Shared fixture for the end-to-end integration tests: a running Chronos
//! Control server, an admin session, and helpers for the demo system.

use std::sync::Arc;
use std::time::Duration;

use chronos::core::auth::Role;
use chronos::core::scheduler::SchedulerConfig;
use chronos::core::store::MetadataStore;
use chronos::core::ChronosControl;
use chronos::http::{Client, Response};
use chronos::json::{arr, obj, Value};
use chronos::server::ChronosServer;
use chronos::util::SystemClock;

/// A live Chronos Control instance for one test.
pub struct TestEnv {
    pub server: ChronosServer,
    pub http: Client,
    pub admin_token: String,
}

impl TestEnv {
    /// Starts a server with the default scheduler policy.
    pub fn start() -> TestEnv {
        Self::start_with_config(SchedulerConfig::default())
    }

    /// Starts a server with a custom scheduler policy (short timeouts etc.).
    pub fn start_with_config(config: SchedulerConfig) -> TestEnv {
        Self::start_with_server(config, chronos::http::Server::new())
    }

    /// Starts a server with a custom scheduler policy *and* a custom HTTP
    /// server configuration (small worker pools, tight admission bounds —
    /// the overload and drain tests need deterministic capacity).
    pub fn start_with_server(
        config: SchedulerConfig,
        http_server: chronos::http::Server,
    ) -> TestEnv {
        let control = Arc::new(ChronosControl::new(
            MetadataStore::in_memory(),
            Arc::new(SystemClock),
            config,
        ));
        control.create_user("admin", "admin-pw", Role::Admin).unwrap();
        let server = ChronosServer::start_with(control, "127.0.0.1:0", http_server).unwrap();
        let http = Client::new(&server.base_url()).with_timeout(Duration::from_secs(10));
        let login = http
            .post_json("/api/v1/login", &obj! {"username" => "admin", "password" => "admin-pw"})
            .unwrap();
        let admin_token =
            login.json_body().unwrap().get("token").and_then(Value::as_str).unwrap().to_string();
        http.set_default_header("X-Chronos-Token", &admin_token);
        TestEnv { server, http, admin_token }
    }

    /// POST with the admin session; asserts 2xx and returns the JSON body.
    pub fn post(&self, path: &str, body: &Value) -> Value {
        let response = self.http.post_json(path, body).unwrap();
        assert!(
            response.status.is_success(),
            "POST {path}: {} {}",
            response.status.0,
            String::from_utf8_lossy(&response.body)
        );
        response.json_body().unwrap_or(Value::Null)
    }

    /// GET with the admin session; asserts 2xx and returns the JSON body.
    pub fn get(&self, path: &str) -> Value {
        let response = self.get_raw(path);
        assert!(
            response.status.is_success(),
            "GET {path}: {} {}",
            response.status.0,
            String::from_utf8_lossy(&response.body)
        );
        response.json_body().unwrap_or(Value::Null)
    }

    /// GET returning the raw response (for non-JSON bodies and error cases).
    pub fn get_raw(&self, path: &str) -> Response {
        self.http.get(path).unwrap()
    }

    /// POST returning the raw response (for asserting error statuses).
    pub fn post_raw(&self, path: &str, body: &Value) -> Response {
        self.http.post_json(path, body).unwrap()
    }

    /// POST of arbitrary bytes (for malformed-body tests).
    pub fn post_bytes_raw(&self, path: &str, content_type: &str, body: &[u8]) -> Response {
        self.http.post_bytes(path, content_type, body.to_vec()).unwrap()
    }

    /// The demo system definition (minidoc with its parameter schema and
    /// charts) — small record/operation counts for fast tests.
    pub fn demo_system_definition() -> Value {
        obj! {
            "name" => "minidoc",
            "description" => "embedded document store with two storage engines",
            "parameters" => arr![
                obj! {
                    "name" => "engine",
                    "description" => "storage engine",
                    "type" => "checkbox",
                    "options" => arr!["wiredtiger", "mmapv1"],
                    "default" => "wiredtiger",
                },
                obj! {
                    "name" => "threads",
                    "description" => "client threads",
                    "type" => "interval",
                    "min" => 1,
                    "max" => 8,
                    "step" => 1,
                    "default" => 1,
                },
                obj! {
                    "name" => "workload",
                    "description" => "YCSB core workload",
                    "type" => "checkbox",
                    "options" => arr!["a", "b", "c", "d", "e", "f"],
                    "default" => "a",
                },
                obj! {
                    "name" => "record_count",
                    "description" => "records to load",
                    "type" => "value",
                    "default" => 200,
                },
                obj! {
                    "name" => "operation_count",
                    "description" => "operations to run",
                    "type" => "value",
                    "default" => 400,
                },
                obj! {
                    "name" => "compression",
                    "description" => "block compression",
                    "type" => "boolean",
                    "default" => true,
                },
            ],
            "charts" => arr![
                obj! {
                    "kind" => "line",
                    "title" => "Throughput by thread count",
                    "x_param" => "threads",
                    "series_param" => "engine",
                    "value_path" => "/throughput_ops_per_sec",
                    "y_label" => "ops/s",
                },
                obj! {
                    "kind" => "bar",
                    "title" => "p99 read latency",
                    "x_param" => "threads",
                    "series_param" => "engine",
                    "value_path" => "/operations/read/latency_micros/p99",
                    "y_label" => "µs",
                },
            ],
        }
    }

    /// Registers the demo system and one deployment; returns
    /// `(system_id, deployment_id)` as strings.
    pub fn register_demo_system(&self) -> (String, String) {
        let system = self.post("/api/v1/systems", &Self::demo_system_definition());
        let system_id = system.get("id").and_then(Value::as_str).unwrap().to_string();
        let deployment = self.post(
            &format!("/api/v1/systems/{system_id}/deployments"),
            &obj! {"environment" => "test-node", "version" => "0.1.0"},
        );
        let deployment_id = deployment.get("id").and_then(Value::as_str).unwrap().to_string();
        (system_id, deployment_id)
    }

    /// Creates a project + experiment over the given parameter assignment;
    /// returns `(project_id, experiment_id)`.
    pub fn create_demo_experiment(&self, system_id: &str, parameters: Value) -> (String, String) {
        let project = self.post(
            "/api/v1/projects",
            &obj! {"name" => "demo project", "description" => "integration test"},
        );
        let project_id = project.get("id").and_then(Value::as_str).unwrap().to_string();
        let experiment = self.post(
            &format!("/api/v1/projects/{project_id}/experiments"),
            &obj! {
                "name" => "engine comparison",
                "system_id" => system_id,
                "parameters" => parameters,
            },
        );
        let experiment_id = experiment.get("id").and_then(Value::as_str).unwrap().to_string();
        (project_id, experiment_id)
    }

    /// Runs a [`chronos::agent::DocstoreClient`] agent against the given
    /// deployment until the queue is idle; returns jobs completed.
    pub fn run_agent(&self, deployment_id: &str) -> u64 {
        use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient};
        let client = ControlClient::new(&self.server.base_url(), &self.admin_token);
        let deployment = chronos::util::Id::parse_base32(deployment_id).unwrap();
        let mut config = AgentConfig::new(deployment);
        config.heartbeat_interval = Duration::from_millis(100);
        config.poll_interval = Duration::from_millis(50);
        let mut agent = ChronosAgent::new(client, config, DocstoreClient::new());
        agent.run_until_idle(Duration::from_millis(300)).unwrap()
    }
}
