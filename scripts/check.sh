#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [--bench]
#   --bench  also regenerate BENCH_control_plane.json via the E8 experiment
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

if [[ "${1:-}" == "--bench" ]]; then
    echo "== E8 control-plane bench -> BENCH_control_plane.json =="
    cargo build --release -p chronos-bench --offline
    ./target/release/chronos-bench E8 --json
fi

echo "OK"
