#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and a quick
# benchmark smoke run.
# Usage: scripts/check.sh [--bench]
#   --bench  also regenerate BENCH_control_plane.json / BENCH_data_plane.json
#            at full scale via the E8 and E9 experiments
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== chronos-bench smoke (E8 E9, quick sizes) =="
# Runs in a temp directory so the quick-size numbers don't clobber the
# committed full-scale BENCH_*.json files.
cargo build --release -p chronos-bench --offline
bench_bin="$PWD/target/release/chronos-bench"
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$bench_bin" E8 E9 --quick --json)
test -s "$smoke_dir/BENCH_control_plane.json"
test -s "$smoke_dir/BENCH_data_plane.json"
rm -rf "$smoke_dir"

if [[ "${1:-}" == "--bench" ]]; then
    echo "== full-scale E8 + E9 -> BENCH_*.json =="
    ./target/release/chronos-bench E8 E9 --json
fi

echo "OK"
