#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and a quick
# benchmark smoke run.
# Usage: scripts/check.sh [--bench] [--chaos] [--cluster]
#   --bench    also regenerate BENCH_control_plane.json / BENCH_data_plane.json /
#              BENCH_overload.json / BENCH_http_scale.json / BENCH_analytics.json /
#              BENCH_cluster.json / BENCH_adaptive.json / BENCH_isolation.json at
#              full scale via the E8, E9, E11, E12, E13, E14, E15 and E16
#              experiments
#   --chaos    also run the fault-injection suites (torture + chaos) with
#              --features failpoints under a fixed seed, and verify that the
#              default release build carries zero failpoint overhead
#   --cluster  also lint + run the replicated-control-plane suite: the
#              cluster storms (leader death mid-evaluation: exactly-once, and
#              mid-adaptive-evaluation: identical pruning decisions) at three
#              pinned seeds, plus an E14 quick smoke
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== clippy: wire-contract crate (deny warnings) =="
# The contract crate is the one clients link against; hold it to the
# strictest bar even if the workspace-wide lint set ever loosens.
cargo clippy -p chronos-api --all-targets --offline -- -D warnings

echo "== clippy: overload-protection + budget-enforcement crates (deny warnings) =="
# The admission/drain/retry path cuts across these crates, and the agent
# additionally carries the budget watchdog / cgroup containment modules;
# keep them individually warning-clean like the contract crate.
cargo clippy -p chronos-http -p chronos-agent -p chronos-server --all-targets --offline -- -D warnings

echo "== clippy: result-analytics crate (deny warnings) =="
# The columnar store backs every chart/summary read and the regression
# endpoint; hold it to the same individual bar.
cargo clippy -p chronos-analytics --all-targets --offline -- -D warnings

echo "== clippy: job-source / scheduling crates (deny warnings) =="
# The incremental JobSource (lazy materialization + adaptive successive
# halving) spans these crates; its determinism guarantees make them part
# of the durable contract, so lint them individually too.
cargo clippy -p chronos-core -p chronos-workload -p chronos-bench --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== wire compatibility: golden fixtures =="
# Byte-for-byte check of every frozen request/response body against the
# typed chronos-api encoders. A diff here means the wire contract moved;
# if that is intentional, re-bless with CHRONOS_BLESS=1 and say so in the
# changelog.
if ! cargo test -q --offline --test wire_compat; then
    echo "FAIL: wire contract drifted from tests/fixtures/api_v1/ (see above)" >&2
    exit 1
fi

echo "== chronos-bench smoke (E8 E9 E11 E12 E13 E15 E16, quick sizes) =="
# Runs in a temp directory so the quick-size numbers don't clobber the
# committed full-scale BENCH_*.json files. E15 also asserts the adaptive
# invariants (budget <= 30% of the grid, deterministic replay, survivor
# == sampled argmax), and E16 asserts the budget-watchdog invariants
# (<=2% overhead on compliant work, typed kills on runaway work), so the
# smoke doubles as a scheduling + isolation gate.
cargo build --release -p chronos-bench --offline
bench_bin="$PWD/target/release/chronos-bench"
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$bench_bin" E8 E9 E11 E12 E13 E15 E16 --quick --json)
test -s "$smoke_dir/BENCH_control_plane.json"
test -s "$smoke_dir/BENCH_data_plane.json"
test -s "$smoke_dir/BENCH_overload.json"
test -s "$smoke_dir/BENCH_http_scale.json"
test -s "$smoke_dir/BENCH_analytics.json"
test -s "$smoke_dir/BENCH_adaptive.json"
test -s "$smoke_dir/BENCH_isolation.json"
rm -rf "$smoke_dir"

echo "== overload protection gate (tests/overload.rs, both network cores) =="
# Typed shed envelopes, deadline refusal, graceful drain, Retry-After
# cooperation — pinned explicitly, not just via the workspace run, and on
# both the epoll reactor (platform default) and the threaded fallback so
# neither core can drift on overload semantics.
CHRONOS_HTTP_CORE=reactor cargo test -q --offline --test overload
CHRONOS_HTTP_CORE=threaded cargo test -q --offline --test overload

echo "== budget + quarantine gate (tests/quarantine.rs) =="
# Per-job resource budgets end to end: the watchdog kills a runaway with a
# typed budget_exceeded failure, max_attempts breaches land in Quarantined
# (never rescheduled, never re-claimed), compliant siblings finish exactly
# once, and unbudgeted experiments never arm the watchdog. Pinned
# explicitly like the overload gate — this is the containment contract.
cargo test -q --offline --test quarantine

for arg in "$@"; do
    case "$arg" in
    --bench)
        echo "== full-scale E8 + E9 + E11 + E12 + E13 + E14 + E15 + E16 -> BENCH_*.json =="
        ./target/release/chronos-bench E8 E9 E11 E12 E13 E14 E15 E16 --json
        ;;
    --chaos)
        echo "== fault injection: torture + chaos (--features failpoints) =="
        # A fixed seed keeps the fault schedule reproducible in CI; any
        # failure message carries the seed for local replay.
        CHRONOS_FAIL_SEED="${CHRONOS_FAIL_SEED:-20260807}" \
            cargo test -q --offline --features failpoints --test torture --test chaos
        echo "== zero-overhead check: default build has no failpoint sites =="
        # The fail_eval! macro compiles to a constant None without the
        # feature, so site-name literals must not survive in the release
        # binary. Finding one means a call site bypassed the macro gate.
        if grep -qa "core.store.wal.append" "$bench_bin"; then
            echo "FAIL: failpoint site strings found in release binary" >&2
            exit 1
        fi
        ;;
    --cluster)
        echo "== clippy with failpoints (deny warnings) =="
        # The storm module and every fail_eval! site only compile under
        # the feature; hold them to the same bar as the default build.
        cargo clippy --workspace --all-targets --offline --features failpoints -- -D warnings
        echo "== cluster storms: leader death mid-evaluation, 3 pinned seeds =="
        # Replicated control plane under a seeded fault storm: new leader
        # within the lease budget, every job finished exactly once,
        # follower reads inside the staleness bound — and for the adaptive
        # storm, the successive-halving decision log assembled across the
        # failover must equal a fresh single-node replay. The default seed
        # (0xBADCAB) plus two more; a failure prints its replay seed.
        cargo test -q --offline --features failpoints --test cluster
        for seed in 7 20260809; do
            CHRONOS_FAIL_SEED="$seed" \
                cargo test -q --offline --features failpoints --test cluster
        done
        echo "== E14 cluster smoke (quick sizes) =="
        cluster_dir="$(mktemp -d)"
        (cd "$cluster_dir" && "$bench_bin" E14 --quick --json)
        test -s "$cluster_dir/BENCH_cluster.json"
        rm -rf "$cluster_dir"
        ;;
    esac
done

echo "OK"
