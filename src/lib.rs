//! # Chronos — the Swiss Army Knife for Database Evaluations
//!
//! A from-scratch Rust reproduction of the Chronos Evaluation-as-a-Service
//! toolkit (Vogt et al., EDBT 2020). This facade crate re-exports the whole
//! public API:
//!
//! * [`core`] — Chronos Control: data model, parameter spaces, scheduler,
//!   reliability, archiving, analysis and charts.
//! * [`api`] — the typed wire contract: request/response DTOs, the error
//!   envelope, job states and API version negotiation.
//! * [`server`] — the versioned REST API over [`core`].
//! * [`agent`] — the Chronos Agent library and the demo evaluation client.
//! * [`minidoc`] — the embedded document store used as the demo System
//!   under Evaluation, with wiredTiger-like and mmapv1-like storage engines.
//! * [`workload`] — the YCSB-style benchmark workload generator.
//! * [`metrics`], [`json`], [`zip`], [`http`], [`util`] — substrates.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory.

pub use chronos_agent as agent;
pub use chronos_api as api;
pub use chronos_core as core;
pub use chronos_http as http;
pub use chronos_json as json;
pub use chronos_metrics as metrics;
pub use chronos_server as server;
pub use chronos_util as util;
pub use chronos_workload as workload;
pub use chronos_zip as zip;
pub use minidoc;
