//! ZIP reader: central-directory parsing and entry extraction.

use chronos_util::encode::crc32;

use crate::ZipError;

const LOCAL_HEADER_SIG: u32 = 0x0403_4B50;
const CENTRAL_HEADER_SIG: u32 = 0x0201_4B50;
const EOCD_SIG: u32 = 0x0605_4B50;

/// Metadata for one archive entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// Entry name (forward-slash separated, UTF-8).
    pub name: String,
    /// Uncompressed size in bytes.
    pub size: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
    /// True for directory entries (name ends with `/`).
    pub is_dir: bool,
    offset: u32,
}

/// A parsed in-memory ZIP archive.
///
/// Parsing reads only the central directory; payload bytes are extracted
/// (and checksum-verified) on demand by [`ZipArchive::read`].
#[derive(Debug)]
pub struct ZipArchive<'a> {
    data: &'a [u8],
    entries: Vec<ZipEntry>,
}

impl<'a> ZipArchive<'a> {
    /// Parses the archive's central directory.
    pub fn parse(data: &'a [u8]) -> Result<Self, ZipError> {
        let eocd = find_eocd(data)?;
        let entry_count = read_u16(data, eocd + 10)? as usize;
        let cd_offset = read_u32(data, eocd + 16)? as usize;
        let mut entries = Vec::with_capacity(entry_count);
        let mut pos = cd_offset;
        for _ in 0..entry_count {
            if read_u32(data, pos)? != CENTRAL_HEADER_SIG {
                return Err(ZipError::BadSignature("central directory header"));
            }
            let method = read_u16(data, pos + 10)?;
            if method != 0 {
                return Err(ZipError::UnsupportedMethod(method));
            }
            let crc = read_u32(data, pos + 16)?;
            let size = read_u32(data, pos + 24)?;
            let name_len = read_u16(data, pos + 28)? as usize;
            let extra_len = read_u16(data, pos + 30)? as usize;
            let comment_len = read_u16(data, pos + 32)? as usize;
            let offset = read_u32(data, pos + 42)?;
            let name_start = pos + 46;
            let name_bytes =
                data.get(name_start..name_start + name_len).ok_or(ZipError::Truncated)?;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| ZipError::BadSignature("entry name (not UTF-8)"))?;
            let is_dir = name.ends_with('/');
            entries.push(ZipEntry { name, size, crc, is_dir, offset });
            pos = name_start + name_len + extra_len + comment_len;
        }
        Ok(ZipArchive { data, entries })
    }

    /// All entries in central-directory order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Names of all entries.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up entry metadata by name.
    pub fn entry(&self, name: &str) -> Option<&ZipEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Extracts and checksum-verifies the named entry's payload.
    pub fn read(&self, name: &str) -> Result<Vec<u8>, ZipError> {
        let entry = self.entry(name).ok_or_else(|| ZipError::NotFound(name.to_string()))?;
        let pos = entry.offset as usize;
        if read_u32(self.data, pos)? != LOCAL_HEADER_SIG {
            return Err(ZipError::BadSignature("local file header"));
        }
        let name_len = read_u16(self.data, pos + 26)? as usize;
        let extra_len = read_u16(self.data, pos + 28)? as usize;
        let data_start = pos + 30 + name_len + extra_len;
        let payload = self
            .data
            .get(data_start..data_start + entry.size as usize)
            .ok_or(ZipError::Truncated)?;
        let actual = crc32(payload);
        if actual != entry.crc {
            return Err(ZipError::ChecksumMismatch {
                name: name.to_string(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(payload.to_vec())
    }
}

/// Scans backwards for the end-of-central-directory record (it is the last
/// structure in the file, possibly followed by a comment of up to 64 KiB).
fn find_eocd(data: &[u8]) -> Result<usize, ZipError> {
    if data.len() < 22 {
        return Err(ZipError::MissingEndOfCentralDirectory);
    }
    let search_floor = data.len().saturating_sub(22 + u16::MAX as usize);
    let mut pos = data.len() - 22;
    loop {
        if read_u32(data, pos)? == EOCD_SIG {
            // Validate the comment length so a signature embedded in a
            // comment is not mistaken for the real record.
            let comment_len = read_u16(data, pos + 20)? as usize;
            if pos + 22 + comment_len == data.len() {
                return Ok(pos);
            }
        }
        if pos == search_floor {
            return Err(ZipError::MissingEndOfCentralDirectory);
        }
        pos -= 1;
    }
}

fn read_u16(data: &[u8], pos: usize) -> Result<u16, ZipError> {
    data.get(pos..pos + 2).map(|b| u16::from_le_bytes([b[0], b[1]])).ok_or(ZipError::Truncated)
}

fn read_u32(data: &[u8], pos: usize) -> Result<u32, ZipError> {
    data.get(pos..pos + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(ZipError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZipWriter;

    fn sample() -> Vec<u8> {
        let mut w = ZipWriter::new();
        w.add_directory("results").unwrap();
        w.add_file("results/result.json", br#"{"throughput": 1234}"#).unwrap();
        w.add_file("results/log.txt", b"line1\nline2\n").unwrap();
        w.add_file("empty.bin", b"").unwrap();
        w.finish()
    }

    #[test]
    fn roundtrip_all_entries() {
        let bytes = sample();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.len(), 4);
        assert_eq!(
            archive.names(),
            vec!["results/", "results/result.json", "results/log.txt", "empty.bin"]
        );
        assert_eq!(archive.read("results/result.json").unwrap(), br#"{"throughput": 1234}"#);
        assert_eq!(archive.read("results/log.txt").unwrap(), b"line1\nline2\n");
        assert_eq!(archive.read("empty.bin").unwrap(), b"");
    }

    #[test]
    fn directory_entries_flagged() {
        let bytes = sample();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert!(archive.entry("results/").unwrap().is_dir);
        assert!(!archive.entry("empty.bin").unwrap().is_dir);
    }

    #[test]
    fn missing_entry_errors() {
        let bytes = sample();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.read("nope"), Err(ZipError::NotFound("nope".into())));
    }

    #[test]
    fn empty_archive_parses() {
        let bytes = ZipWriter::new().finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert!(archive.is_empty());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = sample();
        // Flip a byte inside the JSON payload (locate it first).
        let needle = b"1234";
        let pos = bytes.windows(4).position(|w| w == needle).unwrap();
        bytes[pos] = b'9';
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert!(matches!(
            archive.read("results/result.json"),
            Err(ZipError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_archive_fails() {
        let bytes = sample();
        assert!(ZipArchive::parse(&bytes[..bytes.len() - 5]).is_err());
        assert_eq!(
            ZipArchive::parse(&bytes[..10]).unwrap_err(),
            ZipError::MissingEndOfCentralDirectory
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(ZipArchive::parse(b"definitely not a zip file at all......").is_err());
        assert!(ZipArchive::parse(b"").is_err());
    }
}
