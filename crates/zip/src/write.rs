//! ZIP writer (STORE method).

use chronos_util::encode::crc32;

use crate::{validate_name, ZipError};

const LOCAL_HEADER_SIG: u32 = 0x0403_4B50;
const CENTRAL_HEADER_SIG: u32 = 0x0201_4B50;
const EOCD_SIG: u32 = 0x0605_4B50;
/// "Version needed to extract": 2.0 (stored entries, directories).
const VERSION: u16 = 20;

struct PendingEntry {
    name: String,
    crc: u32,
    size: u32,
    local_header_offset: u32,
    is_dir: bool,
}

/// Builds a ZIP archive in memory.
///
/// Entries are written with the STORE method. Call [`ZipWriter::finish`] to
/// append the central directory and obtain the archive bytes.
pub struct ZipWriter {
    buf: Vec<u8>,
    entries: Vec<PendingEntry>,
    /// DOS date/time stamped on entries; fixed default keeps archives
    /// byte-reproducible, which Chronos relies on for result fingerprints.
    dos_datetime: (u16, u16),
}

impl Default for ZipWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ZipWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        // 2020-03-30 00:00:00 — a fixed, valid DOS timestamp (EDBT 2020).
        let date = ((2020 - 1980) << 9) | (3 << 5) | 30;
        ZipWriter { buf: Vec::new(), entries: Vec::new(), dos_datetime: (0, date) }
    }

    /// Sets the DOS timestamp applied to subsequently added entries.
    pub fn set_modified(&mut self, unix_millis: u64) {
        let ts = chronos_util::clock::format_timestamp(unix_millis);
        // ts = YYYY-MM-DDTHH:MM:SS.mmmZ
        let year: u16 = ts[0..4].parse().unwrap_or(1980);
        let month: u16 = ts[5..7].parse().unwrap_or(1);
        let day: u16 = ts[8..10].parse().unwrap_or(1);
        let hour: u16 = ts[11..13].parse().unwrap_or(0);
        let min: u16 = ts[14..16].parse().unwrap_or(0);
        let sec: u16 = ts[17..19].parse().unwrap_or(0);
        let date = (year.saturating_sub(1980) << 9) | (month << 5) | day;
        let time = (hour << 11) | (min << 5) | (sec / 2);
        self.dos_datetime = (time, date);
    }

    /// Adds a file entry with the given payload.
    pub fn add_file(&mut self, name: &str, data: &[u8]) -> Result<(), ZipError> {
        validate_name(name)?;
        if self.entries.iter().any(|e| e.name == name) {
            return Err(ZipError::DuplicateEntry(name.to_string()));
        }
        let size = u32::try_from(data.len()).map_err(|_| ZipError::TooLarge)?;
        let offset = u32::try_from(self.buf.len()).map_err(|_| ZipError::TooLarge)?;
        let crc = crc32(data);
        self.write_local_header(name, crc, size);
        self.buf.extend_from_slice(data);
        self.entries.push(PendingEntry {
            name: name.to_string(),
            crc,
            size,
            local_header_offset: offset,
            is_dir: false,
        });
        Ok(())
    }

    /// Adds an explicit directory entry (`name` need not end with `/`).
    pub fn add_directory(&mut self, name: &str) -> Result<(), ZipError> {
        let name = name.strip_suffix('/').unwrap_or(name);
        validate_name(name)?;
        let dir_name = format!("{name}/");
        if self.entries.iter().any(|e| e.name == dir_name) {
            return Err(ZipError::DuplicateEntry(dir_name));
        }
        let offset = u32::try_from(self.buf.len()).map_err(|_| ZipError::TooLarge)?;
        self.write_local_header(&dir_name, 0, 0);
        self.entries.push(PendingEntry {
            name: dir_name,
            crc: 0,
            size: 0,
            local_header_offset: offset,
            is_dir: true,
        });
        Ok(())
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn write_local_header(&mut self, name: &str, crc: u32, size: u32) {
        let (time, date) = self.dos_datetime;
        push_u32(&mut self.buf, LOCAL_HEADER_SIG);
        push_u16(&mut self.buf, VERSION); // version needed
        push_u16(&mut self.buf, 0x0800); // flags: UTF-8 names
        push_u16(&mut self.buf, 0); // method: STORE
        push_u16(&mut self.buf, time);
        push_u16(&mut self.buf, date);
        push_u32(&mut self.buf, crc);
        push_u32(&mut self.buf, size); // compressed
        push_u32(&mut self.buf, size); // uncompressed
        push_u16(&mut self.buf, name.len() as u16);
        push_u16(&mut self.buf, 0); // extra length
        self.buf.extend_from_slice(name.as_bytes());
    }

    /// Writes the central directory and returns the complete archive.
    pub fn finish(mut self) -> Vec<u8> {
        let cd_start = self.buf.len() as u32;
        let (time, date) = self.dos_datetime;
        for entry in &self.entries {
            push_u32(&mut self.buf, CENTRAL_HEADER_SIG);
            push_u16(&mut self.buf, VERSION); // version made by
            push_u16(&mut self.buf, VERSION); // version needed
            push_u16(&mut self.buf, 0x0800); // flags: UTF-8 names
            push_u16(&mut self.buf, 0); // method
            push_u16(&mut self.buf, time);
            push_u16(&mut self.buf, date);
            push_u32(&mut self.buf, entry.crc);
            push_u32(&mut self.buf, entry.size);
            push_u32(&mut self.buf, entry.size);
            push_u16(&mut self.buf, entry.name.len() as u16);
            push_u16(&mut self.buf, 0); // extra
            push_u16(&mut self.buf, 0); // comment
            push_u16(&mut self.buf, 0); // disk number
            push_u16(&mut self.buf, 0); // internal attrs
            push_u32(&mut self.buf, if entry.is_dir { 0x10 } else { 0 }); // external attrs
            push_u32(&mut self.buf, entry.local_header_offset);
            self.buf.extend_from_slice(entry.name.as_bytes());
        }
        let cd_size = self.buf.len() as u32 - cd_start;
        push_u32(&mut self.buf, EOCD_SIG);
        push_u16(&mut self.buf, 0); // this disk
        push_u16(&mut self.buf, 0); // cd disk
        push_u16(&mut self.buf, self.entries.len() as u16);
        push_u16(&mut self.buf, self.entries.len() as u16);
        push_u32(&mut self.buf, cd_size);
        push_u32(&mut self.buf, cd_start);
        push_u16(&mut self.buf, 0); // comment length
        self.buf
    }
}

fn push_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_archive_is_just_eocd() {
        let bytes = ZipWriter::new().finish();
        assert_eq!(bytes.len(), 22);
        assert_eq!(&bytes[0..4], &EOCD_SIG.to_le_bytes());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut w = ZipWriter::new();
        w.add_file("a", b"1").unwrap();
        assert_eq!(w.add_file("a", b"2"), Err(ZipError::DuplicateEntry("a".into())));
    }

    #[test]
    fn traversal_names_rejected() {
        let mut w = ZipWriter::new();
        assert!(matches!(w.add_file("../evil", b""), Err(ZipError::BadEntryName(_))));
    }

    #[test]
    fn archives_are_reproducible() {
        let build = || {
            let mut w = ZipWriter::new();
            w.add_file("r.json", b"{}").unwrap();
            w.add_file("log.txt", b"hello").unwrap();
            w.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn set_modified_changes_timestamp() {
        let mut a = ZipWriter::new();
        a.set_modified(1_585_571_696_789); // 2020-03-30T12:34:56Z
        a.add_file("x", b"1").unwrap();
        let mut b = ZipWriter::new();
        b.add_file("x", b"1").unwrap();
        assert_ne!(a.finish(), b.finish());
    }
}
