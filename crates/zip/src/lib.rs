//! Minimal ZIP archive support for Chronos.
//!
//! Every Chronos job result consists of "a JSON and a zip file" (paper,
//! §2.1), and archiving a project produces a zip bundle of all settings and
//! results (requirement *(iv)*). This crate implements the subset of the
//! PKWARE APPNOTE format those features need, from scratch:
//!
//! * [`ZipWriter`] — streams entries using the STORE method (no
//!   compression; result payloads are dominated by already-compact binary
//!   measurements and the wiredTiger-like engine compresses its own pages).
//! * [`ZipArchive`] — parses the central directory of an archive produced by
//!   this crate (or any other STORE-only archive) and extracts entries,
//!   verifying CRC-32 checksums.
//!
//! ```
//! use chronos_zip::{ZipArchive, ZipWriter};
//! let mut w = ZipWriter::new();
//! w.add_file("results/result.json", b"{\"ok\":true}").unwrap();
//! let bytes = w.finish();
//! let archive = ZipArchive::parse(&bytes).unwrap();
//! assert_eq!(archive.read("results/result.json").unwrap(), b"{\"ok\":true}");
//! ```

mod read;
mod write;

pub use read::{ZipArchive, ZipEntry};
pub use write::ZipWriter;

use std::fmt;

/// Errors raised by the ZIP substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipError {
    /// The end-of-central-directory record could not be located.
    MissingEndOfCentralDirectory,
    /// A structure was truncated or an offset points outside the buffer.
    Truncated,
    /// A magic number did not match the expected signature.
    BadSignature(&'static str),
    /// The entry uses a compression method this crate does not implement.
    UnsupportedMethod(u16),
    /// The entry's CRC-32 did not match its payload.
    ChecksumMismatch { name: String, expected: u32, actual: u32 },
    /// No entry with the requested name exists.
    NotFound(String),
    /// An entry name is invalid (empty, absolute, or contains `..`).
    BadEntryName(String),
    /// A duplicate entry name was added to a writer.
    DuplicateEntry(String),
    /// An entry or the archive exceeds the 32-bit format limits (no ZIP64).
    TooLarge,
}

impl fmt::Display for ZipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipError::MissingEndOfCentralDirectory => {
                write!(f, "end of central directory record not found")
            }
            ZipError::Truncated => write!(f, "archive is truncated"),
            ZipError::BadSignature(what) => write!(f, "bad signature for {what}"),
            ZipError::UnsupportedMethod(m) => {
                write!(f, "unsupported compression method {m}")
            }
            ZipError::ChecksumMismatch { name, expected, actual } => {
                write!(f, "checksum mismatch for {name}: expected {expected:08x}, got {actual:08x}")
            }
            ZipError::NotFound(name) => write!(f, "entry not found: {name}"),
            ZipError::BadEntryName(name) => write!(f, "invalid entry name: {name}"),
            ZipError::DuplicateEntry(name) => write!(f, "duplicate entry: {name}"),
            ZipError::TooLarge => write!(f, "archive exceeds 32-bit ZIP limits"),
        }
    }
}

impl std::error::Error for ZipError {}

/// Validates an entry name: relative, non-empty, forward slashes, no `..`
/// traversal (results come from remote agents, so names are untrusted).
pub(crate) fn validate_name(name: &str) -> Result<(), ZipError> {
    if name.is_empty()
        || name.len() > u16::MAX as usize
        || name.starts_with('/')
        || name.contains('\\')
        || name.split('/').any(|part| part == ".." || part == "." || part.is_empty())
    {
        return Err(ZipError::BadEntryName(name.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(validate_name("a.json").is_ok());
        assert!(validate_name("dir/sub/file.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("/abs").is_err());
        assert!(validate_name("a//b").is_err());
        assert!(validate_name("a/../b").is_err());
        assert!(validate_name("./a").is_err());
        assert!(validate_name("win\\path").is_err());
    }
}
