//! Property tests: any set of valid entries must round-trip byte-exactly
//! through write → parse → read, and the parser must never panic on
//! arbitrary bytes.

use chronos_zip::{ZipArchive, ZipWriter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrip_arbitrary_entries(
        entries in prop::collection::btree_map(
            "[a-zA-Z0-9_-]{1,20}(/[a-zA-Z0-9_-]{1,10}){0,3}",
            prop::collection::vec(any::<u8>(), 0..2048),
            0..16,
        )
    ) {
        let mut w = ZipWriter::new();
        for (name, data) in &entries {
            w.add_file(name, data).unwrap();
        }
        let bytes = w.finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        prop_assert_eq!(archive.len(), entries.len());
        for (name, data) in &entries {
            prop_assert_eq!(&archive.read(name).unwrap(), data);
        }
    }

    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = ZipArchive::parse(&bytes);
    }

    #[test]
    fn parser_never_panics_on_mutated_archives(
        data in prop::collection::vec(any::<u8>(), 1..512),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut w = ZipWriter::new();
        w.add_file("payload.bin", &data).unwrap();
        let mut bytes = w.finish();
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] = val;
        }
        if let Ok(archive) = ZipArchive::parse(&bytes) {
            for entry in archive.entries() {
                let _ = archive.read(&entry.name);
            }
        }
    }
}
