//! Property tests for the columnar result store: the encode→decode→kernel
//! path must agree with the naive row-at-a-time JSON path **bit for bit**
//! on sums/counts/min/max (and within 1 ULP on means, though the shared
//! left-to-right accumulation makes them identical too), and every chunk
//! encoding must round-trip across the LEB128/delta boundary values.

use chronos_analytics::encoding::{
    decode_f64s, decode_i64s, decode_strings, decode_u32s, encode_f64s, encode_i64s,
    encode_strings, encode_u32s,
};
use chronos_analytics::{percentile_sorted, sum_count, Cell, ResultTable};
use chronos_json::{obj, Value};
use proptest::prelude::*;

/// One synthetic metric cell as it appears in an uploaded result document:
/// present as int/float/string/bool/null, or absent entirely.
fn arb_metric() -> impl Strategy<Value = Option<Value>> {
    prop_oneof![
        Just(None),
        Just(Some(Value::Null)),
        any::<i64>().prop_map(|v| Some(Value::from(v))),
        // Finite floats only: JSON cannot carry NaN/Inf, so uploads never do.
        any::<i64>().prop_map(|bits| {
            let f = f64::from_bits(bits as u64);
            Some(Value::from(if f.is_finite() { f } else { bits as f64 }))
        }),
        "[a-z]{0,6}".prop_map(|s| Some(Value::from(s))),
        any::<bool>().prop_map(|b| Some(Value::from(b))),
    ]
}

/// Builds the documents, columnarizes them through a full encode→decode
/// cycle, and returns (decoded table, gather order).
fn columnarize(docs: &[Value]) -> (ResultTable, Vec<usize>) {
    let mut table = ResultTable::new();
    for (i, doc) in docs.iter().enumerate() {
        let params = obj! {"case" => (i % 3) as i64};
        table.append(i as u128 + 1, &params, doc, &["/m"]);
    }
    let decoded = ResultTable::decode(&table.encode()).expect("self-encoded table decodes");
    let order = decoded.gather((1..=docs.len() as u128).collect::<Vec<_>>());
    (decoded, order)
}

proptest! {
    #[test]
    fn sums_counts_match_row_path_bit_for_bit(cells in prop::collection::vec(arb_metric(), 0..60)) {
        let docs: Vec<Value> = cells
            .iter()
            .map(|cell| {
                let mut doc = obj! {"other" => 1};
                if let Some(v) = cell.clone() {
                    doc.set("m", v);
                }
                doc
            })
            .collect();

        // Row path: decode-everything scan, left-to-right accumulation.
        let mut sum = 0.0f64;
        let mut count = 0u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for doc in &docs {
            if let Some(v) = doc.pointer("/m").and_then(Value::as_f64) {
                sum += v;
                count += 1;
                min = min.min(v);
                max = max.max(v);
            }
        }

        // Columnar path: decoded chunks through the vectorized kernel.
        let (table, order) = columnarize(&docs);
        let agg = match table.data_column("/m") {
            Some(column) => sum_count(&column.materialize(), &order),
            None => sum_count(&[], &[]),
        };
        prop_assert_eq!(agg.sum.to_bits(), sum.to_bits(), "sum {} vs {}", agg.sum, sum);
        prop_assert_eq!(agg.count, count);
        prop_assert_eq!(agg.min.to_bits(), min.to_bits());
        prop_assert_eq!(agg.max.to_bits(), max.to_bits());

        // Means must agree within 1 ULP (they are in fact identical: both
        // sides divide the same sum by the same count).
        let row_mean = if count == 0 { None } else { Some(sum / count as f64) };
        match (agg.mean(), row_mean) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                let ulps = (a.to_bits() as i64).abs_diff(b.to_bits() as i64);
                prop_assert!(ulps <= 1, "mean {a} vs {b}: {ulps} ulps apart");
            }
            (a, b) => prop_assert!(false, "mean presence mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn percentiles_match_row_path(cells in prop::collection::vec(arb_metric(), 0..60)) {
        let docs: Vec<Value> = cells
            .iter()
            .map(|cell| {
                let mut doc = obj! {};
                if let Some(v) = cell.clone() {
                    doc.set("m", v);
                }
                doc
            })
            .collect();

        let mut row_values: Vec<f64> = docs
            .iter()
            .filter_map(|doc| doc.pointer("/m").and_then(Value::as_f64))
            .collect();
        row_values.sort_by(f64::total_cmp);

        let (table, order) = columnarize(&docs);
        let mut col_values: Vec<f64> = match table.data_column("/m") {
            Some(column) => {
                let cells = column.materialize();
                order.iter().filter_map(|&r| cells[r].as_f64()).collect()
            }
            None => Vec::new(),
        };
        col_values.sort_by(f64::total_cmp);

        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let a = percentile_sorted(&row_values, q);
            let b = percentile_sorted(&col_values, q);
            prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits), "q={}", q);
        }
    }

    #[test]
    fn i64_delta_leb128_roundtrips(extra in prop::collection::vec(any::<i64>(), 0..200)) {
        // Boundary values up front: delta wrapping must survive the full
        // i64 range, including MIN→MAX swings.
        let mut values = vec![0i64, 1, -1, i64::MIN, i64::MAX, i64::MIN + 1, i64::MAX - 1];
        values.extend(extra);
        let mut buf = Vec::new();
        encode_i64s(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(decode_i64s(&buf, &mut pos).unwrap(), values);
        prop_assert_eq!(pos, buf.len(), "decoder must consume the chunk exactly");
    }

    #[test]
    fn f64_chunks_are_bit_exact(bits in prop::collection::vec(any::<u64>(), 0..200)) {
        // Every bit pattern — including NaNs, infinities, -0.0 and
        // subnormals — must survive the raw little-endian encoding.
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = Vec::new();
        encode_f64s(&values, &mut buf);
        let mut pos = 0;
        let back = decode_f64s(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dictionary_chunks_roundtrip(
        dict in prop::collection::vec("[a-zA-Z0-9 _.:/-]{0,10}", 0..40),
        codes in prop::collection::vec(any::<u64>().prop_map(|x| x as u32), 0..200),
    ) {
        let mut buf = Vec::new();
        encode_strings(&dict, &mut buf);
        encode_u32s(&codes, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(decode_strings(&buf, &mut pos).unwrap(), dict);
        prop_assert_eq!(decode_u32s(&buf, &mut pos).unwrap(), codes);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn table_roundtrip_preserves_every_cell(cells in prop::collection::vec(arb_metric(), 1..40)) {
        let docs: Vec<Value> = cells
            .iter()
            .map(|cell| {
                let mut doc = obj! {};
                if let Some(v) = cell.clone() {
                    doc.set("m", v);
                }
                doc
            })
            .collect();
        let (table, order) = columnarize(&docs);
        prop_assert_eq!(order.len(), docs.len());
        let column = table.data_column("/m");
        for (i, doc) in docs.iter().enumerate() {
            let got = column.map_or(Cell::Missing, |c| c.materialize()[order[i]]);
            match doc.pointer("/m") {
                None => prop_assert_eq!(got, Cell::Missing),
                Some(want) => {
                    // Scalar leaves round-trip exactly; the table stores
                    // them as typed cells, not re-serialized JSON.
                    prop_assert_eq!(got.to_value(), Some(want.clone()), "row {}", i);
                }
            }
        }
    }
}
