//! Typed column chunks.
//!
//! Two column shapes cover the result-analytics workload:
//!
//! * [`ParamColumn`] — a dictionary-encoded string column for parameter
//!   labels (and other low-cardinality strings). Each row is a `u32` code
//!   into the dictionary; [`ParamColumn::MISSING`] marks absent/null.
//! * [`DataColumn`] — a heterogeneous measurement column for one JSON
//!   pointer path across all result documents. A dense per-row tag says
//!   which typed chunk holds the cell, and the typed chunks store only
//!   their own cells (sparse), so a column that is `f64` in every row
//!   costs exactly `8 bytes + 1 tag` per row while still tolerating the
//!   odd row where the field is an int, a string, or missing.

use std::collections::HashMap;

use chronos_json::Value;

use crate::encoding::{
    decode_bools, decode_f64s, decode_i64s, decode_strings, decode_u32s, encode_bools, encode_f64s,
    encode_i64s, encode_strings, encode_u32s, CodecError,
};

/// Per-row cell tag of a [`DataColumn`].
const TAG_MISSING: u8 = 0;
const TAG_NULL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_JSON: u8 = 6;

/// One materialized cell of a [`DataColumn`]: a cheap, copyable view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell<'a> {
    /// The path does not exist in this row's document.
    Missing,
    /// The path exists and holds JSON `null` (distinct from missing: the
    /// summary endpoints serve present-null verbatim).
    Null,
    /// An exact integer.
    Int(i64),
    /// A double.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string (dictionary reference).
    Str(&'a str),
    /// A non-scalar subtree captured verbatim as serialized JSON (only at
    /// explicitly requested paths, e.g. the standard metric pointers).
    Json(&'a str),
}

impl Cell<'_> {
    /// Numeric view with [`Value::as_f64`] semantics: numbers only.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Cell::Int(i) => Some(i as f64),
            Cell::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Reconstructs the original JSON value; `None` for [`Cell::Missing`].
    pub fn to_value(&self) -> Option<Value> {
        match *self {
            Cell::Missing => None,
            Cell::Null => Some(Value::Null),
            Cell::Int(i) => Some(Value::from(i)),
            Cell::Float(f) => Some(Value::from(f)),
            Cell::Bool(b) => Some(Value::from(b)),
            Cell::Str(s) => Some(Value::from(s)),
            Cell::Json(s) => Some(chronos_json::parse(s).unwrap_or(Value::Null)),
        }
    }
}

/// A heterogeneous measurement column: dense tags + sparse typed chunks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataColumn {
    tags: Vec<u8>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    bools: Vec<bool>,
    dict: Vec<String>,
    codes: Vec<u32>,
    #[doc(hidden)]
    dict_index: HashMap<String, u32>,
}

impl DataColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows (cells, including missing ones).
    pub fn rows(&self) -> usize {
        self.tags.len()
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.dict_index.get(s) {
            return code;
        }
        let code = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.dict_index.insert(s.to_string(), code);
        code
    }

    /// Appends a missing cell.
    pub fn push_missing(&mut self) {
        self.tags.push(TAG_MISSING);
    }

    /// Appends a scalar JSON value. Arrays/objects are the caller's
    /// responsibility (flattened into child columns or captured via
    /// [`DataColumn::push_json`]).
    pub fn push_scalar(&mut self, value: &Value) {
        match value {
            Value::Null => self.tags.push(TAG_NULL),
            Value::Bool(b) => {
                self.tags.push(TAG_BOOL);
                self.bools.push(*b);
            }
            Value::Number(n) => {
                if n.is_int() {
                    self.tags.push(TAG_INT);
                    self.ints.push(n.as_i64().unwrap_or(0));
                } else {
                    self.tags.push(TAG_FLOAT);
                    self.floats.push(n.as_f64());
                }
            }
            Value::String(s) => {
                self.tags.push(TAG_STR);
                let code = self.intern(s);
                self.codes.push(code);
            }
            // Containers should not reach here; store them verbatim so the
            // column stays row-equivalent either way.
            other => self.push_json(other),
        }
    }

    /// Appends a non-scalar subtree, serialized verbatim.
    pub fn push_json(&mut self, value: &Value) {
        self.tags.push(TAG_JSON);
        let code = self.intern(&value.to_string());
        self.codes.push(code);
    }

    /// Materializes the column as one dense cell per row (a single
    /// sequential pass over the sparse chunks); the result supports the
    /// random access that row re-ordering (gather) needs.
    pub fn materialize(&self) -> Vec<Cell<'_>> {
        let mut ints = self.ints.iter();
        let mut floats = self.floats.iter();
        let mut bools = self.bools.iter();
        let mut codes = self.codes.iter();
        self.tags
            .iter()
            .map(|&tag| match tag {
                TAG_NULL => Cell::Null,
                TAG_INT => Cell::Int(*ints.next().unwrap_or(&0)),
                TAG_FLOAT => Cell::Float(*floats.next().unwrap_or(&0.0)),
                TAG_BOOL => Cell::Bool(*bools.next().unwrap_or(&false)),
                TAG_STR => {
                    let code = *codes.next().unwrap_or(&0) as usize;
                    Cell::Str(self.dict.get(code).map(String::as_str).unwrap_or(""))
                }
                TAG_JSON => {
                    let code = *codes.next().unwrap_or(&0) as usize;
                    Cell::Json(self.dict.get(code).map(String::as_str).unwrap_or(""))
                }
                _ => Cell::Missing,
            })
            .collect()
    }

    /// Encodes the column: tag chunk, then each typed chunk.
    pub fn encode(&self, out: &mut Vec<u8>) {
        encode_u32s(&self.tags.iter().map(|&t| t as u32).collect::<Vec<_>>(), out);
        encode_i64s(&self.ints, out);
        encode_f64s(&self.floats, out);
        encode_bools(&self.bools, out);
        encode_strings(&self.dict, out);
        encode_u32s(&self.codes, out);
    }

    /// Inverse of [`DataColumn::encode`].
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let tags: Vec<u8> = decode_u32s(bytes, pos)?.into_iter().map(|t| t as u8).collect();
        let ints = decode_i64s(bytes, pos)?;
        let floats = decode_f64s(bytes, pos)?;
        let bools = decode_bools(bytes, pos)?;
        let dict = decode_strings(bytes, pos)?;
        let codes = decode_u32s(bytes, pos)?;
        let dict_index = dict.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
        Ok(DataColumn { tags, ints, floats, bools, dict, codes, dict_index })
    }
}

/// A dictionary-encoded string column with a missing marker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamColumn {
    dict: Vec<String>,
    codes: Vec<u32>,
    #[doc(hidden)]
    dict_index: HashMap<String, u32>,
}

impl ParamColumn {
    /// Code marking an absent or null cell.
    pub const MISSING: u32 = u32::MAX;

    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.codes.len()
    }

    /// Appends one cell; `None` marks absent/null.
    pub fn push(&mut self, label: Option<&str>) {
        match label {
            None => self.codes.push(Self::MISSING),
            Some(s) => {
                let code = if let Some(&c) = self.dict_index.get(s) {
                    c
                } else {
                    let c = self.dict.len() as u32;
                    self.dict.push(s.to_string());
                    self.dict_index.insert(s.to_string(), c);
                    c
                };
                self.codes.push(code);
            }
        }
    }

    /// The label at `row`; `None` for missing cells and out-of-range rows.
    pub fn label_at(&self, row: usize) -> Option<&str> {
        let code = *self.codes.get(row)?;
        if code == Self::MISSING {
            return None;
        }
        self.dict.get(code as usize).map(String::as_str)
    }

    /// The dictionary codes (one per row); [`ParamColumn::MISSING`] marks
    /// absent cells. Group-by kernels work on these directly.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The dictionary (distinct labels, first-seen order).
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Encodes the column: dictionary, then codes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        encode_strings(&self.dict, out);
        encode_u32s(&self.codes, out);
    }

    /// Inverse of [`ParamColumn::encode`].
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let dict = decode_strings(bytes, pos)?;
        let codes = decode_u32s(bytes, pos)?;
        let dict_index = dict.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
        Ok(ParamColumn { dict, codes, dict_index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    #[test]
    fn data_column_roundtrips_mixed_cells() {
        let mut col = DataColumn::new();
        col.push_scalar(&Value::from(42));
        col.push_missing();
        col.push_scalar(&Value::from(1.5));
        col.push_scalar(&Value::Null);
        col.push_scalar(&Value::from(true));
        col.push_scalar(&Value::from("wiredtiger"));
        col.push_json(&obj! {"p99" => 420});
        let mut buf = Vec::new();
        col.encode(&mut buf);
        let mut pos = 0;
        let back = DataColumn::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, col);
        let cells = back.materialize();
        assert_eq!(cells[0], Cell::Int(42));
        assert_eq!(cells[1], Cell::Missing);
        assert_eq!(cells[2], Cell::Float(1.5));
        assert_eq!(cells[3], Cell::Null);
        assert_eq!(cells[4], Cell::Bool(true));
        assert_eq!(cells[5], Cell::Str("wiredtiger"));
        assert_eq!(cells[6].to_value().unwrap().to_string(), "{\"p99\":420}");
    }

    #[test]
    fn cell_as_f64_matches_value_as_f64() {
        for (value, cellify) in [
            (Value::from(7), true),
            (Value::from(-2.25), true),
            (Value::from(true), true),
            (Value::from("3.5"), true),
            (Value::Null, true),
        ] {
            assert!(cellify);
            let mut col = DataColumn::new();
            col.push_scalar(&value);
            let cells = col.materialize();
            assert_eq!(cells[0].as_f64(), value.as_f64(), "{value:?}");
        }
    }

    #[test]
    fn param_column_dedups_labels() {
        let mut col = ParamColumn::new();
        col.push(Some("a"));
        col.push(None);
        col.push(Some("b"));
        col.push(Some("a"));
        assert_eq!(col.dict(), &["a".to_string(), "b".to_string()]);
        assert_eq!(col.codes(), &[0, ParamColumn::MISSING, 1, 0]);
        assert_eq!(col.label_at(3), Some("a"));
        assert_eq!(col.label_at(1), None);
        let mut buf = Vec::new();
        col.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(ParamColumn::decode(&buf, &mut pos).unwrap(), col);
    }

    #[test]
    fn int_extremes_survive_the_column() {
        let mut col = DataColumn::new();
        for v in [0i64, 1, -1, i64::MIN, i64::MAX] {
            col.push_scalar(&Value::from(v));
        }
        let mut buf = Vec::new();
        col.encode(&mut buf);
        let back = DataColumn::decode(&buf, &mut 0).unwrap();
        let cells = back.materialize();
        assert_eq!(cells[3], Cell::Int(i64::MIN));
        assert_eq!(cells[4], Cell::Int(i64::MAX));
    }
}
