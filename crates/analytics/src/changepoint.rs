//! Seeded, deterministic change-point detection (E-Divisive mean).
//!
//! The algorithm follows the continuous-benchmarking loop of "Automated
//! System Performance Testing at MongoDB": recursively split the series
//! at the point maximizing the between-segment mean shift statistic
//!
//! ```text
//! q(k) = (k · (n-k)) / n · (mean(x[..k]) − mean(x[k..]))²
//! ```
//!
//! and accept the split only when a permutation test says a shift this
//! large is unlikely under the no-change hypothesis. All randomness comes
//! from a splitmix64 generator seeded from the caller's seed and the
//! segment bounds, so the same series + seed always yields the same
//! change points — a hard requirement for an endpoint that CI compares
//! run-over-run.

/// Detection parameters. The defaults match the regression endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePointConfig {
    /// Permutations per significance test (the p-value resolution is
    /// `1 / (permutations + 1)`).
    pub permutations: u32,
    /// Accept a split when its p-value is `<=` this.
    pub significance: f64,
    /// Minimum rows on each side of a split.
    pub min_segment: usize,
    /// Seed for the permutation shuffles.
    pub seed: u64,
}

impl Default for ChangePointConfig {
    fn default() -> Self {
        ChangePointConfig { permutations: 199, significance: 0.05, min_segment: 5, seed: 42 }
    }
}

/// One detected change point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// Index of the first observation of the new regime.
    pub index: usize,
    /// Mean of the segment before the change.
    pub before_mean: f64,
    /// Mean of the segment after the change.
    pub after_mean: f64,
    /// Permutation-test p-value of the split.
    pub p_value: f64,
}

/// splitmix64 — tiny, fast, and identical on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded Fisher-Yates shuffle.
fn shuffle(values: &mut [f64], state: &mut u64) {
    for i in (1..values.len()).rev() {
        let j = (splitmix64(state) % (i as u64 + 1)) as usize;
        values.swap(i, j);
    }
}

/// The best split of `xs` under the mean-shift statistic, honoring
/// `min_segment`; returns `(split, q, before_mean, after_mean)`.
fn best_split(xs: &[f64], min_segment: usize) -> Option<(usize, f64, f64, f64)> {
    let n = xs.len();
    if n < min_segment * 2 {
        return None;
    }
    // One prefix-sum pass makes every candidate split O(1).
    let total: f64 = xs.iter().sum();
    let mut prefix = 0.0;
    let mut best: Option<(usize, f64, f64, f64)> = None;
    for (k, &x) in xs.iter().enumerate().take(n - min_segment) {
        prefix += x;
        let k = k + 1;
        if k < min_segment {
            continue;
        }
        let n1 = k as f64;
        let n2 = (n - k) as f64;
        let mean1 = prefix / n1;
        let mean2 = (total - prefix) / n2;
        let diff = mean1 - mean2;
        let q = (n1 * n2) / (n1 + n2) * diff * diff;
        if best.map(|(_, bq, _, _)| q > bq).unwrap_or(true) {
            best = Some((k, q, mean1, mean2));
        }
    }
    best
}

/// Recursive segmentation over `xs[lo..hi]`.
fn detect_segment(
    xs: &[f64],
    lo: usize,
    hi: usize,
    cfg: &ChangePointConfig,
    out: &mut Vec<ChangePoint>,
) {
    let segment = &xs[lo..hi];
    let Some((split, observed_q, before_mean, after_mean)) =
        best_split(segment, cfg.min_segment.max(1))
    else {
        return;
    };
    // Permutation test: how often does a shuffled segment produce a mean
    // shift at least this strong? Deterministic per (seed, lo, hi).
    let mut state =
        cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((lo as u64) << 32 | hi as u64);
    let mut shuffled = segment.to_vec();
    let mut at_least_as_strong = 0u32;
    for _ in 0..cfg.permutations {
        shuffle(&mut shuffled, &mut state);
        if let Some((_, q, _, _)) = best_split(&shuffled, cfg.min_segment.max(1)) {
            if q >= observed_q {
                at_least_as_strong += 1;
            }
        }
    }
    let p_value = (at_least_as_strong as f64 + 1.0) / (cfg.permutations as f64 + 1.0);
    if p_value > cfg.significance {
        return;
    }
    out.push(ChangePoint { index: lo + split, before_mean, after_mean, p_value });
    detect_segment(xs, lo, lo + split, cfg, out);
    detect_segment(xs, lo + split, hi, cfg, out);
}

/// Detects change points in `series`, sorted by index. Deterministic for
/// a fixed `(series, cfg)`.
pub fn detect_change_points(series: &[f64], cfg: &ChangePointConfig) -> Vec<ChangePoint> {
    let mut out = Vec::new();
    detect_segment(series, 0, series.len(), cfg, &mut out);
    out.sort_by_key(|cp| cp.index);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic ±`amplitude` noise around `base`.
    fn noisy(base: f64, amplitude: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let unit = splitmix64(&mut state) as f64 / u64::MAX as f64;
                base + (unit - 0.5) * 2.0 * amplitude
            })
            .collect()
    }

    #[test]
    fn flat_noisy_series_has_no_change_points() {
        let cfg = ChangePointConfig::default();
        for seed in [1u64, 7, 99] {
            let series = noisy(1000.0, 50.0, 50, seed);
            assert!(
                detect_change_points(&series, &cfg).is_empty(),
                "false positive on flat series (seed {seed})"
            );
        }
    }

    #[test]
    fn detects_a_2x_step() {
        let cfg = ChangePointConfig::default();
        let mut series = noisy(1000.0, 50.0, 25, 3);
        series.extend(noisy(2000.0, 50.0, 25, 4));
        let found = detect_change_points(&series, &cfg);
        assert_eq!(found.len(), 1, "{found:?}");
        let cp = found[0];
        assert!((24..=26).contains(&cp.index), "index {}", cp.index);
        assert!((cp.before_mean - 1000.0).abs() < 60.0);
        assert!((cp.after_mean - 2000.0).abs() < 60.0);
        assert!(cp.p_value <= cfg.significance);
    }

    #[test]
    fn detects_multiple_steps() {
        let cfg = ChangePointConfig::default();
        let mut series = noisy(100.0, 2.0, 20, 5);
        series.extend(noisy(200.0, 2.0, 20, 6));
        series.extend(noisy(50.0, 2.0, 20, 7));
        let found = detect_change_points(&series, &cfg);
        let indices: Vec<usize> = found.iter().map(|c| c.index).collect();
        assert!(indices.iter().any(|&i| (19..=21).contains(&i)), "{indices:?}");
        assert!(indices.iter().any(|&i| (39..=41).contains(&i)), "{indices:?}");
    }

    #[test]
    fn detection_is_deterministic_per_seed() {
        let mut series = noisy(1000.0, 80.0, 30, 11);
        series.extend(noisy(1500.0, 80.0, 30, 12));
        let cfg = ChangePointConfig::default();
        let a = detect_change_points(&series, &cfg);
        let b = detect_change_points(&series, &cfg);
        assert_eq!(a, b);
        // A different seed may move p-values but stays deterministic too.
        let cfg2 = ChangePointConfig { seed: 1234, ..cfg };
        assert_eq!(detect_change_points(&series, &cfg2), detect_change_points(&series, &cfg2));
    }

    #[test]
    fn short_series_are_left_alone() {
        let cfg = ChangePointConfig::default();
        assert!(detect_change_points(&[], &cfg).is_empty());
        assert!(detect_change_points(&[1.0, 100.0, 1.0], &cfg).is_empty());
        let nine = [1.0, 1.0, 1.0, 1.0, 100.0, 100.0, 100.0, 100.0, 100.0];
        // 9 < 2 * min_segment: no split is admissible.
        assert!(detect_change_points(&nine, &cfg).is_empty());
    }
}
