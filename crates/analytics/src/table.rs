//! The per-evaluation columnar result table.
//!
//! One [`ResultTable`] holds every finished job of one evaluation:
//!
//! * `row_ids` — the job id of each row (insertion = upload order; query
//!   paths re-order rows via [`ResultTable::gather`] so aggregation runs
//!   in the evaluation's canonical `job_ids` order, which keeps float
//!   accumulation bit-identical to the row-at-a-time JSON path).
//! * `params_json` — each row's full parameter document, serialized and
//!   dictionary-encoded (grid evaluations repeat parameter sets heavily).
//! * one [`ParamColumn`] per parameter key, holding the display label the
//!   chart/CSV endpoints use.
//! * one [`DataColumn`] per scalar leaf path of the result documents
//!   (JSON-pointer named, e.g. `/operations/read/latency_micros/p99`).
//!   Non-scalar values are captured verbatim at explicitly requested
//!   paths (`json_paths`, the standard metric pointers).

use std::collections::HashMap;

use chronos_json::Value;
use minidoc::doc::encode_varint;

use crate::column::{DataColumn, ParamColumn};
use crate::encoding::{decode_strings, encode_strings, read_u8, read_varint, CodecError};

/// Current encoded-table format version.
const FORMAT_VERSION: u8 = 1;

/// Renders one parameter value as its stable label — the exact rule the
/// row-oriented chart path has always used (`None`/null → absent, strings
/// verbatim, everything else via canonical JSON serialization).
fn value_label(value: &Value) -> Option<String> {
    match value {
        Value::Null => None,
        Value::String(s) => Some(s.clone()),
        other => Some(other.to_string()),
    }
}

/// Escapes one key as a JSON-pointer token (RFC 6901).
fn escape_token(key: &str) -> String {
    if key.contains('~') || key.contains('/') {
        key.replace('~', "~0").replace('/', "~1")
    } else {
        key.to_string()
    }
}

/// A column-oriented view of one evaluation's uploaded results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultTable {
    row_ids: Vec<u128>,
    row_index: HashMap<u128, usize>,
    params_json: ParamColumn,
    params: Vec<(String, ParamColumn)>,
    data: Vec<(String, DataColumn)>,
}

impl ResultTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of result rows.
    pub fn rows(&self) -> usize {
        self.row_ids.len()
    }

    /// True when a result row for `job_id` exists.
    pub fn contains(&self, job_id: u128) -> bool {
        self.row_index.contains_key(&job_id)
    }

    /// The job id of `row`.
    pub fn row_id(&self, row: usize) -> u128 {
        self.row_ids[row]
    }

    /// The serialized parameter document of `row`.
    pub fn params_json(&self, row: usize) -> Option<&str> {
        self.params_json.label_at(row)
    }

    /// The label column of one parameter key.
    pub fn param_column(&self, name: &str) -> Option<&ParamColumn> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Parameter keys that appeared in any row, insertion order.
    pub fn param_names(&self) -> impl Iterator<Item = &str> {
        self.params.iter().map(|(n, _)| n.as_str())
    }

    /// The measurement column at a JSON pointer path. Falls back to a
    /// canonically re-escaped lookup so `/a~01` style spellings behave
    /// like [`Value::pointer`].
    pub fn data_column(&self, pointer: &str) -> Option<&DataColumn> {
        if let Some(col) = self.data.iter().find(|(n, _)| n == pointer).map(|(_, c)| c) {
            return Some(col);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let canonical: String = pointer[1..]
            .split('/')
            .map(|raw| format!("/{}", escape_token(&raw.replace("~1", "/").replace("~0", "~"))))
            .collect();
        self.data.iter().find(|(n, _)| *n == canonical).map(|(_, c)| c)
    }

    /// Appends one finished job's result. No-op when the job is already
    /// present (idempotent upload retries). Non-scalar values at any of
    /// the `json_paths` pointers are captured verbatim so policy layers
    /// (standard metrics) can serve them byte-identically.
    pub fn append(&mut self, job_id: u128, parameters: &Value, data: &Value, json_paths: &[&str]) {
        if self.contains(job_id) {
            return;
        }
        let row = self.row_ids.len();
        self.row_index.insert(job_id, row);
        self.row_ids.push(job_id);
        self.params_json.push(Some(&parameters.to_string()));

        // Parameter label columns: set present keys, pad the rest.
        if let Some(map) = parameters.as_object() {
            for (key, value) in map.iter() {
                let column = self.param_column_mut(key, row);
                column.push(value_label(value).as_deref());
            }
        }
        for (_, column) in &mut self.params {
            if column.rows() == row {
                column.push(None);
            }
        }

        // Measurement columns: flatten scalar leaves, pad the rest.
        flatten_into(&mut self.data, row, "", data);
        for path in json_paths {
            if let Some(v) = data.pointer(path) {
                if matches!(v, Value::Array(_) | Value::Object(_)) {
                    let column = Self::data_column_mut(&mut self.data, path, row);
                    if column.rows() == row {
                        column.push_json(v);
                    }
                }
            }
        }
        for (_, column) in &mut self.data {
            if column.rows() == row {
                column.push_missing();
            }
        }
        debug_assert!(self.params.iter().all(|(_, c)| c.rows() == row + 1));
        debug_assert!(self.data.iter().all(|(_, c)| c.rows() == row + 1));
    }

    fn param_column_mut(&mut self, name: &str, row: usize) -> &mut ParamColumn {
        if let Some(i) = self.params.iter().position(|(n, _)| n == name) {
            return &mut self.params[i].1;
        }
        let mut column = ParamColumn::new();
        for _ in 0..row {
            column.push(None); // back-fill rows that predate this key
        }
        self.params.push((name.to_string(), column));
        &mut self.params.last_mut().unwrap().1
    }

    fn data_column_mut<'a>(
        data: &'a mut Vec<(String, DataColumn)>,
        path: &str,
        row: usize,
    ) -> &'a mut DataColumn {
        if let Some(i) = data.iter().position(|(n, _)| n == path) {
            return &mut data[i].1;
        }
        let mut column = DataColumn::new();
        for _ in 0..row {
            column.push_missing();
        }
        data.push((path.to_string(), column));
        &mut data.last_mut().unwrap().1
    }

    /// Row indices for `ids`, in the given order, skipping ids with no
    /// row. Aggregations gather through this so results are independent
    /// of upload completion order.
    pub fn gather(&self, ids: impl IntoIterator<Item = u128>) -> Vec<usize> {
        ids.into_iter().filter_map(|id| self.row_index.get(&id).copied()).collect()
    }

    /// Encodes the whole table (header, row ids, then every column).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(FORMAT_VERSION);
        encode_varint(self.row_ids.len() as u64, &mut out);
        for id in &self.row_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        self.params_json.encode(&mut out);
        let param_names: Vec<String> = self.params.iter().map(|(n, _)| n.clone()).collect();
        encode_strings(&param_names, &mut out);
        for (_, column) in &self.params {
            column.encode(&mut out);
        }
        let data_names: Vec<String> = self.data.iter().map(|(n, _)| n.clone()).collect();
        encode_strings(&data_names, &mut out);
        for (_, column) in &self.data {
            column.encode(&mut out);
        }
        out
    }

    /// Inverse of [`ResultTable::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0;
        let version = read_u8(bytes, &mut pos)?;
        if version != FORMAT_VERSION {
            return Err(CodecError(format!("unknown table format version {version}")));
        }
        let rows = read_varint(bytes, &mut pos)? as usize;
        let mut row_ids = Vec::with_capacity(rows.min(bytes.len() / 16 + 1));
        for _ in 0..rows {
            let end = pos
                .checked_add(16)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| CodecError("truncated row ids".into()))?;
            row_ids.push(u128::from_le_bytes(bytes[pos..end].try_into().unwrap()));
            pos = end;
        }
        let params_json = ParamColumn::decode(bytes, &mut pos)?;
        let param_names = decode_strings(bytes, &mut pos)?;
        let mut params = Vec::with_capacity(param_names.len());
        for name in param_names {
            params.push((name, ParamColumn::decode(bytes, &mut pos)?));
        }
        let data_names = decode_strings(bytes, &mut pos)?;
        let mut data = Vec::with_capacity(data_names.len());
        for name in data_names {
            data.push((name, DataColumn::decode(bytes, &mut pos)?));
        }
        let row_index = row_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        Ok(ResultTable { row_ids, row_index, params_json, params, data })
    }
}

/// Recursively flattens `value` into pointer-named leaf columns.
fn flatten_into(data: &mut Vec<(String, DataColumn)>, row: usize, prefix: &str, value: &Value) {
    match value {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                let path = format!("{prefix}/{}", escape_token(key));
                flatten_into(data, row, &path, child);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                let path = format!("{prefix}/{i}");
                flatten_into(data, row, &path, child);
            }
        }
        scalar => {
            if prefix.is_empty() {
                return; // a bare scalar result document has no addressable leaves
            }
            let column = ResultTable::data_column_mut(data, prefix, row);
            if column.rows() == row {
                column.push_scalar(scalar);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Cell;
    use chronos_json::obj;

    fn demo_row(tp: f64, threads: i64, engine: &str) -> (Value, Value) {
        (
            obj! {"engine" => engine, "threads" => threads},
            obj! {
                "throughput_ops_per_sec" => tp,
                "total_ops" => 1000,
                "operations" => obj! {
                    "read" => obj! {"latency_micros" => obj! {"p99" => 420}},
                },
            },
        )
    }

    #[test]
    fn append_flattens_leaves_and_pads_columns() {
        let mut table = ResultTable::new();
        let (p1, d1) = demo_row(100.0, 1, "wiredtiger");
        table.append(1, &p1, &d1, &[]);
        // Second row has an extra field and misses one.
        let p2 = obj! {"engine" => "mmapv1"};
        let d2 = obj! {"throughput_ops_per_sec" => 90.0, "wall_millis" => 2000};
        table.append(2, &p2, &d2, &[]);
        assert_eq!(table.rows(), 2);
        let tp = table.data_column("/throughput_ops_per_sec").unwrap().materialize();
        assert_eq!(tp, vec![Cell::Float(100.0), Cell::Float(90.0)]);
        let p99 = table.data_column("/operations/read/latency_micros/p99").unwrap().materialize();
        assert_eq!(p99, vec![Cell::Int(420), Cell::Missing]);
        let wall = table.data_column("/wall_millis").unwrap().materialize();
        assert_eq!(wall, vec![Cell::Missing, Cell::Int(2000)]);
        let threads = table.param_column("threads").unwrap();
        assert_eq!(threads.label_at(0), Some("1"));
        assert_eq!(threads.label_at(1), None);
    }

    #[test]
    fn append_is_idempotent_per_job() {
        let mut table = ResultTable::new();
        let (p, d) = demo_row(100.0, 1, "wiredtiger");
        table.append(7, &p, &d, &[]);
        table.append(7, &p, &d, &[]);
        assert_eq!(table.rows(), 1);
    }

    #[test]
    fn encode_decode_roundtrips() {
        let mut table = ResultTable::new();
        for i in 0..10u128 {
            let (p, d) = demo_row(100.0 + i as f64, (i % 4) as i64, "wiredtiger");
            table.append(i, &p, &d, &[]);
        }
        let bytes = table.encode();
        let back = ResultTable::decode(&bytes).unwrap();
        assert_eq!(back, table);
        // Dictionary + delta encodings keep the table much smaller than
        // the serialized JSON rows it replaces.
        let json_bytes: usize = (0..10)
            .map(|i| demo_row(100.0 + i as f64, (i % 4) as i64, "wiredtiger"))
            .map(|(p, d)| p.to_string().len() + d.to_string().len())
            .sum();
        assert!(bytes.len() < json_bytes, "{} vs {json_bytes}", bytes.len());
    }

    #[test]
    fn gather_orders_rows_by_requested_ids() {
        let mut table = ResultTable::new();
        for id in [5u128, 3, 9] {
            let (p, d) = demo_row(id as f64, 1, "wiredtiger");
            table.append(id, &p, &d, &[]);
        }
        assert_eq!(table.gather([3u128, 5, 9, 42]), vec![1, 0, 2]);
    }

    #[test]
    fn json_paths_capture_containers_verbatim() {
        let mut table = ResultTable::new();
        let d = obj! {"operations" => obj! {"read" => obj! {"count" => 10}}};
        table.append(1, &obj! {}, &d, &["/operations"]);
        let col = table.data_column("/operations").unwrap().materialize();
        match col[0] {
            Cell::Json(s) => assert_eq!(s, "{\"read\":{\"count\":10}}"),
            ref other => panic!("expected Json cell, got {other:?}"),
        }
    }

    #[test]
    fn pointer_lookup_handles_escapes() {
        let mut table = ResultTable::new();
        let d = obj! {"a/b" => 1, "c~d" => 2};
        table.append(1, &obj! {}, &d, &[]);
        assert!(table.data_column("/a~1b").is_some());
        assert!(table.data_column("/c~0d").is_some());
        assert!(table.data_column("/a/b").is_none());
    }
}
