//! Chunk-level wire encodings for column data.
//!
//! Every chunk is written as `[varint length][payload]`, with LEB128
//! varints shared with minidoc (`minidoc::doc::{encode_varint,
//! decode_varint}`), so the column store speaks the same low-level
//! dialect as the document engine:
//!
//! | chunk          | encoding                                          |
//! |----------------|---------------------------------------------------|
//! | `i64` values   | zigzag + delta + LEB128 (first value, then deltas)|
//! | `f64` values   | raw IEEE-754 little-endian (8 bytes each)         |
//! | `bool` values  | bit-packed, 8 per byte                            |
//! | `u32` codes    | plain LEB128 (dictionary/selection codes)         |
//! | string dict    | varint count, then varint-length-prefixed UTF-8   |
//!
//! Decoders are fail-closed: any truncation or overflow is a
//! [`CodecError`], never a panic, so a corrupt cache entry degrades to a
//! rebuild from the row store.

use minidoc::doc::{decode_varint, encode_varint};

/// A malformed encoded chunk (truncated, overflowing, or bad UTF-8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "column codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn corrupt(what: &str) -> CodecError {
    CodecError(what.to_string())
}

/// Reads one varint, mapping minidoc's error into ours.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    decode_varint(bytes, pos).map_err(|e| CodecError(e.to_string()))
}

/// Reads a varint and checks it fits `usize` and is a sane element count.
fn read_len(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let n = read_varint(bytes, pos)?;
    usize::try_from(n).map_err(|_| corrupt("length overflow"))
}

/// Zigzag maps signed to unsigned so small magnitudes stay small.
fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Delta + zigzag + LEB128. Monotonic or clustered series (timestamps,
/// counters) collapse to one or two bytes per value; the first value is
/// stored verbatim (zigzagged), every following one as the wrapping
/// difference to its predecessor, so `i64::MIN`/`i64::MAX` round-trip.
pub fn encode_i64s(values: &[i64], out: &mut Vec<u8>) {
    encode_varint(values.len() as u64, out);
    let mut prev = 0i64;
    for &v in values {
        encode_varint(zigzag(v.wrapping_sub(prev)), out);
        prev = v;
    }
}

/// Inverse of [`encode_i64s`].
pub fn decode_i64s(bytes: &[u8], pos: &mut usize) -> Result<Vec<i64>, CodecError> {
    let len = read_len(bytes, pos)?;
    let mut out = Vec::with_capacity(len.min(bytes.len()));
    let mut prev = 0i64;
    for _ in 0..len {
        let v = prev.wrapping_add(unzigzag(read_varint(bytes, pos)?));
        out.push(v);
        prev = v;
    }
    Ok(out)
}

/// Raw little-endian doubles: measurements have no exploitable delta
/// structure, and bit-exactness is non-negotiable for the aggregation
/// equivalence guarantees.
pub fn encode_f64s(values: &[f64], out: &mut Vec<u8>) {
    encode_varint(values.len() as u64, out);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Inverse of [`encode_f64s`].
pub fn decode_f64s(bytes: &[u8], pos: &mut usize) -> Result<Vec<f64>, CodecError> {
    let len = read_len(bytes, pos)?;
    let end = len.checked_mul(8).and_then(|n| pos.checked_add(n)).filter(|&e| e <= bytes.len());
    let end = end.ok_or_else(|| corrupt("truncated f64 chunk"))?;
    let out = bytes[*pos..end]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    *pos = end;
    Ok(out)
}

/// Bit-packed booleans, 8 per byte, LSB first.
pub fn encode_bools(values: &[bool], out: &mut Vec<u8>) {
    encode_varint(values.len() as u64, out);
    let mut byte = 0u8;
    for (i, &v) in values.iter().enumerate() {
        if v {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !values.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Inverse of [`encode_bools`].
pub fn decode_bools(bytes: &[u8], pos: &mut usize) -> Result<Vec<bool>, CodecError> {
    let len = read_len(bytes, pos)?;
    let nbytes = len.div_ceil(8);
    let end = pos.checked_add(nbytes).filter(|&e| e <= bytes.len());
    let end = end.ok_or_else(|| corrupt("truncated bool chunk"))?;
    let packed = &bytes[*pos..end];
    *pos = end;
    Ok((0..len).map(|i| packed[i / 8] & (1 << (i % 8)) != 0).collect())
}

/// Plain LEB128 codes (dictionary references are small by construction).
pub fn encode_u32s(values: &[u32], out: &mut Vec<u8>) {
    encode_varint(values.len() as u64, out);
    for &v in values {
        encode_varint(v as u64, out);
    }
}

/// Inverse of [`encode_u32s`].
pub fn decode_u32s(bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, CodecError> {
    let len = read_len(bytes, pos)?;
    let mut out = Vec::with_capacity(len.min(bytes.len()));
    for _ in 0..len {
        let v = read_varint(bytes, pos)?;
        out.push(u32::try_from(v).map_err(|_| corrupt("u32 code overflow"))?);
    }
    Ok(out)
}

/// A dictionary (or any string list): varint count, then varint-length-
/// prefixed UTF-8 entries.
pub fn encode_strings(values: &[String], out: &mut Vec<u8>) {
    encode_varint(values.len() as u64, out);
    for v in values {
        encode_varint(v.len() as u64, out);
        out.extend_from_slice(v.as_bytes());
    }
}

/// Inverse of [`encode_strings`].
pub fn decode_strings(bytes: &[u8], pos: &mut usize) -> Result<Vec<String>, CodecError> {
    let len = read_len(bytes, pos)?;
    let mut out = Vec::with_capacity(len.min(bytes.len()));
    for _ in 0..len {
        let n = read_len(bytes, pos)?;
        let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
        let end = end.ok_or_else(|| corrupt("truncated string chunk"))?;
        let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| corrupt("invalid UTF-8"))?;
        *pos = end;
        out.push(s.to_string());
    }
    Ok(out)
}

/// One raw byte (chunk tags, format version).
pub fn read_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, CodecError> {
    let b = *bytes.get(*pos).ok_or_else(|| corrupt("truncated byte"))?;
    *pos += 1;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_i64(values: &[i64]) {
        let mut buf = Vec::new();
        encode_i64s(values, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_i64s(&buf, &mut pos).unwrap(), values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn i64_boundary_values_roundtrip() {
        roundtrip_i64(&[]);
        roundtrip_i64(&[0]);
        roundtrip_i64(&[1]);
        roundtrip_i64(&[i64::MIN]);
        roundtrip_i64(&[i64::MAX]);
        roundtrip_i64(&[0, 1, -1, i64::MIN, i64::MAX, i64::MIN, 0]);
        roundtrip_i64(&[i64::MAX, i64::MIN]);
    }

    #[test]
    fn delta_encoding_is_compact_for_monotonic_series() {
        let values: Vec<i64> = (0..1000).map(|i| 1_700_000_000_000 + i).collect();
        let mut buf = Vec::new();
        encode_i64s(&values, &mut buf);
        // First value ~6 bytes, every delta exactly 1 byte.
        assert!(buf.len() < 1_020, "{} bytes", buf.len());
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        let values = [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, -1e300, f64::NAN];
        let mut buf = Vec::new();
        encode_f64s(&values, &mut buf);
        let mut pos = 0;
        let back = decode_f64s(&buf, &mut pos).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bool_bitpacking_roundtrips_at_boundaries() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let values: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            encode_bools(&values, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_bools(&buf, &mut pos).unwrap(), values);
        }
    }

    #[test]
    fn strings_and_codes_roundtrip() {
        let dict = vec!["".to_string(), "wiredtiger".to_string(), "日本語".to_string()];
        let codes = vec![0u32, 2, 1, 1, u32::MAX];
        let mut buf = Vec::new();
        encode_strings(&dict, &mut buf);
        encode_u32s(&codes, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_strings(&buf, &mut pos).unwrap(), dict);
        assert_eq!(decode_u32s(&buf, &mut pos).unwrap(), codes);
    }

    #[test]
    fn truncated_chunks_are_errors_not_panics() {
        let mut buf = Vec::new();
        encode_i64s(&[1, 2, 3], &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(decode_i64s(&buf[..cut], &mut pos).is_err());
        }
        let mut buf = Vec::new();
        encode_strings(&["hello".into()], &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(decode_strings(&buf[..cut], &mut pos).is_err());
        }
    }
}
