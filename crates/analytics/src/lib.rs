//! Columnar result analytics for Chronos (paper §result analysis, Fig. 3d).
//!
//! Uploaded job results are row-oriented JSON documents; every chart or
//! summary request used to re-parse and re-aggregate them from scratch.
//! This crate stores an evaluation's results **column-oriented** instead:
//! each scalar leaf of the result documents becomes a typed column chunk
//! (i64 / f64 / string / bool) with dictionary, delta and LEB128 encodings
//! (reusing minidoc's varint machinery), and aggregation runs as
//! vectorized kernels over those chunks — filter, group-by, sum/min/max/
//! mean, percentiles over sorted chunks, and time-series downsampling.
//!
//! On top of the column store sits seeded, deterministic E-Divisive-mean
//! change-point detection over per-experiment metric history (in the
//! spirit of "Automated System Performance Testing at MongoDB"), which
//! powers the automatic regression endpoint of the control plane.

pub mod changepoint;
pub mod column;
pub mod encoding;
pub mod kernels;
pub mod store;
pub mod table;

pub use changepoint::{detect_change_points, ChangePoint, ChangePointConfig};
pub use column::{Cell, DataColumn, ParamColumn};
pub use encoding::CodecError;
pub use kernels::{
    downsample, filter_eq, group_sums, percentile_sorted, sum_count, Bucket, NumAgg,
};
pub use store::{AnalyticsStore, LoadedTable, RegressionFlag};
pub use table::ResultTable;
