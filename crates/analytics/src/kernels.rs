//! Vectorized aggregation kernels.
//!
//! Every kernel is a tight loop over dense chunk data — no `Value`
//! allocation, no per-row hash lookups, no branching beyond the cell tag.
//! Float accumulation is plain left-to-right summation so a kernel run
//! over gathered rows is bit-identical to the row-at-a-time JSON path it
//! replaces (the equivalence the golden-fixture tests pin down).

use crate::column::Cell;

/// Running numeric aggregate of one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumAgg {
    /// Left-to-right sum of the numeric cells.
    pub sum: f64,
    /// Number of numeric cells.
    pub count: u64,
    /// Smallest numeric cell (`f64::INFINITY` when none).
    pub min: f64,
    /// Largest numeric cell (`f64::NEG_INFINITY` when none).
    pub max: f64,
}

impl NumAgg {
    /// The arithmetic mean; `None` when no numeric cells were seen.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Sum/count/min/max over the rows of `cells` selected by `order` (a
/// gather list of row indices), left to right.
pub fn sum_count(cells: &[Cell<'_>], order: &[usize]) -> NumAgg {
    let mut agg = NumAgg { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY };
    for &row in order {
        if let Some(v) = cells.get(row).and_then(Cell::as_f64) {
            agg.sum += v;
            agg.count += 1;
            agg.min = agg.min.min(v);
            agg.max = agg.max.max(v);
        }
    }
    agg
}

/// Grouped sum/count: `groups[i]` assigns row `i` of `order` to an output
/// cell. Rows with `group == u32::MAX` or non-numeric cells are skipped.
/// `n_groups` sizes the output (flat vector indexed by group code).
pub fn group_sums(
    cells: &[Cell<'_>],
    order: &[usize],
    groups: &[u32],
    n_groups: usize,
) -> Vec<(f64, u32)> {
    let mut out = vec![(0.0, 0u32); n_groups];
    for (i, &row) in order.iter().enumerate() {
        let group = groups.get(i).copied().unwrap_or(u32::MAX) as usize;
        if group >= n_groups {
            continue;
        }
        if let Some(v) = cells.get(row).and_then(Cell::as_f64) {
            out[group].0 += v;
            out[group].1 += 1;
        }
    }
    out
}

/// Selection vector: positions in `codes` equal to `target`.
pub fn filter_eq(codes: &[u32], target: u32) -> Vec<u32> {
    let mut out = Vec::new();
    for (i, &c) in codes.iter().enumerate() {
        if c == target {
            out.push(i as u32);
        }
    }
    out
}

/// The value at quantile `q` of an ascending-sorted chunk, using the
/// rank-`ceil(q·n)` convention shared with `chronos-metrics` histograms.
/// `None` for an empty chunk.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// One downsampling bucket: the min/max/mean envelope of a slice of a
/// series — what a chart needs to draw thousands of points as one pixel
/// column without losing spikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// First source index covered by the bucket (inclusive).
    pub start: usize,
    /// Last source index covered (exclusive).
    pub end: usize,
    /// Smallest value in the bucket.
    pub min: f64,
    /// Largest value in the bucket.
    pub max: f64,
    /// Mean of the bucket's values.
    pub mean: f64,
    /// Number of present (numeric) values.
    pub count: u64,
}

/// Downsamples a series into at most `buckets` min/max/mean buckets.
/// `None` entries (missing measurements) count toward bucket boundaries
/// but not toward the envelope. Empty buckets are omitted.
pub fn downsample(series: &[Option<f64>], buckets: usize) -> Vec<Bucket> {
    if series.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let buckets = buckets.min(series.len());
    let mut out = Vec::with_capacity(buckets);
    for b in 0..buckets {
        // Evenly split indices: bucket b covers [b*n/k, (b+1)*n/k).
        let start = b * series.len() / buckets;
        let end = ((b + 1) * series.len() / buckets).max(start + 1);
        let mut agg = NumAgg { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY };
        for v in series[start..end].iter().flatten() {
            agg.sum += v;
            agg.count += 1;
            agg.min = agg.min.min(*v);
            agg.max = agg.max.max(*v);
        }
        if agg.count > 0 {
            out.push(Bucket {
                start,
                end,
                min: agg.min,
                max: agg.max,
                mean: agg.sum / agg.count as f64,
                count: agg.count,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_count_skips_non_numeric_cells() {
        let cells = vec![Cell::Int(1), Cell::Missing, Cell::Float(2.5), Cell::Str("x"), Cell::Null];
        let order: Vec<usize> = (0..cells.len()).collect();
        let agg = sum_count(&cells, &order);
        assert_eq!(agg.sum, 3.5);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 2.5);
        assert_eq!(agg.mean(), Some(1.75));
    }

    #[test]
    fn sum_count_respects_gather_order() {
        // Float addition is not associative; the kernel must follow the
        // gather order exactly.
        let cells = vec![Cell::Float(1e16), Cell::Float(1.0), Cell::Float(-1e16)];
        // 1e16 + 1.0 absorbs the 1.0; cancelling the big terms first keeps it.
        let forward = sum_count(&cells, &[0, 1, 2]).sum;
        let shuffled = sum_count(&cells, &[0, 2, 1]).sum;
        assert_eq!(forward, 0.0);
        assert_eq!(shuffled, 1.0);
    }

    #[test]
    fn group_sums_accumulates_per_group() {
        let cells = vec![Cell::Float(1.0), Cell::Float(2.0), Cell::Float(4.0), Cell::Int(8)];
        let order = vec![0, 1, 2, 3];
        let groups = vec![0, 1, 0, u32::MAX];
        let out = group_sums(&cells, &order, &groups, 2);
        assert_eq!(out, vec![(5.0, 2), (2.0, 1)]);
    }

    #[test]
    fn filter_eq_builds_selection_vector() {
        assert_eq!(filter_eq(&[1, 0, 1, 2, 1], 1), vec![0, 2, 4]);
        assert!(filter_eq(&[1, 2], 9).is_empty());
    }

    #[test]
    fn percentile_uses_ceil_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&sorted, 0.5), Some(2.0));
        assert_eq!(percentile_sorted(&sorted, 0.51), Some(3.0));
        assert_eq!(percentile_sorted(&sorted, 1.0), Some(4.0));
        assert_eq!(percentile_sorted(&[], 0.5), None);
    }

    #[test]
    fn downsample_preserves_spikes() {
        let mut series: Vec<Option<f64>> = (0..100).map(|_| Some(10.0)).collect();
        series[57] = Some(500.0); // a spike a mean-only downsample would flatten
        series[3] = None;
        let buckets = downsample(&series, 10);
        assert_eq!(buckets.len(), 10);
        assert!(buckets.iter().any(|b| b.max == 500.0));
        assert_eq!(buckets[0].count, 9); // one missing value dropped
        assert!(downsample(&[], 10).is_empty());
        // More buckets than points degrades to one bucket per point.
        assert_eq!(downsample(&[Some(1.0), Some(2.0)], 10).len(), 2);
    }
}
