//! The columnar result store: encoded per-evaluation tables plus the
//! per-experiment regression-scan cache.
//!
//! Tables are held **encoded** (the dictionary/delta/LEB128 chunks of
//! [`crate::encoding`]), so the store costs a fraction of the JSON rows
//! it mirrors; readers decode on demand. Every entry carries:
//!
//! * `backfilled` — whether the entry is known to contain *every*
//!   finished result of its evaluation. Entries created lazily by upload
//!   ingestion on a store that predates the cache start out
//!   un-backfilled; the first reader rebuilds them from the row store
//!   (lazy backfill) and installs the complete table.
//! * `generation` — bumped by every ingest, so a backfill computed from a
//!   snapshot is dropped instead of clobbering a concurrent upload.

use std::collections::HashMap;

use chronos_json::Value;
use parking_lot::RwLock;

use crate::table::ResultTable;

#[derive(Default)]
struct TableEntry {
    encoded: Vec<u8>,
    backfilled: bool,
    generation: u64,
}

/// A freshness-tracked load result: the decoded table, whether it is
/// complete, and the generation to pass back to [`AnalyticsStore::install`].
pub struct LoadedTable {
    /// The decoded table (empty when the entry is missing).
    pub table: ResultTable,
    /// True when the entry is known complete (no backfill needed).
    pub backfilled: bool,
    /// Entry generation at load time.
    pub generation: u64,
}

/// The cached outcome of the last regression scan of one experiment —
/// what the experiment status body surfaces as its regression flag.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionFlag {
    /// Metric pointer the scan ran over.
    pub value_path: String,
    /// Number of detected change points.
    pub change_points: u64,
    /// True when any change point lowered the metric.
    pub regressed: bool,
    /// Number of evaluation runs scanned.
    pub runs: u64,
    /// Control-clock time of the scan (unix millis).
    pub scanned_at: u64,
}

/// In-memory columnar store, keyed by evaluation id (tables) and
/// experiment id (regression flags).
#[derive(Default)]
pub struct AnalyticsStore {
    tables: RwLock<HashMap<u128, TableEntry>>,
    flags: RwLock<HashMap<u128, RegressionFlag>>,
}

impl AnalyticsStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a brand-new evaluation as complete-from-birth: every future
    /// result will flow through [`AnalyticsStore::ingest`], so readers
    /// never need a backfill pass.
    pub fn mark_fresh(&self, evaluation: u128) {
        let mut tables = self.tables.write();
        tables.entry(evaluation).or_default().backfilled = true;
    }

    /// Columnarizes one uploaded result into the evaluation's table.
    /// Idempotent per job. A corrupt entry is dropped back to
    /// un-backfilled so the next reader rebuilds it from the row store.
    pub fn ingest(
        &self,
        evaluation: u128,
        job: u128,
        parameters: &Value,
        data: &Value,
        json_paths: &[&str],
    ) {
        let mut tables = self.tables.write();
        let entry = tables.entry(evaluation).or_default();
        let mut table = if entry.encoded.is_empty() {
            ResultTable::new()
        } else {
            match ResultTable::decode(&entry.encoded) {
                Ok(table) => table,
                Err(_) => {
                    entry.encoded.clear();
                    entry.backfilled = false;
                    entry.generation += 1;
                    ResultTable::new()
                }
            }
        };
        if table.contains(job) {
            return;
        }
        table.append(job, parameters, data, json_paths);
        entry.encoded = table.encode();
        entry.generation += 1;
    }

    /// Loads an evaluation's table (an empty, un-backfilled one when the
    /// entry is missing or corrupt).
    pub fn load(&self, evaluation: u128) -> LoadedTable {
        let tables = self.tables.read();
        match tables.get(&evaluation) {
            None => LoadedTable { table: ResultTable::new(), backfilled: false, generation: 0 },
            Some(entry) => {
                let table = if entry.encoded.is_empty() {
                    Ok(ResultTable::new())
                } else {
                    ResultTable::decode(&entry.encoded)
                };
                match table {
                    Ok(table) => LoadedTable {
                        table,
                        backfilled: entry.backfilled,
                        generation: entry.generation,
                    },
                    Err(_) => LoadedTable {
                        table: ResultTable::new(),
                        backfilled: false,
                        generation: entry.generation,
                    },
                }
            }
        }
    }

    /// Installs a backfilled table computed from generation
    /// `loaded_generation`. Refuses (returns `false`) when an ingest
    /// raced the backfill; the next reader simply rebuilds.
    pub fn install(&self, evaluation: u128, table: &ResultTable, loaded_generation: u64) -> bool {
        let mut tables = self.tables.write();
        let entry = tables.entry(evaluation).or_default();
        if entry.generation != loaded_generation {
            return false;
        }
        entry.encoded = table.encode();
        entry.backfilled = true;
        entry.generation += 1;
        true
    }

    /// Encoded size of an evaluation's table in bytes (0 when absent).
    pub fn encoded_size(&self, evaluation: u128) -> usize {
        self.tables.read().get(&evaluation).map(|e| e.encoded.len()).unwrap_or(0)
    }

    /// Records the outcome of a regression scan.
    pub fn set_flag(&self, experiment: u128, flag: RegressionFlag) {
        self.flags.write().insert(experiment, flag);
    }

    /// The cached regression flag of an experiment, if ever scanned.
    pub fn flag(&self, experiment: u128) -> Option<RegressionFlag> {
        self.flags.read().get(&experiment).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    #[test]
    fn ingest_then_load_roundtrips() {
        let store = AnalyticsStore::new();
        store.mark_fresh(1);
        store.ingest(1, 10, &obj! {"threads" => 4}, &obj! {"tp" => 100.0}, &[]);
        store.ingest(1, 11, &obj! {"threads" => 8}, &obj! {"tp" => 180.0}, &[]);
        store.ingest(1, 11, &obj! {"threads" => 8}, &obj! {"tp" => 999.0}, &[]); // dup ignored
        let loaded = store.load(1);
        assert!(loaded.backfilled);
        assert_eq!(loaded.table.rows(), 2);
        assert!(store.encoded_size(1) > 0);
    }

    #[test]
    fn missing_evaluation_needs_backfill() {
        let store = AnalyticsStore::new();
        let loaded = store.load(99);
        assert!(!loaded.backfilled);
        assert_eq!(loaded.table.rows(), 0);
    }

    #[test]
    fn install_refuses_stale_generations() {
        let store = AnalyticsStore::new();
        store.ingest(1, 10, &obj! {}, &obj! {"tp" => 1.0}, &[]);
        let loaded = store.load(1);
        // A concurrent upload bumps the generation…
        store.ingest(1, 11, &obj! {}, &obj! {"tp" => 2.0}, &[]);
        // …so the backfill computed from the stale load must not clobber.
        assert!(!store.install(1, &loaded.table, loaded.generation));
        assert_eq!(store.load(1).table.rows(), 2);
        // A fresh load installs fine.
        let fresh = store.load(1);
        assert!(store.install(1, &fresh.table, fresh.generation));
        assert!(store.load(1).backfilled);
    }

    #[test]
    fn regression_flags_are_cached_per_experiment() {
        let store = AnalyticsStore::new();
        assert!(store.flag(5).is_none());
        let flag = RegressionFlag {
            value_path: "/throughput_ops_per_sec".into(),
            change_points: 1,
            regressed: true,
            runs: 50,
            scanned_at: 1_700_000_000_000,
        };
        store.set_flag(5, flag.clone());
        assert_eq!(store.flag(5), Some(flag));
    }
}
