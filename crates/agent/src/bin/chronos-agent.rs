//! `chronos-agent` — the standalone agent daemon for the bundled minidoc
//! evaluation client.
//!
//! Connects to a running `chronos-control`, logs in, and executes jobs for
//! one deployment until stopped (or until the queue stays idle with
//! `--exit-when-idle`).
//!
//! ```text
//! chronos-agent --control http://127.0.0.1:8080 \
//!               --username agent --password pw \
//!               --deployment 01ARZ3NDEKTSV4RRFFQ69G5FAV
//! ```

use std::time::Duration;

use chronos_agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient, LocalDirSink};
use chronos_util::Id;

struct Options {
    control: String,
    username: String,
    password: String,
    deployment: Option<Id>,
    exit_when_idle: bool,
    sink_dir: Option<std::path::PathBuf>,
    heartbeat_millis: u64,
    deadline_millis: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: chronos-agent [options]\n\
         \n\
         options:\n\
           --control URL        Chronos Control base URL (default http://127.0.0.1:8080)\n\
           --username NAME      login user (default: agent)\n\
           --password PW        login password\n\
           --deployment ID      deployment to execute jobs for (required)\n\
           --sink-dir DIR       write result archives to DIR (NAS sink) instead of\n\
                                uploading them inline\n\
           --heartbeat MS       heartbeat interval (default 1000)\n\
           --deadline MS        per-request deadline budget stamped as\n\
                                X-Chronos-Deadline-Ms (default 10000; 0 disables)\n\
           --exit-when-idle     stop once the queue stays empty for 5 s\n\
           --help               show this help"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        control: "http://127.0.0.1:8080".to_string(),
        username: "agent".to_string(),
        password: String::new(),
        deployment: None,
        exit_when_idle: false,
        sink_dir: None,
        heartbeat_millis: 1_000,
        deadline_millis: 10_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--control" => options.control = value("--control"),
            "--username" => options.username = value("--username"),
            "--password" => options.password = value("--password"),
            "--deployment" => {
                let raw = value("--deployment");
                options.deployment = Some(Id::parse_base32(&raw).unwrap_or_else(|e| {
                    eprintln!("bad deployment id {raw:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--sink-dir" => options.sink_dir = Some(value("--sink-dir").into()),
            "--heartbeat" => {
                options.heartbeat_millis = value("--heartbeat").parse().unwrap_or_else(|_| usage())
            }
            "--deadline" => {
                options.deadline_millis = value("--deadline").parse().unwrap_or_else(|_| usage())
            }
            "--exit-when-idle" => options.exit_when_idle = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    options
}

fn main() {
    let options = parse_options();
    let Some(deployment) = options.deployment else {
        eprintln!("--deployment is required");
        usage();
    };
    let client = match ControlClient::login(&options.control, &options.username, &options.password)
    {
        Ok(client) if options.deadline_millis > 0 => {
            client.with_deadline(Duration::from_millis(options.deadline_millis))
        }
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot log in to {}: {e}", options.control);
            std::process::exit(1);
        }
    };
    eprintln!("connected to {} as {:?}", options.control, options.username);

    let mut config = AgentConfig::new(deployment);
    config.heartbeat_interval = Duration::from_millis(options.heartbeat_millis);
    if let Some(dir) = &options.sink_dir {
        eprintln!("result archives go to {} (NAS sink)", dir.display());
        config.sink = Box::new(LocalDirSink::new(dir.clone()));
    }
    let mut agent = ChronosAgent::new(client, config, DocstoreClient::new());

    if options.exit_when_idle {
        match agent.run_until_idle(Duration::from_secs(5)) {
            Ok(completed) => {
                eprintln!("queue idle; completed {completed} jobs");
            }
            Err(e) => {
                eprintln!("agent error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let mut completed: u64 = 0;
    loop {
        match agent.run_once() {
            Ok(true) => {
                completed += 1;
                eprintln!("job done ({completed} total)");
            }
            Ok(false) => std::thread::sleep(Duration::from_millis(500)),
            Err(e) => {
                eprintln!("agent error: {e}; retrying in 5 s");
                std::thread::sleep(Duration::from_secs(5));
            }
        }
    }
}
