//! The TPC-C-style evaluation client — the paper's future-work item
//! ("develop a Chronos Agent that wraps the OLTP-Bench") realized against
//! the embedded store.
//!
//! Transactions execute as sequences of document operations without
//! multi-document atomicity, faithful to the MongoDB generation the demo
//! targets (pre-4.0 MongoDB had no multi-document transactions). Parameters:
//!
//! | parameter | meaning |
//! |---|---|
//! | `engine` | storage engine (`wiredtiger` / `mmapv1`) |
//! | `threads` | concurrent terminals |
//! | `warehouses` | scale factor |
//! | `transaction_count` | transactions per run |
//! | `durability` | disk-backed with synced journal/WAL |
//!
//! The result document reports per-transaction-type latencies plus
//! `new_orders_per_minute` — the tpmC-style headline metric.

use chronos_json::{obj, Value};
use chronos_metrics::{Recorder, RunSummary};
use chronos_util::pool::scoped_indexed;
use chronos_workload::tpcc::{
    keys, TpccConfig, TpccRunner, TpccTx, CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, ITEMS,
};
use minidoc::{Collection, Database, DbConfig, EngineKind, Filter};

use crate::context::JobContext;
use crate::runtime::EvaluationClient;

/// The tpcc-lite evaluation client.
#[derive(Default)]
pub struct TpccClient {
    state: Option<TpccState>,
}

struct TpccState {
    db: Database,
    runner: TpccRunner,
    threads: usize,
    data_dir: Option<std::path::PathBuf>,
}

impl TpccClient {
    /// Creates an idle client.
    pub fn new() -> Self {
        TpccClient::default()
    }
}

/// Collection handles for the tpcc-lite schema.
struct Tables {
    warehouse: Collection,
    district: Collection,
    customer: Collection,
    item: Collection,
    stock: Collection,
    orders: Collection,
    new_orders: Collection,
    history: Collection,
}

impl Tables {
    fn open(db: &Database) -> Tables {
        Tables {
            warehouse: db.collection("warehouse"),
            district: db.collection("district"),
            customer: db.collection("customer"),
            item: db.collection("item"),
            stock: db.collection("stock"),
            orders: db.collection("orders"),
            new_orders: db.collection("new_orders"),
            history: db.collection("history"),
        }
    }
}

/// Loads the initial population for `warehouses`.
fn load_population(db: &Database, warehouses: u64) -> Result<(), String> {
    let t = Tables::open(db);
    let e = |err: minidoc::DbError| err.to_string();
    for i in 1..=ITEMS {
        t.item
            .insert(
                &keys::item(i),
                &obj! {"name" => format!("item-{i}"), "price_cents" => (i % 9000 + 100) as i64},
            )
            .map_err(e)?;
    }
    for w in 1..=warehouses {
        t.warehouse
            .insert(&keys::warehouse(w), &obj! {"tax_bp" => (w % 20) as i64, "ytd_cents" => 0})
            .map_err(e)?;
        for i in 1..=ITEMS {
            t.stock.insert(&keys::stock(w, i), &obj! {"quantity" => 50, "ytd" => 0}).map_err(e)?;
        }
        for d in 1..=DISTRICTS_PER_WAREHOUSE {
            t.district
                .insert(
                    &keys::district(w, d),
                    &obj! {"tax_bp" => (d % 20) as i64, "ytd_cents" => 0, "next_o_id" => 1},
                )
                .map_err(e)?;
            for c in 1..=CUSTOMERS_PER_DISTRICT {
                t.customer
                    .insert(
                        &keys::customer(w, d, c),
                        &obj! {
                            "name" => format!("customer-{c}"),
                            "balance_cents" => 0,
                            "payments" => 0,
                            "orders" => 0,
                        },
                    )
                    .map_err(e)?;
            }
        }
    }
    Ok(())
}

/// Executes one transaction. Returns an error string on any failed step
/// (counted as a failed transaction by the recorder).
fn execute_tx(db: &Database, runner: &TpccRunner, tx: &TpccTx) -> Result<(), String> {
    let t = Tables::open(db);
    let e = |err: minidoc::DbError| err.to_string();
    match tx {
        TpccTx::NewOrder { warehouse, district, customer, lines } => {
            // Reads: warehouse tax, district (also order-id counter),
            // customer.
            t.warehouse.get(&keys::warehouse(*warehouse)).map_err(e)?.ok_or("missing warehouse")?;
            let d_key = keys::district(*warehouse, *district);
            let mut d = t.district.get(&d_key).map_err(e)?.ok_or("missing district")?;
            let next = d.get("next_o_id").and_then(Value::as_i64).unwrap_or(1);
            d.set("next_o_id", next + 1);
            t.district.update(&d_key, &d).map_err(e)?;
            let c_key = keys::customer(*warehouse, *district, *customer);
            let mut c = t.customer.get(&c_key).map_err(e)?.ok_or("missing customer")?;
            // Order lines: read item + stock, decrement stock.
            let mut total = 0i64;
            let mut line_docs = Vec::with_capacity(lines.len());
            for (item, supply, qty) in lines {
                let item_doc = t.item.get(&keys::item(*item)).map_err(e)?.ok_or("missing item")?;
                let price = item_doc.get("price_cents").and_then(Value::as_i64).unwrap_or(0);
                let s_key = keys::stock(*supply, *item);
                let mut stock = t.stock.get(&s_key).map_err(e)?.ok_or("missing stock")?;
                let mut quantity = stock.get("quantity").and_then(Value::as_i64).unwrap_or(0);
                quantity -= *qty as i64;
                if quantity < 10 {
                    quantity += 91; // TPC-C restock rule
                }
                stock.set("quantity", quantity);
                stock.set(
                    "ytd",
                    stock.get("ytd").and_then(Value::as_i64).unwrap_or(0) + *qty as i64,
                );
                t.stock.update(&s_key, &stock).map_err(e)?;
                total += price * *qty as i64;
                line_docs.push(obj! {
                    "item" => *item,
                    "supply_warehouse" => *supply,
                    "quantity" => *qty as i64,
                    "amount_cents" => price * *qty as i64,
                });
            }
            // Writes: the order document (lines embedded — document model)
            // and the undelivered marker.
            let order_id = runner.allocate_order_id();
            t.orders
                .insert(
                    &keys::order(order_id),
                    &obj! {
                        "warehouse" => *warehouse,
                        "district" => *district,
                        "customer" => *customer,
                        "lines" => Value::Array(line_docs),
                        "total_cents" => total,
                        "carrier" => Value::Null,
                    },
                )
                .map_err(e)?;
            t.new_orders
                .insert(
                    &keys::new_order(*warehouse, *district, order_id),
                    &obj! {"order" => order_id},
                )
                .map_err(e)?;
            c.set("orders", c.get("orders").and_then(Value::as_i64).unwrap_or(0) + 1);
            c.set("last_order", order_id);
            t.customer.update(&c_key, &c).map_err(e)?;
            Ok(())
        }
        TpccTx::Payment { warehouse, district, customer, amount_cents } => {
            let w_key = keys::warehouse(*warehouse);
            let mut w = t.warehouse.get(&w_key).map_err(e)?.ok_or("missing warehouse")?;
            w.set(
                "ytd_cents",
                w.get("ytd_cents").and_then(Value::as_i64).unwrap_or(0) + *amount_cents as i64,
            );
            t.warehouse.update(&w_key, &w).map_err(e)?;
            let d_key = keys::district(*warehouse, *district);
            let mut d = t.district.get(&d_key).map_err(e)?.ok_or("missing district")?;
            d.set(
                "ytd_cents",
                d.get("ytd_cents").and_then(Value::as_i64).unwrap_or(0) + *amount_cents as i64,
            );
            t.district.update(&d_key, &d).map_err(e)?;
            let c_key = keys::customer(*warehouse, *district, *customer);
            let mut c = t.customer.get(&c_key).map_err(e)?.ok_or("missing customer")?;
            c.set(
                "balance_cents",
                c.get("balance_cents").and_then(Value::as_i64).unwrap_or(0) - *amount_cents as i64,
            );
            c.set("payments", c.get("payments").and_then(Value::as_i64).unwrap_or(0) + 1);
            t.customer.update(&c_key, &c).map_err(e)?;
            t.history
                .upsert(
                    &format!("h{}", runner.allocate_order_id()),
                    &obj! {"customer" => c_key.as_str(), "amount_cents" => *amount_cents as i64},
                )
                .map_err(e)?;
            Ok(())
        }
        TpccTx::OrderStatus { warehouse, district, customer } => {
            let c_key = keys::customer(*warehouse, *district, *customer);
            let c = t.customer.get(&c_key).map_err(e)?.ok_or("missing customer")?;
            if let Some(last) = c.get("last_order").and_then(Value::as_u64) {
                t.orders.get(&keys::order(last)).map_err(e)?;
            }
            Ok(())
        }
        TpccTx::Delivery { warehouse, carrier } => {
            // Oldest undelivered order per district: the new_orders keys are
            // prefix-ordered by (warehouse, district, order id).
            for d in 1..=DISTRICTS_PER_WAREHOUSE {
                let prefix = keys::new_order(*warehouse, d, 0);
                let batch = t.new_orders.scan(&prefix, 1).map_err(e)?;
                let Some((marker_key, marker)) = batch.into_iter().next() else { continue };
                // The scan may have run past this district's prefix.
                if !marker_key.starts_with(&format!("w{:04}d{:02}", warehouse, d)) {
                    continue;
                }
                let Some(order_id) = marker.get("order").and_then(Value::as_u64) else {
                    continue;
                };
                let o_key = keys::order(order_id);
                if let Some(mut order) = t.orders.get(&o_key).map_err(e)? {
                    order.set("carrier", *carrier as i64);
                    t.orders.update(&o_key, &order).map_err(e)?;
                }
                t.new_orders.delete(&marker_key).map_err(e)?;
            }
            Ok(())
        }
        TpccTx::StockLevel { warehouse, district, threshold } => {
            // Items in the district's recent orders with stock below the
            // threshold. Recent = last 20 orders of this district.
            let d_key = keys::district(*warehouse, *district);
            t.district.get(&d_key).map_err(e)?.ok_or("missing district")?;
            let recent = t
                .orders
                .find(&Filter::and(vec![
                    Filter::eq("warehouse", *warehouse as i64),
                    Filter::eq("district", *district as i64),
                ]))
                .map_err(e)?;
            let mut low = 0usize;
            for (_, order) in recent.iter().rev().take(20) {
                if let Some(lines) = order.get("lines").and_then(Value::as_array) {
                    for line in lines {
                        let Some(item) = line.get("item").and_then(Value::as_u64) else {
                            continue;
                        };
                        if let Some(stock) =
                            t.stock.get(&keys::stock(*warehouse, item)).map_err(e)?
                        {
                            let quantity =
                                stock.get("quantity").and_then(Value::as_i64).unwrap_or(0);
                            if quantity < *threshold as i64 {
                                low += 1;
                            }
                        }
                    }
                }
            }
            let _ = low;
            Ok(())
        }
    }
}

impl EvaluationClient for TpccClient {
    fn name(&self) -> &str {
        "minidoc-tpcc"
    }

    fn set_up(&mut self, ctx: &JobContext) -> Result<(), String> {
        let engine = match ctx.param_str("engine").as_deref() {
            Some(name) => {
                EngineKind::parse(name).ok_or_else(|| format!("unknown engine {name:?}"))?
            }
            None => EngineKind::WiredTiger,
        };
        let db_config = if ctx.param_bool("durability").unwrap_or(false) {
            let dir = std::env::temp_dir().join(format!(
                "minidoc-tpcc-{}-{}",
                std::process::id(),
                ctx.job_id
            ));
            DbConfig::at_dir(engine, dir)
        } else {
            DbConfig::in_memory(engine)
        };
        let config = TpccConfig {
            warehouses: ctx.param_i64("warehouses").unwrap_or(2).max(1) as u64,
            transaction_count: ctx.param_i64("transaction_count").unwrap_or(1_000).max(1) as u64,
            seed: ctx.param_i64("seed").unwrap_or(7) as u64,
        };
        let threads = ctx.param_i64("threads").unwrap_or(1).max(1) as usize;
        ctx.log(format!(
            "set_up: tpcc-lite engine={engine} warehouses={} transactions={} threads={threads}",
            config.warehouses, config.transaction_count
        ));
        let data_dir = db_config.data_dir.clone();
        let db = Database::open(db_config).map_err(|err| err.to_string())?;
        load_population(&db, config.warehouses)?;
        ctx.log(format!(
            "set_up: loaded {} items, {} stocks, {} customers",
            db.collection("item").count(),
            db.collection("stock").count(),
            db.collection("customer").count(),
        ));
        ctx.set_progress(10);
        let runner = TpccRunner::new(config)?;
        self.state = Some(TpccState { db, runner, threads, data_dir });
        Ok(())
    }

    fn warm_up(&mut self, ctx: &JobContext) -> Result<(), String> {
        let state = self.state.as_ref().ok_or("warm_up before set_up")?;
        // One short transaction per district warms caches and counters.
        for tx in state.runner.stream(0, 1).take(10) {
            execute_tx(&state.db, &state.runner, &tx)?;
        }
        ctx.set_progress(15);
        Ok(())
    }

    fn execute(&mut self, ctx: &JobContext) -> Result<Value, String> {
        let state = self.state.as_ref().ok_or("execute before set_up")?;
        let threads = state.threads;
        let summaries: Vec<RunSummary> = scoped_indexed(threads, |thread| {
            let mut recorder = Recorder::new();
            for tx in state.runner.stream(thread, threads) {
                let kind = tx.kind();
                let _ = recorder.time(kind, || execute_tx(&state.db, &state.runner, &tx));
            }
            recorder.into_summary()
        });
        let merged = RunSummary::merge_all(summaries);
        let new_orders = merged.op("new_order").map(|s| s.latency_micros.count()).unwrap_or(0);
        let minutes = (merged.wall_millis.max(1) as f64) / 60_000.0;
        let mut data = merged.to_json();
        data.set("threads", threads as i64);
        data.set("new_orders_per_minute", new_orders as f64 / minutes);
        data.set("engine_stats", state.db.stats().to_json());
        ctx.log(format!(
            "execute: {} transactions, {:.0} new-orders/min, {} errors",
            merged.total_ops(),
            new_orders as f64 / minutes,
            merged.total_errors(),
        ));
        Ok(data)
    }

    fn tear_down(&mut self, ctx: &JobContext) {
        if let Some(state) = self.state.take() {
            let data_dir = state.data_dir.clone();
            drop(state);
            if let Some(dir) = data_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            ctx.log("tear_down: dropped database");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_util::Id;

    fn ctx_threads(engine: &str, txs: i64, threads: i64) -> JobContext {
        JobContext::new(
            Id::generate(),
            obj! {
                "engine" => engine,
                "threads" => threads,
                "warehouses" => 1,
                "transaction_count" => txs,
            },
        )
    }

    fn ctx(engine: &str, txs: i64) -> JobContext {
        ctx_threads(engine, txs, 2)
    }

    #[test]
    fn full_tpcc_lifecycle_on_both_engines() {
        for engine in ["wiredtiger", "mmapv1"] {
            let mut client = TpccClient::new();
            let ctx = ctx(engine, 300);
            client.set_up(&ctx).unwrap();
            client.warm_up(&ctx).unwrap();
            let data = client.execute(&ctx).unwrap();
            client.tear_down(&ctx);
            assert_eq!(data.pointer("/total_ops").and_then(Value::as_u64), Some(300));
            assert_eq!(
                data.pointer("/total_errors").and_then(Value::as_u64),
                Some(0),
                "engine {engine}: {}",
                data.to_string()
            );
            assert!(data.pointer("/new_orders_per_minute").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(data.pointer("/operations/payment/latency_micros/p99").is_some());
        }
    }

    #[test]
    fn money_is_conserved_across_payments() {
        // Single terminal: transactions are read-modify-write sequences
        // WITHOUT multi-document atomicity (faithful to pre-4.0 MongoDB),
        // so exact conservation only holds without concurrent payments —
        // under concurrency, lost updates are an expected property of the
        // modeled system, not a bug in the harness.
        let mut client = TpccClient::new();
        let ctx = ctx_threads("wiredtiger", 400, 1);
        client.set_up(&ctx).unwrap();
        client.execute(&ctx).unwrap();
        // Sum of warehouse YTD == sum of district YTD == -(sum of customer
        // balances) : every payment hits all three.
        let state = client.state.as_ref().unwrap();
        let sum = |coll: &str, field: &str| -> i64 {
            state
                .db
                .collection(coll)
                .scan("", usize::MAX)
                .unwrap()
                .iter()
                .map(|(_, d)| d.get(field).and_then(Value::as_i64).unwrap_or(0))
                .sum()
        };
        let warehouse_ytd = sum("warehouse", "ytd_cents");
        let district_ytd = sum("district", "ytd_cents");
        let customer_balance = sum("customer", "balance_cents");
        assert!(warehouse_ytd > 0, "some payments must have run");
        assert_eq!(warehouse_ytd, district_ytd);
        assert_eq!(warehouse_ytd, -customer_balance);
    }

    #[test]
    fn delivery_drains_new_orders() {
        let mut client = TpccClient::new();
        let ctx = ctx("wiredtiger", 500);
        client.set_up(&ctx).unwrap();
        client.execute(&ctx).unwrap();
        let state = client.state.as_ref().unwrap();
        let orders = state.db.collection("orders").count();
        let undelivered = state.db.collection("new_orders").count();
        assert!(orders > 0);
        assert!(undelivered <= orders, "markers only exist for real orders");
        // Delivered orders carry a carrier.
        let delivered = state
            .db
            .collection("orders")
            .find(&Filter::exists("carrier"))
            .unwrap()
            .iter()
            .filter(|(_, d)| !d.get("carrier").map(Value::is_null).unwrap_or(true))
            .count() as u64;
        assert_eq!(delivered, orders - undelivered);
    }
}
