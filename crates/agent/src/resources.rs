//! Per-job resource accounting.
//!
//! The agent samples its own procfs counters around the system-under-
//! evaluation run and attaches the deltas to the uploaded result document
//! (under `data.agent.resources`): cpu time split user/system, peak
//! resident set, and block-I/O volume. The cost of the sampling itself is
//! reported as its own metric, so the accounting overhead is visible in
//! the data rather than silently folded into the benchmark numbers.
//!
//! Block-I/O counters come from `/proc/self/io`, which kernels can
//! restrict independently of the rest of procfs (hidepid, some container
//! runtimes). A restricted read is *absence of data*, not zero I/O: the
//! sample records it as `None` and the rendered document omits the io
//! fields and sets `io_unavailable` instead, so downstream analytics
//! never average in fake zeros.
//!
//! Linux-only by nature (procfs); on other platforms capture returns
//! `None` and the result document simply omits the resources block.

use std::time::Instant;

use chronos_json::{obj, Value};

/// Kernel clock ticks per second for /proc/self/stat cpu fields. Linux has
/// reported 100 to userspace for all supported architectures since 2.6.
const USER_HZ: u64 = 100;

/// Cumulative block-layer traffic from `/proc/self/io`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Bytes fetched from the block layer.
    pub read_bytes: u64,
    /// Bytes sent to the block layer.
    pub write_bytes: u64,
}

impl IoCounters {
    /// Total traffic in both directions.
    pub fn total(&self) -> u64 {
        self.read_bytes.saturating_add(self.write_bytes)
    }
}

/// A snapshot of this process's cumulative resource counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceSample {
    /// Cpu time spent in user mode, milliseconds.
    pub cpu_user_millis: u64,
    /// Cpu time spent in kernel mode, milliseconds.
    pub cpu_system_millis: u64,
    /// Peak resident set size, KiB (high-water mark, not a delta).
    pub max_rss_kib: u64,
    /// Block-layer traffic, `None` when `/proc/self/io` is restricted.
    pub io: Option<IoCounters>,
}

impl ResourceSample {
    /// Captures the current counters, or `None` when procfs is missing.
    pub fn capture() -> Option<ResourceSample> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // comm (field 2) may contain spaces/parens; fields resume after the
        // last ')'. utime/stime are fields 14/15 (1-indexed), i.e. index
        // 11/12 of the remainder.
        let rest = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let ticks = |i: usize| fields.get(i).and_then(|f| f.parse::<u64>().ok());
        let utime = ticks(11)?;
        let stime = ticks(12)?;
        let max_rss_kib = read_status_kib("VmHWM:").unwrap_or(0);
        // /proc/self/io can be restricted (hidepid, containers): that is
        // missing data, not zero traffic — keep the cpu/rss sample and
        // record the io counters as absent.
        let io = std::fs::read_to_string("/proc/self/io").ok().map(|io| {
            let field = |name: &str| {
                io.lines()
                    .find(|l| l.starts_with(name))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0)
            };
            IoCounters { read_bytes: field("read_bytes:"), write_bytes: field("write_bytes:") }
        });
        Some(ResourceSample {
            cpu_user_millis: utime * 1_000 / USER_HZ,
            cpu_system_millis: stime * 1_000 / USER_HZ,
            max_rss_kib,
            io,
        })
    }

    /// Total cpu time (user + system), milliseconds.
    pub fn cpu_total_millis(&self) -> u64 {
        self.cpu_user_millis.saturating_add(self.cpu_system_millis)
    }
}

/// The *current* resident set (VmRSS), KiB — unlike the high-water mark
/// this can go down, which is what a live watchdog wants to sample.
pub fn current_rss_kib() -> Option<u64> {
    read_status_kib("VmRSS:")
}

fn read_status_kib(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|line| line.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
}

/// Renders the per-job deltas between two samples as the `resources` JSON
/// block. Io deltas appear only when both snapshots had readable io
/// counters; otherwise the block carries `io_unavailable: true` so the
/// absence is explicit in the data.
fn render_deltas(start: &ResourceSample, end: &ResourceSample, overhead_nanos: u64) -> Value {
    let mut doc = obj! {
        "cpu_user_millis" => end.cpu_user_millis.saturating_sub(start.cpu_user_millis),
        "cpu_system_millis" =>
            end.cpu_system_millis.saturating_sub(start.cpu_system_millis),
        "max_rss_kib" => end.max_rss_kib,
    };
    match (start.io, end.io) {
        (Some(first), Some(last)) => {
            doc.set("io_read_bytes", last.read_bytes.saturating_sub(first.read_bytes));
            doc.set("io_write_bytes", last.write_bytes.saturating_sub(first.write_bytes));
        }
        _ => {
            doc.set("io_unavailable", true);
        }
    }
    doc.set("sampling_overhead_micros", overhead_nanos / 1_000);
    doc
}

/// Brackets a job run: snapshot at start, delta at finish.
#[derive(Debug)]
pub struct ResourceTracker {
    start: Option<ResourceSample>,
    overhead_nanos: u64,
}

impl ResourceTracker {
    /// Takes the opening snapshot.
    pub fn start() -> ResourceTracker {
        let begin = Instant::now();
        let start = ResourceSample::capture();
        ResourceTracker { start, overhead_nanos: begin.elapsed().as_nanos() as u64 }
    }

    /// The opening snapshot, for callers (the budget watchdog) that need
    /// the baseline this tracker will diff against.
    pub fn start_sample(&self) -> Option<ResourceSample> {
        self.start
    }

    /// Takes the closing snapshot and renders the per-job deltas as the
    /// `resources` JSON block, `None` when procfs is unavailable.
    pub fn finish(mut self) -> Option<Value> {
        let begin = Instant::now();
        let end = ResourceSample::capture();
        self.overhead_nanos += begin.elapsed().as_nanos() as u64;
        let (start, end) = (self.start?, end?);
        Some(render_deltas(&start, &end, self.overhead_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn capture_reads_procfs() {
        let sample = ResourceSample::capture().expect("procfs should exist on linux");
        assert!(sample.max_rss_kib > 0, "a running process has a resident set");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn current_rss_is_sane() {
        let rss = current_rss_kib().expect("procfs should exist on linux");
        assert!(rss > 0, "a running process has a resident set");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn tracker_reports_deltas_and_overhead() {
        let tracker = ResourceTracker::start();
        // Burn some user cpu so the delta can be non-zero (not asserted —
        // schedulers are fickle — but the fields must exist and be sane).
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        assert!(acc != 1); // keep the loop alive
        let resources = tracker.finish().expect("procfs should exist on linux");
        for key in
            ["cpu_user_millis", "cpu_system_millis", "max_rss_kib", "sampling_overhead_micros"]
        {
            assert!(resources.get(key).is_some(), "missing resources key {key}");
        }
        // On a normal CI kernel /proc/self/io is readable, so the io deltas
        // are present and the unavailable marker is not.
        if resources.get("io_unavailable").is_none() {
            assert!(resources.get("io_read_bytes").is_some());
            assert!(resources.get("io_write_bytes").is_some());
        }
        assert!(resources.get("max_rss_kib").and_then(Value::as_u64).unwrap() > 0);
        // Sampling is two procfs reads: if this costs more than 50 ms the
        // accounting is no longer a rounding error — fail loudly.
        let overhead = resources.get("sampling_overhead_micros").and_then(Value::as_u64).unwrap();
        assert!(overhead < 50_000, "sampling overhead {overhead} µs is excessive");
    }

    #[test]
    fn restricted_io_is_absent_not_zero() {
        // Regression: a restricted /proc/self/io used to render as
        // io_read_bytes/io_write_bytes = 0 — indistinguishable from a
        // genuinely io-free run. It must render as absent + a marker.
        let start = ResourceSample { cpu_user_millis: 10, io: None, ..Default::default() };
        let end = ResourceSample {
            cpu_user_millis: 250,
            max_rss_kib: 4096,
            io: None,
            ..Default::default()
        };
        let doc = render_deltas(&start, &end, 5_000);
        assert!(doc.get("io_read_bytes").is_none(), "no fake zero read counter");
        assert!(doc.get("io_write_bytes").is_none(), "no fake zero write counter");
        assert_eq!(doc.get("io_unavailable").and_then(Value::as_bool), Some(true));
        assert_eq!(doc.get("cpu_user_millis").and_then(Value::as_u64), Some(240));
    }

    #[test]
    fn io_present_on_one_side_only_is_still_unavailable() {
        // A counter readable at start but restricted at finish (or vice
        // versa) cannot produce a meaningful delta.
        let start = ResourceSample {
            io: Some(IoCounters { read_bytes: 100, write_bytes: 50 }),
            ..Default::default()
        };
        let end = ResourceSample { io: None, ..Default::default() };
        let doc = render_deltas(&start, &end, 0);
        assert!(doc.get("io_read_bytes").is_none());
        assert_eq!(doc.get("io_unavailable").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn available_io_renders_deltas_without_marker() {
        let start = ResourceSample {
            io: Some(IoCounters { read_bytes: 1_000, write_bytes: 2_000 }),
            ..Default::default()
        };
        let end = ResourceSample {
            io: Some(IoCounters { read_bytes: 1_500, write_bytes: 2_200 }),
            ..Default::default()
        };
        let doc = render_deltas(&start, &end, 0);
        assert_eq!(doc.get("io_read_bytes").and_then(Value::as_u64), Some(500));
        assert_eq!(doc.get("io_write_bytes").and_then(Value::as_u64), Some(200));
        assert!(doc.get("io_unavailable").is_none());
    }

    #[test]
    fn finish_without_start_sample_is_none() {
        let tracker = ResourceTracker { start: None, overhead_nanos: 0 };
        assert!(tracker.finish().is_none());
    }
}
