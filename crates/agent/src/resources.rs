//! Per-job resource accounting.
//!
//! The agent samples its own procfs counters around the system-under-
//! evaluation run and attaches the deltas to the uploaded result document
//! (under `data.agent.resources`): cpu time split user/system, peak
//! resident set, and block-I/O volume. The cost of the sampling itself is
//! reported as its own metric, so the accounting overhead is visible in
//! the data rather than silently folded into the benchmark numbers.
//!
//! Linux-only by nature (procfs); on other platforms capture returns
//! `None` and the result document simply omits the resources block.

use std::time::Instant;

use chronos_json::{obj, Value};

/// Kernel clock ticks per second for /proc/self/stat cpu fields. Linux has
/// reported 100 to userspace for all supported architectures since 2.6.
const USER_HZ: u64 = 100;

/// A snapshot of this process's cumulative resource counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceSample {
    /// Cpu time spent in user mode, milliseconds.
    pub cpu_user_millis: u64,
    /// Cpu time spent in kernel mode, milliseconds.
    pub cpu_system_millis: u64,
    /// Peak resident set size, KiB (high-water mark, not a delta).
    pub max_rss_kib: u64,
    /// Bytes fetched from the block layer.
    pub read_bytes: u64,
    /// Bytes sent to the block layer.
    pub write_bytes: u64,
}

impl ResourceSample {
    /// Captures the current counters, or `None` when procfs is missing.
    pub fn capture() -> Option<ResourceSample> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // comm (field 2) may contain spaces/parens; fields resume after the
        // last ')'. utime/stime are fields 14/15 (1-indexed), i.e. index
        // 11/12 of the remainder.
        let rest = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let ticks = |i: usize| fields.get(i).and_then(|f| f.parse::<u64>().ok());
        let utime = ticks(11)?;
        let stime = ticks(12)?;
        let max_rss_kib = std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|status| {
                status
                    .lines()
                    .find(|l| l.starts_with("VmHWM:"))
                    .and_then(|line| line.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
            })
            .unwrap_or(0);
        // /proc/self/io can be restricted (hidepid, containers): treat as 0
        // rather than losing the cpu/rss sample.
        let (read_bytes, write_bytes) = std::fs::read_to_string("/proc/self/io")
            .ok()
            .map(|io| {
                let field = |name: &str| {
                    io.lines()
                        .find(|l| l.starts_with(name))
                        .and_then(|l| l.split_whitespace().nth(1))
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0)
                };
                (field("read_bytes:"), field("write_bytes:"))
            })
            .unwrap_or((0, 0));
        Some(ResourceSample {
            cpu_user_millis: utime * 1_000 / USER_HZ,
            cpu_system_millis: stime * 1_000 / USER_HZ,
            max_rss_kib,
            read_bytes,
            write_bytes,
        })
    }
}

/// Brackets a job run: snapshot at start, delta at finish.
#[derive(Debug)]
pub struct ResourceTracker {
    start: Option<ResourceSample>,
    overhead_nanos: u64,
}

impl ResourceTracker {
    /// Takes the opening snapshot.
    pub fn start() -> ResourceTracker {
        let begin = Instant::now();
        let start = ResourceSample::capture();
        ResourceTracker { start, overhead_nanos: begin.elapsed().as_nanos() as u64 }
    }

    /// Takes the closing snapshot and renders the per-job deltas as the
    /// `resources` JSON block, `None` when procfs is unavailable.
    pub fn finish(mut self) -> Option<Value> {
        let begin = Instant::now();
        let end = ResourceSample::capture();
        self.overhead_nanos += begin.elapsed().as_nanos() as u64;
        let (start, end) = (self.start?, end?);
        Some(obj! {
            "cpu_user_millis" => end.cpu_user_millis.saturating_sub(start.cpu_user_millis),
            "cpu_system_millis" =>
                end.cpu_system_millis.saturating_sub(start.cpu_system_millis),
            "max_rss_kib" => end.max_rss_kib,
            "io_read_bytes" => end.read_bytes.saturating_sub(start.read_bytes),
            "io_write_bytes" => end.write_bytes.saturating_sub(start.write_bytes),
            "sampling_overhead_micros" => self.overhead_nanos / 1_000,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn capture_reads_procfs() {
        let sample = ResourceSample::capture().expect("procfs should exist on linux");
        assert!(sample.max_rss_kib > 0, "a running process has a resident set");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn tracker_reports_deltas_and_overhead() {
        let tracker = ResourceTracker::start();
        // Burn some user cpu so the delta can be non-zero (not asserted —
        // schedulers are fickle — but the fields must exist and be sane).
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        assert!(acc != 1); // keep the loop alive
        let resources = tracker.finish().expect("procfs should exist on linux");
        for key in [
            "cpu_user_millis",
            "cpu_system_millis",
            "max_rss_kib",
            "io_read_bytes",
            "io_write_bytes",
            "sampling_overhead_micros",
        ] {
            assert!(resources.get(key).is_some(), "missing resources key {key}");
        }
        assert!(resources.get("max_rss_kib").and_then(Value::as_u64).unwrap() > 0);
        // Sampling is two procfs reads: if this costs more than 50 ms the
        // accounting is no longer a rounding error — fail loudly.
        let overhead = resources.get("sampling_overhead_micros").and_then(Value::as_u64).unwrap();
        assert!(overhead < 50_000, "sampling overhead {overhead} µs is excessive");
    }

    #[test]
    fn finish_without_start_sample_is_none() {
        let tracker = ResourceTracker { start: None, overhead_nanos: 0 };
        assert!(tracker.finish().is_none());
    }
}
