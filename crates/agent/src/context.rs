//! The execution context handed to evaluation clients.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use chronos_json::Value;
use chronos_util::Id;

/// Files attached to the result zip: `(name, bytes)` pairs.
type Attachments = Vec<(String, Vec<u8>)>;

/// Shared state between the evaluation client (producing progress, logs and
/// attachments) and the agent's heartbeat thread (shipping them to Chronos
/// Control while the benchmark runs).
#[derive(Clone)]
pub struct JobContext {
    /// The job being executed.
    pub job_id: Id,
    /// The job's concrete parameters.
    pub parameters: Value,
    progress: Arc<AtomicU8>,
    pending_logs: Arc<Mutex<String>>,
    attachments: Arc<Mutex<Attachments>>,
    cancelled: Arc<AtomicBool>,
    cancel_reason: Arc<Mutex<String>>,
}

impl JobContext {
    /// Creates a context for `job_id` with `parameters`.
    pub fn new(job_id: Id, parameters: Value) -> Self {
        JobContext {
            job_id,
            parameters,
            progress: Arc::new(AtomicU8::new(0)),
            pending_logs: Arc::new(Mutex::new(String::new())),
            attachments: Arc::new(Mutex::new(Vec::new())),
            cancelled: Arc::new(AtomicBool::new(false)),
            cancel_reason: Arc::new(Mutex::new(String::new())),
        }
    }

    /// Reads a string parameter.
    pub fn param_str(&self, name: &str) -> Option<String> {
        self.parameters.get(name).and_then(Value::as_str).map(str::to_string)
    }

    /// Reads an integer parameter.
    pub fn param_i64(&self, name: &str) -> Option<i64> {
        self.parameters.get(name).and_then(Value::as_i64)
    }

    /// Reads a float parameter.
    pub fn param_f64(&self, name: &str) -> Option<f64> {
        self.parameters.get(name).and_then(Value::as_f64)
    }

    /// Reads a boolean parameter.
    pub fn param_bool(&self, name: &str) -> Option<bool> {
        self.parameters.get(name).and_then(Value::as_bool)
    }

    /// Updates the job progress (0..=100); shipped with the next heartbeat.
    pub fn set_progress(&self, percent: u8) {
        self.progress.store(percent.min(100), Ordering::Relaxed);
    }

    /// Current progress.
    pub fn progress(&self) -> u8 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Appends a log line; shipped with the next heartbeat flush.
    pub fn log(&self, message: impl AsRef<str>) {
        let mut logs = self.pending_logs.lock();
        logs.push_str(message.as_ref());
        if !message.as_ref().ends_with('\n') {
            logs.push('\n');
        }
    }

    /// Takes (and clears) the buffered log output.
    pub fn take_logs(&self) -> String {
        std::mem::take(&mut *self.pending_logs.lock())
    }

    /// Attaches a file to the result zip (e.g. raw measurements).
    pub fn attach(&self, name: &str, bytes: Vec<u8>) {
        self.attachments.lock().push((name.to_string(), bytes));
    }

    /// Takes all attachments.
    pub fn take_attachments(&self) -> Attachments {
        std::mem::take(&mut *self.attachments.lock())
    }

    /// Cancels the run (e.g. the heartbeat thread detected a lost lease).
    /// Long-running evaluation clients should poll [`Self::is_cancelled`]
    /// and bail out; the runtime also skips the upload after cancellation.
    pub fn cancel(&self, reason: impl Into<String>) {
        let mut stored = self.cancel_reason.lock();
        if !self.cancelled.swap(true, Ordering::SeqCst) {
            *stored = reason.into();
        }
    }

    /// Whether this run has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Why the run was cancelled (empty if it wasn't).
    pub fn cancel_reason(&self) -> String {
        self.cancel_reason.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    fn ctx() -> JobContext {
        JobContext::new(
            Id::generate(),
            obj! {"engine" => "mmapv1", "threads" => 4, "ratio" => 0.5, "flag" => true},
        )
    }

    #[test]
    fn typed_parameter_accessors() {
        let c = ctx();
        assert_eq!(c.param_str("engine").as_deref(), Some("mmapv1"));
        assert_eq!(c.param_i64("threads"), Some(4));
        assert_eq!(c.param_f64("ratio"), Some(0.5));
        assert_eq!(c.param_bool("flag"), Some(true));
        assert_eq!(c.param_str("missing"), None);
        assert_eq!(c.param_i64("engine"), None);
    }

    #[test]
    fn progress_is_clamped_and_shared() {
        let c = ctx();
        let clone = c.clone();
        c.set_progress(250);
        assert_eq!(clone.progress(), 100);
        c.set_progress(42);
        assert_eq!(clone.progress(), 42);
    }

    #[test]
    fn logs_buffer_and_drain() {
        let c = ctx();
        c.log("line one");
        c.log("line two\n");
        assert_eq!(c.take_logs(), "line one\nline two\n");
        assert_eq!(c.take_logs(), "", "drained");
    }

    #[test]
    fn cancellation_is_shared_and_first_reason_wins() {
        let c = ctx();
        let clone = c.clone();
        assert!(!c.is_cancelled());
        clone.cancel("lease lost");
        clone.cancel("second reason ignored");
        assert!(c.is_cancelled());
        assert_eq!(c.cancel_reason(), "lease lost");
    }

    #[test]
    fn attachments_collect() {
        let c = ctx();
        c.attach("raw.csv", b"a,b\n1,2\n".to_vec());
        let files = c.take_attachments();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, "raw.csv");
        assert!(c.take_attachments().is_empty());
    }
}
