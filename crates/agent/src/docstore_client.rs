//! The demo evaluation client: benchmarks the `minidoc` document store.
//!
//! This is the reproduction of the paper's "MongoDB Chronos agent": the
//! evaluation client behind the demo that "allows to create short running
//! evaluations for the two MongoDB deployments and to directly analyze the
//! results in the Chronos Web UI" (§3). It understands the parameters of
//! the bundled `minidoc` system definition:
//!
//! | parameter | type | meaning |
//! |---|---|---|
//! | `engine` | checkbox `wiredtiger`/`mmapv1` | storage engine under test |
//! | `threads` | interval | concurrent client threads |
//! | `workload` | checkbox `a`..`f` | YCSB core workload |
//! | `record_count` | value | records loaded before measuring |
//! | `operation_count` | value | operations in the measured phase |
//! | `field_length` | value | bytes per document field |
//! | `compression` | boolean | block compression (wiredTiger only) |
//!
//! Lifecycle mapping (paper §1): *set-up* opens the database and bulk-loads
//! the benchmark data; *warm-up* runs a read pass to fill caches; *execute*
//! drives the operation mix from `threads` client threads, recording
//! latencies per operation type; the result document carries the merged
//! [`chronos_metrics::RunSummary`] plus engine statistics.

use chronos_json::Value;
use chronos_metrics::{Recorder, RunSummary};
use chronos_util::pool::scoped_indexed;
use chronos_workload::{CoreWorkload, Operation, WorkloadRunner, WorkloadSpec};
use minidoc::{Database, DbConfig, EngineKind};

use crate::context::JobContext;
use crate::runtime::EvaluationClient;

const COLLECTION: &str = "usertable";

/// The bundled minidoc evaluation client.
#[derive(Default)]
pub struct DocstoreClient {
    state: Option<RunState>,
}

struct RunState {
    db: Database,
    runner: WorkloadRunner,
    threads: usize,
    /// Temp data directory for durable runs (removed on tear-down).
    data_dir: Option<std::path::PathBuf>,
}

impl DocstoreClient {
    /// Creates an idle client (state is built per job in `set_up`).
    pub fn new() -> Self {
        DocstoreClient::default()
    }

    fn parse_config(ctx: &JobContext) -> Result<(DbConfig, WorkloadSpec, usize), String> {
        let engine = match ctx.param_str("engine").as_deref() {
            Some(name) => {
                EngineKind::parse(name).ok_or_else(|| format!("unknown engine {name:?}"))?
            }
            None => EngineKind::WiredTiger,
        };
        // `durability` parameter: run against a real data directory with
        // synced journals/WAL (the demo's disk-bound configuration) instead
        // of fully in memory.
        let mut db_config = if ctx.param_bool("durability").unwrap_or(false) {
            let dir = std::env::temp_dir().join(format!(
                "minidoc-job-{}-{}",
                std::process::id(),
                ctx.job_id
            ));
            DbConfig::at_dir(engine, dir)
        } else {
            DbConfig::in_memory(engine)
        };
        if let Some(compression) = ctx.param_bool("compression") {
            db_config = db_config.with_compression(compression && engine == EngineKind::WiredTiger);
        }
        let workload = match ctx.param_str("workload").as_deref() {
            Some(w) => CoreWorkload::parse(w).ok_or_else(|| format!("unknown workload {w:?}"))?,
            None => CoreWorkload::A,
        };
        let mut spec = WorkloadSpec::core(workload);
        if let Some(n) = ctx.param_i64("record_count") {
            spec.record_count = n.max(1) as u64;
        }
        if let Some(n) = ctx.param_i64("operation_count") {
            spec.operation_count = n.max(0) as u64;
        }
        if let Some(n) = ctx.param_i64("field_length") {
            spec.field_length = n.max(1) as usize;
        }
        if let Some(n) = ctx.param_i64("field_count") {
            spec.field_count = n.max(1) as usize;
        }
        if let Some(seed) = ctx.param_i64("seed") {
            spec.seed = seed as u64;
        }
        if let Some(c) = ctx.param_f64("compressibility") {
            spec.compressibility = c.clamp(0.0, 1.0);
        }
        let threads = ctx.param_i64("threads").unwrap_or(1).max(1) as usize;
        Ok((db_config, spec, threads))
    }
}

/// Converts workload field lists into a minidoc document.
fn fields_to_doc(fields: &[(String, String)]) -> Value {
    let mut map = chronos_json::Map::with_capacity(fields.len());
    for (name, value) in fields {
        map.insert(name.clone(), Value::from(value.as_str()));
    }
    Value::Object(map)
}

/// Executes one operation against the store, returning an error string on
/// unexpected outcomes (read of a loaded key returning nothing, etc.).
fn apply(db: &Database, op: &Operation) -> Result<(), String> {
    let coll = db.collection(COLLECTION);
    match op {
        Operation::Read { key } => match coll.get(key) {
            Ok(Some(_)) => Ok(()),
            Ok(None) => Err(format!("read miss for {key}")),
            Err(e) => Err(e.to_string()),
        },
        Operation::Update { key, fields } => {
            coll.update(key, &fields_to_doc(fields)).map_err(|e| e.to_string())
        }
        Operation::Insert { key, fields } => {
            coll.insert(key, &fields_to_doc(fields)).map_err(|e| e.to_string())
        }
        Operation::Scan { start_key, count } => {
            // YCSB scans read and discard; stream the raw records off the
            // engine cursor instead of decoding every document.
            let mut cursor = coll.cursor(start_key).map_err(|e| e.to_string())?;
            let mut remaining = *count as usize;
            while remaining > 0 && cursor.next().is_some() {
                remaining -= 1;
            }
            Ok(())
        }
        Operation::ReadModifyWrite { key, fields } => {
            let current = coll.get(key).map_err(|e| e.to_string())?;
            match current {
                Some(mut doc) => {
                    for (name, value) in fields {
                        doc.set(name.as_str(), value.as_str());
                    }
                    coll.update(key, &doc).map_err(|e| e.to_string())
                }
                None => Err(format!("rmw miss for {key}")),
            }
        }
    }
}

impl EvaluationClient for DocstoreClient {
    fn name(&self) -> &str {
        "minidoc-ycsb"
    }

    fn set_up(&mut self, ctx: &JobContext) -> Result<(), String> {
        let (db_config, spec, threads) = Self::parse_config(ctx)?;
        let engine = db_config.engine;
        ctx.log(format!(
            "set_up: engine={engine} threads={threads} records={} ops={}",
            spec.record_count, spec.operation_count
        ));
        let data_dir = db_config.data_dir.clone();
        let db = Database::open(db_config).map_err(|e| e.to_string())?;
        let runner = WorkloadRunner::new(spec)?;
        // Load phase: bulk-ingest the benchmark data from all threads.
        let load_errors: usize = scoped_indexed(threads, |t| {
            let mut errors = 0;
            for op in runner.load_partition(t, threads) {
                if apply(&db, &op).is_err() {
                    errors += 1;
                }
            }
            errors
        })
        .into_iter()
        .sum();
        if load_errors > 0 {
            return Err(format!("{load_errors} errors during data load"));
        }
        ctx.log(format!(
            "set_up: loaded {} records into '{COLLECTION}'",
            db.collection(COLLECTION).count()
        ));
        ctx.set_progress(10);
        self.state = Some(RunState { db, runner, threads, data_dir });
        Ok(())
    }

    fn warm_up(&mut self, ctx: &JobContext) -> Result<(), String> {
        let state = self.state.as_ref().ok_or("warm_up before set_up")?;
        // Touch a slice of the keyspace to fill caches/buffers.
        let spec = state.runner.spec();
        let coll = state.db.collection(COLLECTION);
        let sample = (spec.record_count / 10).clamp(1, 1_000);
        for i in 0..sample {
            let key = spec.key_for(i * spec.record_count / sample % spec.record_count);
            let _ = coll.get(&key);
        }
        ctx.log(format!("warm_up: touched {sample} records"));
        ctx.set_progress(15);
        Ok(())
    }

    fn execute(&mut self, ctx: &JobContext) -> Result<Value, String> {
        let state = self.state.as_ref().ok_or("execute before set_up")?;
        let threads = state.threads;
        let total_ops = state.runner.spec().operation_count.max(1);
        let summaries: Vec<RunSummary> = scoped_indexed(threads, |t| {
            let mut recorder = Recorder::new();
            let mut done = 0u64;
            for op in state.runner.stream(t, threads) {
                let kind = op.kind();
                let _ = recorder.time(kind, || apply(&state.db, &op));
                done += 1;
                if done.is_multiple_of(512) && t == 0 {
                    // Progress: 15% after warm-up, 100% at completion.
                    let frac = (done * threads as u64).min(total_ops) as f64 / total_ops as f64;
                    ctx.set_progress(15 + (frac * 84.0) as u8);
                }
            }
            recorder.into_summary()
        });
        let merged = RunSummary::merge_all(summaries);
        ctx.log(format!(
            "execute: {} ops in {} ms ({:.0} ops/s), {} errors",
            merged.total_ops(),
            merged.wall_millis,
            merged.throughput_ops_per_sec(),
            merged.total_errors()
        ));
        let mut data = merged.to_json();
        data.set("engine_stats", state.db.stats().to_json());
        data.set("threads", threads as i64);
        // Attach the raw per-second series as a CSV for offline analysis.
        let series = merged.throughput_series();
        let mut csv = String::from("second,ops\n");
        for (i, rate) in series.rates_per_second().iter().enumerate() {
            csv.push_str(&format!("{i},{rate}\n"));
        }
        ctx.attach("throughput.csv", csv.into_bytes());
        Ok(data)
    }

    fn tear_down(&mut self, ctx: &JobContext) {
        if let Some(state) = self.state.take() {
            let data_dir = state.data_dir.clone();
            drop(state);
            if let Some(dir) = data_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            ctx.log("tear_down: dropped database");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;
    use chronos_util::Id;

    fn ctx(params: Value) -> JobContext {
        JobContext::new(Id::generate(), params)
    }

    fn small_params(engine: &str) -> Value {
        obj! {
            "engine" => engine,
            "threads" => 2,
            "workload" => "a",
            "record_count" => 200,
            "operation_count" => 500,
        }
    }

    #[test]
    fn full_lifecycle_produces_measurements() {
        for engine in ["wiredtiger", "mmapv1"] {
            let mut client = DocstoreClient::new();
            let ctx = ctx(small_params(engine));
            client.set_up(&ctx).unwrap();
            client.warm_up(&ctx).unwrap();
            let data = client.execute(&ctx).unwrap();
            client.tear_down(&ctx);
            assert_eq!(data.pointer("/total_ops").and_then(Value::as_u64), Some(500));
            assert_eq!(data.pointer("/total_errors").and_then(Value::as_u64), Some(0));
            assert!(data.pointer("/throughput_ops_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(data.pointer("/operations/read/latency_micros/p99").is_some());
            assert_eq!(data.pointer("/engine_stats/documents").and_then(Value::as_u64), Some(200));
            let attachments = ctx.take_attachments();
            assert!(attachments.iter().any(|(n, _)| n == "throughput.csv"));
        }
    }

    #[test]
    fn unknown_engine_rejected_in_setup() {
        let mut client = DocstoreClient::new();
        let ctx = ctx(obj! {"engine" => "rocksdb"});
        assert!(client.set_up(&ctx).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn execute_without_setup_fails() {
        let mut client = DocstoreClient::new();
        let ctx = ctx(obj! {});
        assert!(client.execute(&ctx).is_err());
    }

    #[test]
    fn workload_e_scans_run() {
        let mut client = DocstoreClient::new();
        let ctx = ctx(obj! {
            "engine" => "wiredtiger",
            "threads" => 1,
            "workload" => "e",
            "record_count" => 100,
            "operation_count" => 200,
        });
        client.set_up(&ctx).unwrap();
        let data = client.execute(&ctx).unwrap();
        assert!(
            data.pointer("/operations/scan/latency_micros/count").and_then(Value::as_u64).unwrap()
                > 0
        );
    }

    #[test]
    fn defaults_apply_when_parameters_missing() {
        let mut client = DocstoreClient::new();
        let ctx = ctx(obj! {"record_count" => 50, "operation_count" => 100});
        client.set_up(&ctx).unwrap();
        let data = client.execute(&ctx).unwrap();
        assert_eq!(data.pointer("/threads").and_then(Value::as_i64), Some(1));
        client.tear_down(&ctx);
    }
}
