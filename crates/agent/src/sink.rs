//! Result sinks.
//!
//! The paper's agent library uploads results "via HTTP or FTP. The latter
//! allows to use a different server or a NAS for storing the results which
//! also reduces the load and storage requirements on the Chronos Control
//! server" (§2.2). [`ResultSink`] is that choice point: [`HttpSink`] sends
//! the zip inline with the result upload; [`LocalDirSink`] writes it to a
//! mounted directory (the NAS/FTP substitute) and only a reference travels
//! to Chronos Control.

use std::path::PathBuf;

use chronos_json::Value;
use chronos_util::Id;

use crate::control_client::{AgentError, ControlClient};

/// Where the result archive ends up.
pub trait ResultSink: Send + Sync {
    /// Delivers the result; returns the result id Chronos Control assigned.
    /// `attempt` is the fencing token of the run that produced the result.
    fn deliver(
        &self,
        client: &ControlClient,
        job: Id,
        attempt: u32,
        data: &Value,
        archive: &[u8],
    ) -> Result<Id, AgentError>;
}

/// Inline HTTP upload (the default).
#[derive(Debug, Default)]
pub struct HttpSink;

impl ResultSink for HttpSink {
    fn deliver(
        &self,
        client: &ControlClient,
        job: Id,
        attempt: u32,
        data: &Value,
        archive: &[u8],
    ) -> Result<Id, AgentError> {
        client.upload_result(job, attempt, data, archive)
    }
}

/// Writes the archive to a local directory (NAS mount) and uploads only the
/// measurement JSON (with a `archive_ref` pointer) to Chronos Control.
#[derive(Debug)]
pub struct LocalDirSink {
    dir: PathBuf,
}

impl LocalDirSink {
    /// Creates a sink writing into `dir` (created on first use).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LocalDirSink { dir: dir.into() }
    }

    /// The path the archive for `job` is written to.
    pub fn archive_path(&self, job: Id) -> PathBuf {
        self.dir.join(format!("{}.zip", job.to_base32()))
    }
}

impl ResultSink for LocalDirSink {
    fn deliver(
        &self,
        client: &ControlClient,
        job: Id,
        attempt: u32,
        data: &Value,
        archive: &[u8],
    ) -> Result<Id, AgentError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| AgentError::Transport(format!("cannot create sink dir: {e}")))?;
        let path = self.archive_path(job);
        std::fs::write(&path, archive)
            .map_err(|e| AgentError::Transport(format!("cannot write archive: {e}")))?;
        let mut data = data.clone();
        data.set("archive_ref", path.display().to_string());
        client.upload_result(job, attempt, &data, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_sink_paths_are_per_job() {
        let sink = LocalDirSink::new("/tmp/results");
        let a = sink.archive_path(Id::generate());
        let b = sink.archive_path(Id::generate());
        assert_ne!(a, b);
        assert!(a.to_string_lossy().ends_with(".zip"));
    }
}
