//! Per-job resource budget enforcement (runaway-job containment).
//!
//! An experiment can declare budgets — cpu time, peak resident set, block
//! I/O volume, wall clock — that flow through the job document to every
//! claimed job. The agent arms a [`BudgetWatchdog`] around the run: a
//! sampling thread reads the same procfs counters as the accounting layer
//! on a short interval and, the moment a dimension exceeds its budget,
//! cancels the run through [`JobContext::cancel`] and records a typed
//! [`BudgetBreach`]. The runtime reports the breach to Chronos Control as
//! a `budget_exceeded:<dimension>` failure, so the scheduler can count the
//! attempt and — after `max_attempts` — quarantine the job.
//!
//! Enforcement is cooperative on purpose: the evaluation client runs in
//! the agent's process, so the watchdog cannot `kill -9` it without taking
//! the agent down too. Well-behaved clients poll `is_cancelled()` between
//! operations (all bundled clients do); a hostile spin-loop is bounded by
//! the lease — Chronos Control reschedules the job when heartbeats stop
//! crediting progress — and, when the host permits it, by the optional
//! cgroup-v2 backstop below.
//!
//! [`CgroupScope`] is that backstop: when `CHRONOS_CGROUP_ENFORCE` is set
//! and `/sys/fs/cgroup` is a writable cgroup-v2 hierarchy, the agent moves
//! itself into a per-job child cgroup with `memory.max` set to twice the
//! rss budget (headroom so the watchdog fires first and produces the nicer
//! typed failure) and a one-cpu `cpu.max` throttle while a cpu budget is
//! armed. On any error the scope silently falls back to watchdog-only
//! enforcement — the portable path is always sufficient for correctness.

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use chronos_api::v1::JobBudget;

use crate::context::JobContext;
use crate::resources::{current_rss_kib, ResourceSample};

/// A budget dimension measured over its limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The violated dimension: `cpu_millis`, `max_rss_kib`, `io_bytes` or
    /// `wall_millis`.
    pub dimension: &'static str,
    /// The measured value that crossed the line (same unit as the budget).
    pub measured: u64,
    /// The declared budget.
    pub limit: u64,
}

impl BudgetBreach {
    /// The typed failure reason uploaded to Chronos Control. The
    /// `budget_exceeded:` prefix is the machine-readable marker; the rest
    /// names the dimension and both sides of the comparison for humans.
    pub fn reason(&self) -> String {
        format!(
            "budget_exceeded:{}: measured {} > budget {}",
            self.dimension, self.measured, self.limit
        )
    }
}

/// The prefix every budget failure reason starts with.
pub const BUDGET_EXCEEDED_PREFIX: &str = "budget_exceeded:";

struct WatchdogShared {
    stop: Mutex<bool>,
    wake: Condvar,
    breach: Mutex<Option<BudgetBreach>>,
}

/// A sampling thread enforcing a [`JobBudget`] over one job run.
pub struct BudgetWatchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BudgetWatchdog {
    /// Arms the watchdog: takes a baseline procfs sample now and checks
    /// every `interval` whether any budgeted dimension has been exceeded.
    /// On breach the job context is cancelled with the typed reason and
    /// the breach is kept for [`BudgetWatchdog::disarm`].
    pub fn arm(ctx: &JobContext, budget: JobBudget, interval: Duration) -> BudgetWatchdog {
        let shared = Arc::new(WatchdogShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            breach: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let ctx = ctx.clone();
        let baseline = ResourceSample::capture();
        let armed_at = Instant::now();
        let handle = std::thread::Builder::new()
            .name("chronos-agent-budget".into())
            .spawn(move || loop {
                let mut stop = thread_shared.stop.lock().expect("watchdog lock poisoned");
                if !*stop {
                    stop = thread_shared
                        .wake
                        .wait_timeout(stop, interval)
                        .expect("watchdog lock poisoned")
                        .0;
                }
                if *stop {
                    return;
                }
                drop(stop);
                if let Some(breach) = check(&budget, baseline.as_ref(), armed_at) {
                    ctx.log(format!("agent: budget watchdog: {}", breach.reason()));
                    ctx.cancel(breach.reason());
                    *thread_shared.breach.lock().expect("watchdog lock poisoned") = Some(breach);
                    return;
                }
            })
            .expect("failed to spawn budget watchdog thread");
        BudgetWatchdog { shared, handle: Some(handle) }
    }

    /// Stops the sampling thread and returns the breach, if one fired.
    pub fn disarm(mut self) -> Option<BudgetBreach> {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.shared.breach.lock().expect("watchdog lock poisoned").take()
    }

    fn signal_stop(&self) {
        *self.shared.stop.lock().expect("watchdog lock poisoned") = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for BudgetWatchdog {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One watchdog tick: measures every budgeted dimension against its limit.
/// Dimensions whose counters are unavailable (restricted `/proc/self/io`,
/// non-Linux hosts) are skipped, never treated as zero — absence of data
/// must not acquit or convict a job.
fn check(
    budget: &JobBudget,
    baseline: Option<&ResourceSample>,
    armed_at: Instant,
) -> Option<BudgetBreach> {
    if let Some(limit) = budget.wall_millis {
        let measured = armed_at.elapsed().as_millis() as u64;
        if measured > limit {
            return Some(BudgetBreach { dimension: "wall_millis", measured, limit });
        }
    }
    let now = ResourceSample::capture();
    if let (Some(limit), Some(baseline), Some(now)) = (budget.cpu_millis, baseline, now.as_ref()) {
        let measured = now.cpu_total_millis().saturating_sub(baseline.cpu_total_millis());
        if measured > limit {
            return Some(BudgetBreach { dimension: "cpu_millis", measured, limit });
        }
    }
    if let (Some(limit), Some(measured)) = (budget.max_rss_kib, current_rss_kib()) {
        if measured > limit {
            return Some(BudgetBreach { dimension: "max_rss_kib", measured, limit });
        }
    }
    if let (Some(limit), Some(baseline), Some(now)) = (budget.io_bytes, baseline, now.as_ref()) {
        // Io needs readable counters on both sides of the delta.
        if let (Some(first), Some(last)) = (baseline.io, now.io) {
            let measured = last.total().saturating_sub(first.total());
            if measured > limit {
                return Some(BudgetBreach { dimension: "io_bytes", measured, limit });
            }
        }
    }
    None
}

/// Best-effort cgroup-v2 backstop for one job run (see module docs).
/// Entering moves the agent process into a fresh child cgroup with
/// kernel-level limits; dropping the scope moves it back and removes the
/// child. Every step is fallible and every failure means "no backstop",
/// never a failed job.
pub struct CgroupScope {
    scope: PathBuf,
    parent_procs: PathBuf,
}

impl CgroupScope {
    /// Tries to enter a per-job cgroup. Returns `None` (watchdog-only
    /// enforcement) unless `CHRONOS_CGROUP_ENFORCE` is set, the host
    /// mounts a cgroup-v2 hierarchy, and the agent's current cgroup is
    /// writable.
    pub fn try_enter(job_id: chronos_util::Id, budget: &JobBudget) -> Option<CgroupScope> {
        std::env::var_os("CHRONOS_CGROUP_ENFORCE")?;
        let root = PathBuf::from("/sys/fs/cgroup");
        if !root.join("cgroup.controllers").is_file() {
            return None; // not a cgroup-v2 mount
        }
        // /proc/self/cgroup on v2 is a single "0::<path>" line.
        let mine = std::fs::read_to_string("/proc/self/cgroup").ok()?;
        let rel = mine.lines().find_map(|l| l.strip_prefix("0::"))?.trim();
        let current = root.join(rel.trim_start_matches('/'));
        let scope = current.join(format!("chronos-job-{}", job_id.to_base32()));
        std::fs::create_dir(&scope).ok()?;
        let entered = CgroupScope { scope, parent_procs: current.join("cgroup.procs") };
        if let Some(rss_kib) = budget.max_rss_kib {
            // 2× headroom: the watchdog should fire first with the typed
            // failure; the kernel limit only catches allocation storms
            // faster than one sampling interval.
            let bytes = rss_kib.saturating_mul(1024).saturating_mul(2);
            let _ = std::fs::write(entered.scope.join("memory.max"), bytes.to_string());
        }
        if budget.cpu_millis.is_some() {
            // cpu.max is a rate, not a total: throttle to one core so a
            // spin-loop cannot starve the watchdog/heartbeat threads. The
            // total cpu budget itself stays watchdog-enforced.
            let _ = std::fs::write(entered.scope.join("cpu.max"), "100000 100000");
        }
        // Moving the process in is the step most likely to be denied.
        std::fs::write(entered.scope.join("cgroup.procs"), std::process::id().to_string())
            .ok()
            // `entered` drops here: the empty child cgroup is removed.
            .map(|_| entered)
    }
}

impl Drop for CgroupScope {
    fn drop(&mut self) {
        // Leave first (a populated cgroup cannot be removed), then remove.
        let _ = std::fs::write(&self.parent_procs, std::process::id().to_string());
        let _ = std::fs::remove_dir(&self.scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;
    use chronos_util::Id;

    fn ctx() -> JobContext {
        JobContext::new(Id::generate(), obj! {})
    }

    #[test]
    fn breach_reason_is_typed_and_names_the_dimension() {
        let breach = BudgetBreach { dimension: "cpu_millis", measured: 900, limit: 500 };
        assert_eq!(breach.reason(), "budget_exceeded:cpu_millis: measured 900 > budget 500");
        assert!(breach.reason().starts_with(BUDGET_EXCEEDED_PREFIX));
    }

    #[test]
    fn compliant_run_disarms_clean() {
        let ctx = ctx();
        let budget = JobBudget {
            cpu_millis: Some(3_600_000),
            max_rss_kib: Some(u64::MAX / 2),
            wall_millis: Some(3_600_000),
            ..Default::default()
        };
        let watchdog = BudgetWatchdog::arm(&ctx, budget, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(30));
        assert!(watchdog.disarm().is_none(), "no breach on a compliant run");
        assert!(!ctx.is_cancelled());
    }

    #[test]
    fn wall_clock_breach_cancels_within_an_interval() {
        let ctx = ctx();
        let budget = JobBudget { wall_millis: Some(10), ..Default::default() };
        let watchdog = BudgetWatchdog::arm(&ctx, budget, Duration::from_millis(5));
        let start = Instant::now();
        while !ctx.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(ctx.is_cancelled(), "watchdog must cancel a run past its wall budget");
        let breach = watchdog.disarm().expect("breach recorded");
        assert_eq!(breach.dimension, "wall_millis");
        assert!(breach.measured > breach.limit);
        assert!(ctx.cancel_reason().starts_with("budget_exceeded:wall_millis"));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_breach_detects_a_resident_set_over_budget() {
        // Any live process dwarfs a 1-KiB rss budget: the first tick fires.
        let ctx = ctx();
        let budget = JobBudget { max_rss_kib: Some(1), ..Default::default() };
        let watchdog = BudgetWatchdog::arm(&ctx, budget, Duration::from_millis(5));
        let start = Instant::now();
        while !ctx.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let breach = watchdog.disarm().expect("breach recorded");
        assert_eq!(breach.dimension, "max_rss_kib");
    }

    #[test]
    fn io_check_skips_when_counters_unavailable() {
        // No io counters on either side: a 0-byte budget must NOT breach,
        // because absence of data is not evidence of traffic (or of none).
        let baseline = ResourceSample { io: None, ..Default::default() };
        let budget = JobBudget { io_bytes: Some(0), ..Default::default() };
        assert!(check(&budget, Some(&baseline), Instant::now()).is_none());
    }

    #[test]
    fn cgroup_scope_is_opt_in() {
        // Without the env opt-in the backstop must refuse regardless of
        // host support.
        if std::env::var_os("CHRONOS_CGROUP_ENFORCE").is_none() {
            let budget = JobBudget { max_rss_kib: Some(1024), ..Default::default() };
            assert!(CgroupScope::try_enter(Id::generate(), &budget).is_none());
        }
    }
}
