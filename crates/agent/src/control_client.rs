//! The REST client agents use to talk to Chronos Control.
//!
//! Every body this client sends or reads goes through the typed wire
//! contract in [`chronos_api`]: requests are encoded from DTOs, responses
//! and error envelopes are decoded through them — no field names appear
//! here.
//!
//! The client cooperates with the server's overload protection:
//!
//! * Typed `429 overloaded` / `503 draining` shed responses are retried
//!   with the server's `Retry-After` hint stretched over the jittered
//!   backoff schedule (never shrinking it).
//! * A per-endpoint circuit breaker opens after consecutive transport
//!   failures or 5xx responses and fast-fails calls while open, sending
//!   seeded half-open probes instead of hammering a struggling server.
//! * A configured deadline budget is stamped on every request as
//!   `X-Chronos-Deadline-Ms` so the server can shed work the agent has
//!   already given up on.
//! * A typed `503 not_leader` refusal from a cluster follower re-aims the
//!   client at the leader named in the hint (re-authenticating there, since
//!   sessions are node-local) and retries under the same jittered schedule;
//!   the refusing node is *healthy*, so the breaker records success.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use chronos_api::{v1, ErrorEnvelope, WireDecode, WireEncode};
use chronos_http::{Client, Status};
use chronos_json::Value;
use chronos_util::circuit::BreakerSet;
use chronos_util::retry::Backoff;
use chronos_util::Id;
use parking_lot::RwLock;

/// Consecutive failures on one endpoint before its breaker opens.
const BREAKER_THRESHOLD: u32 = 5;

/// Base cooldown an open breaker waits before a half-open probe.
const BREAKER_COOLDOWN: Duration = Duration::from_secs(5);

/// A job claimed from Chronos Control (the agent-side projection of the
/// claim response, defined by the wire contract).
pub use chronos_api::v1::ClaimedJob;

/// Errors the agent surfaces.
#[derive(Debug)]
pub enum AgentError {
    /// The HTTP transport failed after retries.
    Transport(String),
    /// Chronos Control rejected the request.
    Api { status: u16, message: String },
    /// Chronos Control fenced this write: the job's lease is gone (it was
    /// rescheduled, or a newer attempt owns it). The agent must stop working
    /// on the job immediately — another attempt may already be running.
    LeaseLost { message: String },
    /// A non-idempotent call failed in transit and was *not* retried: the
    /// request may or may not have been applied, and blindly resending it
    /// could apply it twice. Callers decide whether the loss is tolerable.
    NonIdempotent { call: &'static str, message: String },
    /// The endpoint's circuit breaker is open after consecutive failures;
    /// the call was fast-failed without touching the network. `retry_in`
    /// is the remaining cooldown before a half-open probe is admitted.
    CircuitOpen { endpoint: &'static str, retry_in: Duration },
    /// The evaluation client reported a failure.
    Evaluation(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Transport(m) => write!(f, "transport error: {m}"),
            AgentError::Api { status, message } => write!(f, "api error {status}: {message}"),
            AgentError::LeaseLost { message } => write!(f, "lease lost: {message}"),
            AgentError::NonIdempotent { call, message } => {
                write!(f, "non-idempotent call {call} failed in transit (not retried): {message}")
            }
            AgentError::CircuitOpen { endpoint, retry_in } => {
                write!(f, "circuit open for {endpoint}: retry in {}ms", retry_in.as_millis())
            }
            AgentError::Evaluation(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// A thin, retrying client over the v1 agent endpoints.
pub struct ControlClient {
    /// Swapped wholesale when a `not_leader` hint re-aims the client, so
    /// in-flight calls keep their connection while new calls dial the
    /// leader.
    http: RwLock<Arc<Client>>,
    backoff: Backoff,
    base_url: RwLock<String>,
    token: RwLock<String>,
    /// Remembered by [`ControlClient::login`]: sessions are node-local, so
    /// following a leader hint to another node requires a fresh login there.
    credentials: RwLock<Option<(String, String)>>,
    /// Known cluster nodes. A transport failure rotates the client to the
    /// next seed: a *dead* leader yields no `not_leader` hint, so the only
    /// way back into the cluster is trying the other nodes.
    seeds: RwLock<Vec<String>>,
    breakers: Arc<BreakerSet>,
    deadline: Option<Duration>,
}

impl ControlClient {
    /// Connects to Chronos Control at `base_url` with a session token
    /// (obtain one via [`ControlClient::login`]).
    pub fn new(base_url: &str, token: &str) -> Self {
        let http = Client::new(base_url);
        http.set_default_header(chronos_api::TOKEN_HEADER, token);
        // Per-client jitter seed: a fleet of agents that lose the server at
        // the same moment must not retry in lockstep. The same seed also
        // staggers half-open breaker probes.
        let jitter_seed = Id::generate().as_u128() as u64;
        ControlClient {
            http: RwLock::new(Arc::new(http)),
            backoff: Backoff::default().with_decorrelated_jitter(jitter_seed),
            base_url: RwLock::new(base_url.trim_end_matches('/').to_string()),
            token: RwLock::new(token.to_string()),
            credentials: RwLock::new(None),
            seeds: RwLock::new(Vec::new()),
            breakers: Arc::new(BreakerSet::new(BREAKER_THRESHOLD, BREAKER_COOLDOWN, jitter_seed)),
            deadline: None,
        }
    }

    /// A second client sharing the same endpoint and session (fresh
    /// connection) — used by the heartbeat thread. Breaker state is shared:
    /// both halves observe the same endpoint health.
    pub fn shallow_clone(&self) -> Self {
        let mut clone = Self::new(&self.base_url(), &self.token.read().clone())
            .with_backoff(self.backoff.clone());
        clone.breakers = Arc::clone(&self.breakers);
        *clone.credentials.write() = self.credentials.read().clone();
        *clone.seeds.write() = self.seeds.read().clone();
        if let Some(budget) = self.deadline {
            clone = clone.with_deadline(budget);
        }
        clone
    }

    /// Stamps every request with an `X-Chronos-Deadline-Ms` budget: the
    /// server refuses (504 `deadline_exceeded`) work it cannot start before
    /// the budget runs out, instead of computing a response this agent has
    /// already abandoned.
    pub fn with_deadline(self, budget: Duration) -> Self {
        self.http
            .read()
            .set_default_header(chronos_api::DEADLINE_HEADER, &budget.as_millis().to_string());
        Self { deadline: Some(budget), ..self }
    }

    /// Logs in and returns a ready client. The credentials are remembered:
    /// if a cluster failover re-aims this client at a new leader, it logs
    /// in there transparently (session tokens are node-local).
    pub fn login(base_url: &str, username: &str, password: &str) -> Result<Self, AgentError> {
        let token = login_at(base_url, username, password)?;
        let client = Self::new(base_url, &token);
        *client.credentials.write() = Some((username.to_string(), password.to_string()));
        Ok(client)
    }

    /// Overrides the retry policy.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Registers the cluster's node URLs as failover seeds. When the
    /// current target stops answering at the transport level (a dead
    /// leader sends no `not_leader` hint), each retry rotates to the next
    /// seed until a live node answers — either serving the call or
    /// redirecting it with a typed hint.
    pub fn with_seed_nodes<S: AsRef<str>>(self, seeds: &[S]) -> Self {
        *self.seeds.write() =
            seeds.iter().map(|s| s.as_ref().trim_end_matches('/').to_string()).collect();
        self
    }

    /// The base URL currently targeted (the leader's, after a follow).
    pub fn base_url(&self) -> String {
        self.base_url.read().clone()
    }

    /// The HTTP client for the current target node.
    fn client(&self) -> Arc<Client> {
        Arc::clone(&self.http.read())
    }

    /// Re-aims the client at the leader a `not_leader` refusal named:
    /// builds a fresh connection to `hint`, re-authenticates there when
    /// credentials are known (falling back to the current token), and
    /// re-applies the deadline header. No-op when already aimed at `hint`.
    fn follow_leader(&self, hint: &str) {
        let hint = hint.trim_end_matches('/');
        if hint.is_empty() || *self.base_url.read() == hint {
            return;
        }
        let token = match &*self.credentials.read() {
            Some((username, password)) => {
                login_at(hint, username, password).unwrap_or_else(|_| self.token.read().clone())
            }
            None => self.token.read().clone(),
        };
        let client = Client::new(hint);
        client.set_default_header(chronos_api::TOKEN_HEADER, &token);
        if let Some(budget) = self.deadline {
            client
                .set_default_header(chronos_api::DEADLINE_HEADER, &budget.as_millis().to_string());
        }
        *self.base_url.write() = hint.to_string();
        *self.token.write() = token;
        *self.http.write() = Arc::new(client);
    }

    /// Re-aims the client at the next configured seed node after the
    /// current target failed at the transport level. No-op without seeds.
    fn rotate_seed(&self) {
        let seeds = self.seeds.read().clone();
        if seeds.is_empty() {
            return;
        }
        let current = self.base_url();
        let next = match seeds.iter().position(|s| *s == current) {
            Some(i) => seeds[(i + 1) % seeds.len()].clone(),
            None => seeds[0].clone(),
        };
        if next != current {
            self.follow_leader(&next);
        }
    }

    fn post(
        &self,
        endpoint: &'static str,
        path: &str,
        body: &Value,
    ) -> Result<chronos_http::Response, AgentError> {
        self.request(endpoint, |client| client.post_json(path, body))
    }

    /// Runs one idempotent call through the endpoint's circuit breaker and
    /// the hinted retry loop:
    ///
    /// * transport errors and 5xx responses count against the breaker;
    /// * typed `overloaded`/`draining` shed responses are retried with the
    ///   server's `Retry-After` hint stretched over the jittered schedule
    ///   (a shedding server is *alive*, so the breaker records success);
    /// * a typed `not_leader` refusal re-aims the client at the hinted
    ///   leader (same breaker/backoff rules — the refusing follower is
    ///   healthy) and the retry dials the new target;
    /// * while the breaker is open the call fast-fails without touching
    ///   the network.
    fn request<F>(
        &self,
        endpoint: &'static str,
        op: F,
    ) -> Result<chronos_http::Response, AgentError>
    where
        F: Fn(&Client) -> Result<chronos_http::Response, chronos_http::ClientError>,
    {
        let breaker = self.breakers.get(endpoint);
        if !breaker.try_acquire() {
            return Err(AgentError::CircuitOpen {
                endpoint,
                retry_in: breaker.retry_in().unwrap_or_default(),
            });
        }
        self.backoff
            .run_hinted(
                // Fetch the client anew each attempt: a not_leader follow
                // swaps it, so the retry goes to the leader.
                |_| match op(&self.client()) {
                    Ok(response) => {
                        if let Some(leader) = not_leader_hint(&response) {
                            breaker.record_success();
                            if let Some(leader) = &leader {
                                self.follow_leader(leader);
                            }
                            return Err(CallFailure::Shed {
                                status: response.status.0,
                                message: shed_message(&response),
                                hint: response.retry_after(),
                            });
                        }
                        if let Some(hint) = shed_hint(&response) {
                            breaker.record_success();
                            return Err(CallFailure::Shed {
                                status: response.status.0,
                                message: shed_message(&response),
                                hint,
                            });
                        }
                        if response.status.0 >= 500 {
                            breaker.record_failure();
                        } else {
                            breaker.record_success();
                        }
                        Ok(response)
                    }
                    Err(e) => {
                        breaker.record_failure();
                        // The target may be a dead leader: rotate to the
                        // next seed node so the retry asks a survivor.
                        self.rotate_seed();
                        Err(CallFailure::Transport(e.to_string()))
                    }
                },
                |failure| match failure {
                    CallFailure::Shed { hint, .. } => *hint,
                    CallFailure::Transport(_) => None,
                },
            )
            .map_err(|failure| match failure {
                CallFailure::Transport(message) => AgentError::Transport(message),
                // Shed on every attempt: surface the server's last typed
                // answer so callers see the real 429/503.
                CallFailure::Shed { status, message, .. } => AgentError::Api { status, message },
            })
    }

    /// Claims the next scheduled job for `deployment_id`, if any.
    ///
    /// One idempotency key covers the whole call: if the claim response is
    /// lost in transit and the backoff loop resends the request, Chronos
    /// Control recognises the key and hands back the job it already assigned
    /// instead of claiming a second one.
    pub fn claim(&self, deployment_id: Id) -> Result<Option<ClaimedJob>, AgentError> {
        if let Some(inj) = chronos_util::fail_eval!("agent.claim") {
            return Err(AgentError::Transport(injected_msg(inj, "claim")));
        }
        let request =
            v1::ClaimRequest { deployment_id, idempotency_key: Some(Id::generate().to_base32()) };
        let response = self.post("claim", "/api/v1/agent/claim", &request.to_value())?;
        if response.status == Status::NO_CONTENT {
            return Ok(None);
        }
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let doc = response
            .json_body()
            .map_err(|e| AgentError::Transport(format!("bad claim body: {e}")))?;
        let job = ClaimedJob::decode(&doc)
            .map_err(|e| AgentError::Transport(format!("bad claim body: {e}")))?;
        Ok(Some(job))
    }

    /// Sends a heartbeat with the current progress. `attempt` is the fencing
    /// token from the claimed job: a heartbeat carrying a stale attempt is
    /// rejected with [`AgentError::LeaseLost`].
    pub fn heartbeat(&self, job: Id, progress: u8, attempt: u32) -> Result<(), AgentError> {
        if let Some(inj) = chronos_util::fail_eval!("agent.heartbeat") {
            return Err(AgentError::Transport(injected_msg(inj, "heartbeat")));
        }
        let request = v1::HeartbeatRequest { progress: Some(progress), attempt: Some(attempt) };
        let response = self.post(
            "heartbeat",
            &format!("/api/v1/agent/jobs/{}/heartbeat", job.to_base32()),
            &request.to_value(),
        )?;
        ok_or_api(&response)
    }

    /// Ships buffered log output.
    ///
    /// Log appends are *not* idempotent (resending duplicates lines), so this
    /// is deliberately a single attempt with no retry: a transport failure
    /// surfaces as [`AgentError::NonIdempotent`] and the caller decides
    /// whether losing (or re-buffering) the lines is acceptable.
    pub fn append_log(&self, job: Id, text: &str) -> Result<(), AgentError> {
        // No retry loop, but the breaker still observes the endpoint: a
        // string of failed log ships opens the breaker and fast-fails
        // further attempts instead of stalling the evaluation on timeouts.
        let breaker = self.breakers.get("log");
        if !breaker.try_acquire() {
            return Err(AgentError::CircuitOpen {
                endpoint: "log",
                retry_in: breaker.retry_in().unwrap_or_default(),
            });
        }
        let response = self
            .client()
            .post_bytes(
                &format!("/api/v1/agent/jobs/{}/log", job.to_base32()),
                "text/plain; charset=utf-8",
                text.as_bytes().to_vec(),
            )
            .map_err(|e| {
                breaker.record_failure();
                AgentError::NonIdempotent { call: "append_log", message: e.to_string() }
            })?;
        if response.status.0 >= 500 {
            breaker.record_failure();
        } else {
            breaker.record_success();
        }
        ok_or_api(&response)
    }

    /// Uploads the result (measurement JSON + zip archive) and finishes the
    /// job. `attempt` fences against zombie uploads; one idempotency key
    /// covers all transmissions of this call, so a response lost after the
    /// server committed the result dedupes instead of double-finishing.
    pub fn upload_result(
        &self,
        job: Id,
        attempt: u32,
        data: &Value,
        archive: &[u8],
    ) -> Result<Id, AgentError> {
        if let Some(inj) = chronos_util::fail_eval!("agent.upload") {
            return Err(AgentError::Transport(injected_msg(inj, "upload_result")));
        }
        let result_key = Id::generate().to_base32();
        // The contract's streaming frame: the (possibly large) measurement
        // document goes straight into the request bytes instead of being
        // deep-cloned into a wrapper object first.
        let mut body = String::with_capacity(archive.len() / 3 * 4 + 64);
        v1::write_upload_frame(&mut body, data, archive, Some(attempt), Some(&result_key));
        let path = format!("/api/v1/agent/jobs/{}/result", job.to_base32());
        let response = self.request("result", |client| {
            client.post_bytes(&path, "application/json", body.as_bytes().to_vec())
        })?;
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let doc = response
            .json_body()
            .map_err(|e| AgentError::Transport(format!("bad result body: {e}")))?;
        let result = v1::JobResultDto::decode(&doc)
            .map_err(|e| AgentError::Transport(format!("bad result body: {e}")))?;
        Ok(result.id)
    }

    /// Reports the job as failed. `attempt` fences stale failure reports.
    pub fn fail(&self, job: Id, attempt: u32, reason: &str) -> Result<(), AgentError> {
        let request = v1::FailRequest { reason: reason.to_string(), attempt: Some(attempt) };
        let response = self.post(
            "fail",
            &format!("/api/v1/agent/jobs/{}/fail", job.to_base32()),
            &request.to_value(),
        )?;
        ok_or_api(&response)
    }
}

/// A failed attempt inside the hinted retry loop.
#[derive(Debug)]
enum CallFailure {
    /// The transport failed (connect, timeout, torn response).
    Transport(String),
    /// The server shed the request with a typed retryable envelope
    /// (`429 overloaded` / `503 draining`); `hint` is its Retry-After.
    Shed { status: u16, message: String, hint: Option<Duration> },
}

/// Performs one login against `base_url` and returns the session token.
fn login_at(base_url: &str, username: &str, password: &str) -> Result<String, AgentError> {
    let http = Client::new(base_url);
    let request =
        v1::LoginRequest { username: username.to_string(), password: password.to_string() };
    let response = http
        .post_json("/api/v1/login", &request.to_value())
        .map_err(|e| AgentError::Transport(e.to_string()))?;
    if !response.status.is_success() {
        return Err(api_error(&response));
    }
    response
        .json_body()
        .ok()
        .and_then(|v| v1::LoginResponse::decode(&v).ok())
        .map(|login| login.token)
        .ok_or_else(|| AgentError::Transport("login response missing token".into()))
}

/// When the response is a typed `not_leader` refusal, returns
/// `Some(leader_hint)` — the hint itself is absent mid-election.
fn not_leader_hint(response: &chronos_http::Response) -> Option<Option<String>> {
    let envelope = response.json_body().ok().and_then(|v| ErrorEnvelope::decode(&v).ok())?;
    if envelope.is_not_leader() {
        Some(envelope.leader_hint().map(str::to_string))
    } else {
        None
    }
}

/// When the response is a typed retryable shed (`overloaded`/`draining`),
/// returns `Some(retry_after_hint)` — the hint itself may be absent.
fn shed_hint(response: &chronos_http::Response) -> Option<Option<Duration>> {
    let retryable = response
        .json_body()
        .ok()
        .and_then(|v| ErrorEnvelope::decode(&v).ok())
        .is_some_and(|e| e.is_retryable_overload());
    if retryable {
        Some(response.retry_after())
    } else {
        None
    }
}

/// The message carried by a shed envelope (empty-tolerant).
fn shed_message(response: &chronos_http::Response) -> String {
    response
        .json_body()
        .ok()
        .and_then(|v| ErrorEnvelope::decode(&v).ok())
        .map(|e| e.message)
        .unwrap_or_default()
}

/// Renders an injected fault as a transport-style error message.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn injected_msg(inj: chronos_util::fail::Injected, what: &str) -> String {
    match inj {
        chronos_util::fail::Injected::Error(msg) => format!("{what} failed: {msg}"),
        chronos_util::fail::Injected::Torn { keep } => {
            format!("{what} connection torn after {keep} bytes (injected)")
        }
    }
}

fn ok_or_api(response: &chronos_http::Response) -> Result<(), AgentError> {
    if response.status.is_success() {
        Ok(())
    } else {
        Err(api_error(response))
    }
}

/// Decodes a non-2xx response through the typed error envelope.
fn api_error(response: &chronos_http::Response) -> AgentError {
    let envelope = response.json_body().ok().and_then(|v| ErrorEnvelope::decode(&v).ok());
    let message = match &envelope {
        Some(e) if !e.message.is_empty() => e.message.clone(),
        _ => String::from_utf8_lossy(&response.body).into_owned(),
    };
    if response.status.0 == 409 && envelope.as_ref().is_some_and(ErrorEnvelope::is_lease_lost) {
        return AgentError::LeaseLost { message };
    }
    AgentError::Api { status: response.status.0, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_log_failure_is_surfaced_as_non_idempotent() {
        // Nothing listens here: the single-attempt send must fail without
        // being retried and must name the call whose effect is now unknown.
        let client = ControlClient::new("http://127.0.0.1:1", "token");
        let err = client.append_log(Id::generate(), "line\n").unwrap_err();
        match err {
            AgentError::NonIdempotent { call, .. } => assert_eq!(call, "append_log"),
            other => panic!("expected NonIdempotent, got: {other}"),
        }
    }

    #[test]
    fn lease_lost_display_is_distinct() {
        let err = AgentError::LeaseLost { message: "stale attempt".into() };
        assert!(err.to_string().starts_with("lease lost:"));
        let err = AgentError::NonIdempotent { call: "append_log", message: "broken pipe".into() };
        assert!(err.to_string().contains("not retried"));
    }

    #[test]
    fn circuit_opens_after_consecutive_transport_failures_and_fast_fails() {
        // Nothing listens on port 1: every claim is a transport failure.
        // After the threshold the breaker opens and the next call must
        // fast-fail with CircuitOpen instead of dialing again.
        let client =
            ControlClient::new("http://127.0.0.1:1", "token").with_backoff(Backoff::none());
        for _ in 0..BREAKER_THRESHOLD {
            match client.claim(Id::generate()).unwrap_err() {
                AgentError::Transport(_) => {}
                other => panic!("expected Transport before the breaker opens, got: {other}"),
            }
        }
        match client.claim(Id::generate()).unwrap_err() {
            AgentError::CircuitOpen { endpoint, retry_in } => {
                assert_eq!(endpoint, "claim");
                assert!(retry_in > Duration::ZERO);
            }
            other => panic!("expected CircuitOpen, got: {other}"),
        }
        // Breakers are per endpoint: heartbeats still reach the network.
        match client.heartbeat(Id::generate(), 1, 1).unwrap_err() {
            AgentError::Transport(_) => {}
            other => panic!("expected Transport on an independent endpoint, got: {other}"),
        }
    }

    #[test]
    fn shallow_clone_shares_breaker_state() {
        let client =
            ControlClient::new("http://127.0.0.1:1", "token").with_backoff(Backoff::none());
        for _ in 0..BREAKER_THRESHOLD {
            let _ = client.claim(Id::generate());
        }
        let clone = client.shallow_clone();
        match clone.claim(Id::generate()).unwrap_err() {
            AgentError::CircuitOpen { endpoint, .. } => assert_eq!(endpoint, "claim"),
            other => panic!("expected shared CircuitOpen, got: {other}"),
        }
    }

    #[test]
    fn shed_responses_classify_and_carry_their_hint() {
        let shed = chronos_http::Response::json_status(
            Status::TOO_MANY_REQUESTS,
            &ErrorEnvelope::overloaded("queue full").to_value(),
        )
        .with_retry_after(Duration::from_millis(1500));
        assert_eq!(shed_hint(&shed), Some(Some(Duration::from_millis(1500))));
        assert_eq!(shed_message(&shed), "queue full");
        let plain = chronos_http::Response::json_status(
            Status::SERVICE_UNAVAILABLE,
            &ErrorEnvelope::status(503, "untyped outage").to_value(),
        );
        assert_eq!(shed_hint(&plain), None, "numeric 503s are not blind-retryable");
    }

    #[test]
    fn not_leader_refusals_classify_and_carry_the_hint() {
        let with_hint = chronos_http::Response::json_status(
            Status::SERVICE_UNAVAILABLE,
            &ErrorEnvelope::not_leader("not the leader", Some("http://leader:1".into())).to_value(),
        );
        assert_eq!(not_leader_hint(&with_hint), Some(Some("http://leader:1".to_string())));
        // Mid-election: still a not_leader refusal, just with no hint yet.
        let without = chronos_http::Response::json_status(
            Status::SERVICE_UNAVAILABLE,
            &ErrorEnvelope::not_leader("election in progress", None).to_value(),
        );
        assert_eq!(not_leader_hint(&without), Some(None));
        // Other typed refusals are not leader redirects.
        let draining = chronos_http::Response::json_status(
            Status::SERVICE_UNAVAILABLE,
            &ErrorEnvelope::draining("drain in progress").to_value(),
        );
        assert_eq!(not_leader_hint(&draining), None);
    }

    #[test]
    fn follow_leader_rewrites_the_target_and_keeps_the_token() {
        let client = ControlClient::new("http://127.0.0.1:1", "tok-a");
        assert_eq!(client.base_url(), "http://127.0.0.1:1");
        // No credentials remembered: the token carries over as-is.
        client.follow_leader("http://127.0.0.1:2/");
        assert_eq!(client.base_url(), "http://127.0.0.1:2");
        assert_eq!(*client.token.read(), "tok-a");
        // Re-following the same target is a no-op.
        client.follow_leader("http://127.0.0.1:2");
        assert_eq!(client.base_url(), "http://127.0.0.1:2");
    }

    #[test]
    fn transport_failures_rotate_through_seed_nodes() {
        // Nothing listens on any of these ports: every attempt is a
        // transport failure, and each failure must advance to the next seed.
        let client = ControlClient::new("http://127.0.0.1:1", "tok")
            .with_backoff(Backoff::none())
            .with_seed_nodes(&["http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3"]);
        let _ = client.claim(Id::generate());
        assert_eq!(client.base_url(), "http://127.0.0.1:2");
        let _ = client.claim(Id::generate());
        assert_eq!(client.base_url(), "http://127.0.0.1:3");
        // A target that fell off the seed list rotates back to the first.
        client.follow_leader("http://127.0.0.1:9");
        let _ = client.heartbeat(Id::generate(), 0, 1);
        assert_eq!(client.base_url(), "http://127.0.0.1:1");
    }

    #[test]
    fn api_error_distinguishes_lease_loss_from_conflict() {
        let conflict = chronos_http::Response::json_status(
            Status::CONFLICT,
            &ErrorEnvelope::status(409, "already claimed").to_value(),
        );
        assert!(matches!(api_error(&conflict), AgentError::Api { status: 409, .. }));
        let fenced = chronos_http::Response::json_status(
            Status::CONFLICT,
            &ErrorEnvelope::lease_lost("stale attempt 1").to_value(),
        );
        match api_error(&fenced) {
            AgentError::LeaseLost { message } => assert_eq!(message, "stale attempt 1"),
            other => panic!("expected LeaseLost, got: {other}"),
        }
    }
}
