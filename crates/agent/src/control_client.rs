//! The REST client agents use to talk to Chronos Control.

use std::fmt;

use chronos_http::{Client, Status};
use chronos_json::{obj, Value};
use chronos_util::encode::base64_encode;
use chronos_util::retry::Backoff;
use chronos_util::Id;

/// Errors the agent surfaces.
#[derive(Debug)]
pub enum AgentError {
    /// The HTTP transport failed after retries.
    Transport(String),
    /// Chronos Control rejected the request.
    Api { status: u16, message: String },
    /// The evaluation client reported a failure.
    Evaluation(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Transport(m) => write!(f, "transport error: {m}"),
            AgentError::Api { status, message } => write!(f, "api error {status}: {message}"),
            AgentError::Evaluation(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// A job claimed from Chronos Control.
#[derive(Debug, Clone)]
pub struct ClaimedJob {
    /// Job id.
    pub id: Id,
    /// The evaluation the job belongs to.
    pub evaluation_id: Id,
    /// Concrete parameters for this point of the evaluation space.
    pub parameters: Value,
    /// Which attempt this is (1-based).
    pub attempts: u32,
}

/// A thin, retrying client over the v1 agent endpoints.
pub struct ControlClient {
    http: Client,
    backoff: Backoff,
    base_url: String,
    token: String,
}

impl ControlClient {
    /// Connects to Chronos Control at `base_url` with a session token
    /// (obtain one via [`ControlClient::login`]).
    pub fn new(base_url: &str, token: &str) -> Self {
        let http = Client::new(base_url);
        http.set_default_header(crate::runtime::TOKEN_HEADER, token);
        ControlClient {
            http,
            backoff: Backoff::default(),
            base_url: base_url.to_string(),
            token: token.to_string(),
        }
    }

    /// A second client sharing the same endpoint and session (fresh
    /// connection) — used by the heartbeat thread.
    pub fn shallow_clone(&self) -> Self {
        Self::new(&self.base_url, &self.token).with_backoff(self.backoff.clone())
    }

    /// Logs in and returns a ready client.
    pub fn login(base_url: &str, username: &str, password: &str) -> Result<Self, AgentError> {
        let http = Client::new(base_url);
        let response = http
            .post_json("/api/v1/login", &obj! {"username" => username, "password" => password})
            .map_err(|e| AgentError::Transport(e.to_string()))?;
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let token = response
            .json_body()
            .ok()
            .and_then(|v| v.get("token").and_then(Value::as_str).map(str::to_string))
            .ok_or_else(|| AgentError::Transport("login response missing token".into()))?;
        Ok(Self::new(base_url, &token))
    }

    /// Overrides the retry policy.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    fn post(&self, path: &str, body: &Value) -> Result<chronos_http::Response, AgentError> {
        self.backoff
            .run(|_| self.http.post_json(path, body))
            .map_err(|e| AgentError::Transport(e.to_string()))
    }

    /// Claims the next scheduled job for `deployment_id`, if any.
    pub fn claim(&self, deployment_id: Id) -> Result<Option<ClaimedJob>, AgentError> {
        let response =
            self.post("/api/v1/agent/claim", &obj! {"deployment_id" => deployment_id.to_base32()})?;
        if response.status == Status::NO_CONTENT {
            return Ok(None);
        }
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let doc = response
            .json_body()
            .map_err(|e| AgentError::Transport(format!("bad claim body: {e}")))?;
        let id = parse_id(&doc, "id")?;
        let evaluation_id = parse_id(&doc, "evaluation_id")?;
        Ok(Some(ClaimedJob {
            id,
            evaluation_id,
            parameters: doc.get("parameters").cloned().unwrap_or(Value::Null),
            attempts: doc.get("attempts").and_then(Value::as_u64).unwrap_or(1) as u32,
        }))
    }

    /// Sends a heartbeat with the current progress.
    pub fn heartbeat(&self, job: Id, progress: u8) -> Result<(), AgentError> {
        let response = self.post(
            &format!("/api/v1/agent/jobs/{}/heartbeat", job.to_base32()),
            &obj! {"progress" => progress as i64},
        )?;
        ok_or_api(&response)
    }

    /// Ships buffered log output.
    pub fn append_log(&self, job: Id, text: &str) -> Result<(), AgentError> {
        let response = self
            .backoff
            .run(|_| {
                self.http.post_bytes(
                    &format!("/api/v1/agent/jobs/{}/log", job.to_base32()),
                    "text/plain; charset=utf-8",
                    text.as_bytes().to_vec(),
                )
            })
            .map_err(|e| AgentError::Transport(e.to_string()))?;
        ok_or_api(&response)
    }

    /// Uploads the result (measurement JSON + zip archive) and finishes the
    /// job.
    pub fn upload_result(&self, job: Id, data: &Value, archive: &[u8]) -> Result<Id, AgentError> {
        // Frame the body by hand so the (possibly large) measurement
        // document streams straight into the request bytes instead of
        // being deep-cloned into a wrapper object first.
        let mut body = String::with_capacity(archive.len() / 3 * 4 + 64);
        body.push_str("{\"data\":");
        data.write_into(&mut body);
        body.push_str(",\"archive_b64\":");
        chronos_json::write_string(&mut body, &base64_encode(archive));
        body.push('}');
        let path = format!("/api/v1/agent/jobs/{}/result", job.to_base32());
        let response = self
            .backoff
            .run(|_| self.http.post_bytes(&path, "application/json", body.as_bytes().to_vec()))
            .map_err(|e| AgentError::Transport(e.to_string()))?;
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let doc = response
            .json_body()
            .map_err(|e| AgentError::Transport(format!("bad result body: {e}")))?;
        parse_id(&doc, "id")
    }

    /// Reports the job as failed.
    pub fn fail(&self, job: Id, reason: &str) -> Result<(), AgentError> {
        let response = self.post(
            &format!("/api/v1/agent/jobs/{}/fail", job.to_base32()),
            &obj! {"reason" => reason},
        )?;
        ok_or_api(&response)
    }
}

fn ok_or_api(response: &chronos_http::Response) -> Result<(), AgentError> {
    if response.status.is_success() {
        Ok(())
    } else {
        Err(api_error(response))
    }
}

fn api_error(response: &chronos_http::Response) -> AgentError {
    let message = response
        .json_body()
        .ok()
        .and_then(|v| v.pointer("/error/message").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_else(|| String::from_utf8_lossy(&response.body).into_owned());
    AgentError::Api { status: response.status.0, message }
}

fn parse_id(doc: &Value, field: &str) -> Result<Id, AgentError> {
    doc.get(field)
        .and_then(Value::as_str)
        .and_then(|s| Id::parse_base32(s).ok())
        .ok_or_else(|| AgentError::Transport(format!("response missing id field {field:?}")))
}
