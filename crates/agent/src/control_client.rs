//! The REST client agents use to talk to Chronos Control.
//!
//! Every body this client sends or reads goes through the typed wire
//! contract in [`chronos_api`]: requests are encoded from DTOs, responses
//! and error envelopes are decoded through them — no field names appear
//! here.

use std::fmt;

use chronos_api::{v1, ErrorEnvelope, WireDecode, WireEncode};
use chronos_http::{Client, Status};
use chronos_json::Value;
use chronos_util::retry::Backoff;
use chronos_util::Id;

/// A job claimed from Chronos Control (the agent-side projection of the
/// claim response, defined by the wire contract).
pub use chronos_api::v1::ClaimedJob;

/// Errors the agent surfaces.
#[derive(Debug)]
pub enum AgentError {
    /// The HTTP transport failed after retries.
    Transport(String),
    /// Chronos Control rejected the request.
    Api { status: u16, message: String },
    /// Chronos Control fenced this write: the job's lease is gone (it was
    /// rescheduled, or a newer attempt owns it). The agent must stop working
    /// on the job immediately — another attempt may already be running.
    LeaseLost { message: String },
    /// A non-idempotent call failed in transit and was *not* retried: the
    /// request may or may not have been applied, and blindly resending it
    /// could apply it twice. Callers decide whether the loss is tolerable.
    NonIdempotent { call: &'static str, message: String },
    /// The evaluation client reported a failure.
    Evaluation(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Transport(m) => write!(f, "transport error: {m}"),
            AgentError::Api { status, message } => write!(f, "api error {status}: {message}"),
            AgentError::LeaseLost { message } => write!(f, "lease lost: {message}"),
            AgentError::NonIdempotent { call, message } => {
                write!(f, "non-idempotent call {call} failed in transit (not retried): {message}")
            }
            AgentError::Evaluation(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// A thin, retrying client over the v1 agent endpoints.
pub struct ControlClient {
    http: Client,
    backoff: Backoff,
    base_url: String,
    token: String,
}

impl ControlClient {
    /// Connects to Chronos Control at `base_url` with a session token
    /// (obtain one via [`ControlClient::login`]).
    pub fn new(base_url: &str, token: &str) -> Self {
        let http = Client::new(base_url);
        http.set_default_header(chronos_api::TOKEN_HEADER, token);
        // Per-client jitter seed: a fleet of agents that lose the server at
        // the same moment must not retry in lockstep.
        let jitter_seed = Id::generate().as_u128() as u64;
        ControlClient {
            http,
            backoff: Backoff::default().with_decorrelated_jitter(jitter_seed),
            base_url: base_url.to_string(),
            token: token.to_string(),
        }
    }

    /// A second client sharing the same endpoint and session (fresh
    /// connection) — used by the heartbeat thread.
    pub fn shallow_clone(&self) -> Self {
        Self::new(&self.base_url, &self.token).with_backoff(self.backoff.clone())
    }

    /// Logs in and returns a ready client.
    pub fn login(base_url: &str, username: &str, password: &str) -> Result<Self, AgentError> {
        let http = Client::new(base_url);
        let request =
            v1::LoginRequest { username: username.to_string(), password: password.to_string() };
        let response = http
            .post_json("/api/v1/login", &request.to_value())
            .map_err(|e| AgentError::Transport(e.to_string()))?;
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let login = response
            .json_body()
            .ok()
            .and_then(|v| v1::LoginResponse::decode(&v).ok())
            .ok_or_else(|| AgentError::Transport("login response missing token".into()))?;
        Ok(Self::new(base_url, &login.token))
    }

    /// Overrides the retry policy.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    fn post(&self, path: &str, body: &Value) -> Result<chronos_http::Response, AgentError> {
        self.backoff
            .run(|_| self.http.post_json(path, body))
            .map_err(|e| AgentError::Transport(e.to_string()))
    }

    /// Claims the next scheduled job for `deployment_id`, if any.
    ///
    /// One idempotency key covers the whole call: if the claim response is
    /// lost in transit and the backoff loop resends the request, Chronos
    /// Control recognises the key and hands back the job it already assigned
    /// instead of claiming a second one.
    pub fn claim(&self, deployment_id: Id) -> Result<Option<ClaimedJob>, AgentError> {
        if let Some(inj) = chronos_util::fail_eval!("agent.claim") {
            return Err(AgentError::Transport(injected_msg(inj, "claim")));
        }
        let request =
            v1::ClaimRequest { deployment_id, idempotency_key: Some(Id::generate().to_base32()) };
        let response = self.post("/api/v1/agent/claim", &request.to_value())?;
        if response.status == Status::NO_CONTENT {
            return Ok(None);
        }
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let doc = response
            .json_body()
            .map_err(|e| AgentError::Transport(format!("bad claim body: {e}")))?;
        let job = ClaimedJob::decode(&doc)
            .map_err(|e| AgentError::Transport(format!("bad claim body: {e}")))?;
        Ok(Some(job))
    }

    /// Sends a heartbeat with the current progress. `attempt` is the fencing
    /// token from the claimed job: a heartbeat carrying a stale attempt is
    /// rejected with [`AgentError::LeaseLost`].
    pub fn heartbeat(&self, job: Id, progress: u8, attempt: u32) -> Result<(), AgentError> {
        if let Some(inj) = chronos_util::fail_eval!("agent.heartbeat") {
            return Err(AgentError::Transport(injected_msg(inj, "heartbeat")));
        }
        let request = v1::HeartbeatRequest { progress: Some(progress), attempt: Some(attempt) };
        let response = self.post(
            &format!("/api/v1/agent/jobs/{}/heartbeat", job.to_base32()),
            &request.to_value(),
        )?;
        ok_or_api(&response)
    }

    /// Ships buffered log output.
    ///
    /// Log appends are *not* idempotent (resending duplicates lines), so this
    /// is deliberately a single attempt with no retry: a transport failure
    /// surfaces as [`AgentError::NonIdempotent`] and the caller decides
    /// whether losing (or re-buffering) the lines is acceptable.
    pub fn append_log(&self, job: Id, text: &str) -> Result<(), AgentError> {
        let response = self
            .http
            .post_bytes(
                &format!("/api/v1/agent/jobs/{}/log", job.to_base32()),
                "text/plain; charset=utf-8",
                text.as_bytes().to_vec(),
            )
            .map_err(|e| AgentError::NonIdempotent {
                call: "append_log",
                message: e.to_string(),
            })?;
        ok_or_api(&response)
    }

    /// Uploads the result (measurement JSON + zip archive) and finishes the
    /// job. `attempt` fences against zombie uploads; one idempotency key
    /// covers all transmissions of this call, so a response lost after the
    /// server committed the result dedupes instead of double-finishing.
    pub fn upload_result(
        &self,
        job: Id,
        attempt: u32,
        data: &Value,
        archive: &[u8],
    ) -> Result<Id, AgentError> {
        if let Some(inj) = chronos_util::fail_eval!("agent.upload") {
            return Err(AgentError::Transport(injected_msg(inj, "upload_result")));
        }
        let result_key = Id::generate().to_base32();
        // The contract's streaming frame: the (possibly large) measurement
        // document goes straight into the request bytes instead of being
        // deep-cloned into a wrapper object first.
        let mut body = String::with_capacity(archive.len() / 3 * 4 + 64);
        v1::write_upload_frame(&mut body, data, archive, Some(attempt), Some(&result_key));
        let path = format!("/api/v1/agent/jobs/{}/result", job.to_base32());
        let response = self
            .backoff
            .run(|_| self.http.post_bytes(&path, "application/json", body.as_bytes().to_vec()))
            .map_err(|e| AgentError::Transport(e.to_string()))?;
        if !response.status.is_success() {
            return Err(api_error(&response));
        }
        let doc = response
            .json_body()
            .map_err(|e| AgentError::Transport(format!("bad result body: {e}")))?;
        let result = v1::JobResultDto::decode(&doc)
            .map_err(|e| AgentError::Transport(format!("bad result body: {e}")))?;
        Ok(result.id)
    }

    /// Reports the job as failed. `attempt` fences stale failure reports.
    pub fn fail(&self, job: Id, attempt: u32, reason: &str) -> Result<(), AgentError> {
        let request = v1::FailRequest { reason: reason.to_string(), attempt: Some(attempt) };
        let response = self
            .post(&format!("/api/v1/agent/jobs/{}/fail", job.to_base32()), &request.to_value())?;
        ok_or_api(&response)
    }
}

/// Renders an injected fault as a transport-style error message.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn injected_msg(inj: chronos_util::fail::Injected, what: &str) -> String {
    match inj {
        chronos_util::fail::Injected::Error(msg) => format!("{what} failed: {msg}"),
        chronos_util::fail::Injected::Torn { keep } => {
            format!("{what} connection torn after {keep} bytes (injected)")
        }
    }
}

fn ok_or_api(response: &chronos_http::Response) -> Result<(), AgentError> {
    if response.status.is_success() {
        Ok(())
    } else {
        Err(api_error(response))
    }
}

/// Decodes a non-2xx response through the typed error envelope.
fn api_error(response: &chronos_http::Response) -> AgentError {
    let envelope = response.json_body().ok().and_then(|v| ErrorEnvelope::decode(&v).ok());
    let message = match &envelope {
        Some(e) if !e.message.is_empty() => e.message.clone(),
        _ => String::from_utf8_lossy(&response.body).into_owned(),
    };
    if response.status.0 == 409 && envelope.as_ref().is_some_and(ErrorEnvelope::is_lease_lost) {
        return AgentError::LeaseLost { message };
    }
    AgentError::Api { status: response.status.0, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_log_failure_is_surfaced_as_non_idempotent() {
        // Nothing listens here: the single-attempt send must fail without
        // being retried and must name the call whose effect is now unknown.
        let client = ControlClient::new("http://127.0.0.1:1", "token");
        let err = client.append_log(Id::generate(), "line\n").unwrap_err();
        match err {
            AgentError::NonIdempotent { call, .. } => assert_eq!(call, "append_log"),
            other => panic!("expected NonIdempotent, got: {other}"),
        }
    }

    #[test]
    fn lease_lost_display_is_distinct() {
        let err = AgentError::LeaseLost { message: "stale attempt".into() };
        assert!(err.to_string().starts_with("lease lost:"));
        let err = AgentError::NonIdempotent { call: "append_log", message: "broken pipe".into() };
        assert!(err.to_string().contains("not retried"));
    }

    #[test]
    fn api_error_distinguishes_lease_loss_from_conflict() {
        let conflict = chronos_http::Response::json_status(
            Status::CONFLICT,
            &ErrorEnvelope::status(409, "already claimed").to_value(),
        );
        assert!(matches!(api_error(&conflict), AgentError::Api { status: 409, .. }));
        let fenced = chronos_http::Response::json_status(
            Status::CONFLICT,
            &ErrorEnvelope::lease_lost("stale attempt 1").to_value(),
        );
        match api_error(&fenced) {
            AgentError::LeaseLost { message } => assert_eq!(message, "stale attempt 1"),
            other => panic!("expected LeaseLost, got: {other}"),
        }
    }
}
