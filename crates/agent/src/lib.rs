//! # chronos-agent — the Chronos Agent library
//!
//! The Rust counterpart of the paper's Java agent library (§2.2): "clients
//! or client libraries connecting to Chronos' REST API that perform or
//! trigger the actual evaluation workload."
//!
//! As in the paper, "integrating the Chronos Agent library into an existing
//! evaluation client is the only part which requires programming [...] the
//! agent library already provides an interface with all necessary methods
//! to be implemented": implement [`EvaluationClient`] (set-up → warm-up →
//! execute → tear-down) and hand it to a [`ChronosAgent`]; the agent does
//! everything else — job polling, heartbeats, progress updates, periodic
//! log shipping, basic-metrics capture and the result upload ("a JSON and a
//! zip file"), with HTTP or a NAS-style local directory as the result sink.
//!
//! [`DocstoreClient`] is the bundled evaluation client for the paper's
//! demo: it benchmarks the [`minidoc`] document store (wiredTiger-like vs
//! mmapv1-like engines) under a YCSB-style workload.

mod budget;
mod context;
mod control_client;
mod docstore_client;
mod resources;
mod runtime;
mod sink;
mod tpcc_client;

pub use budget::{BudgetBreach, BudgetWatchdog, CgroupScope, JobBudget, BUDGET_EXCEEDED_PREFIX};
pub use context::JobContext;
pub use control_client::{AgentError, ClaimedJob, ControlClient};
pub use docstore_client::DocstoreClient;
pub use resources::{current_rss_kib, IoCounters, ResourceSample, ResourceTracker};
pub use runtime::{AgentConfig, ChronosAgent, EvaluationClient};
pub use sink::{HttpSink, LocalDirSink, ResultSink};
pub use tpcc_client::TpccClient;
