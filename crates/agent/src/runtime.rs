//! The agent runtime: claim → run lifecycle → upload, with heartbeats.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos_json::{obj, Value};
use chronos_util::Id;
use chronos_zip::ZipWriter;

use crate::budget::{BudgetWatchdog, CgroupScope};
use crate::context::JobContext;
use crate::control_client::{AgentError, ClaimedJob, ControlClient};
use crate::sink::{HttpSink, ResultSink};

/// The interface an evaluation client implements (paper §2.2: "the agent
/// library already provides an interface with all necessary methods to be
/// implemented" — "this usually narrows down to calling already existing
/// methods of the evaluation client").
pub trait EvaluationClient: Send {
    /// A short client name (appears in logs and the result document).
    fn name(&self) -> &str;

    /// Prepares the SuE for this job's parameters: configuration, benchmark
    /// data generation and ingestion (paper §1, step one).
    fn set_up(&mut self, ctx: &JobContext) -> Result<(), String>;

    /// Warm-up phase "filling internal buffers, to make sure that the
    /// behavior of the SuE reflects a realistic use" (§1, step two).
    fn warm_up(&mut self, _ctx: &JobContext) -> Result<(), String> {
        Ok(())
    }

    /// The actual evaluation run (§1, step three). Returns the measurement
    /// document for analysis within Chronos Control.
    fn execute(&mut self, ctx: &JobContext) -> Result<Value, String>;

    /// Cleanup after the run (always called, also after failures).
    fn tear_down(&mut self, _ctx: &JobContext) {}
}

/// Agent configuration.
pub struct AgentConfig {
    /// The deployment this agent executes jobs for.
    pub deployment_id: Id,
    /// Interval between heartbeats / log flushes while a job runs.
    pub heartbeat_interval: Duration,
    /// Interval between claim attempts when the queue is empty.
    pub poll_interval: Duration,
    /// Sampling interval of the budget watchdog while a budgeted job runs.
    /// A breach is detected within roughly one interval.
    pub budget_poll_interval: Duration,
    /// Where result archives go.
    pub sink: Box<dyn ResultSink>,
}

impl AgentConfig {
    /// Defaults: 1 s heartbeats, 250 ms polling, 25 ms budget sampling,
    /// inline HTTP sink.
    pub fn new(deployment_id: Id) -> Self {
        AgentConfig {
            deployment_id,
            heartbeat_interval: Duration::from_millis(1000),
            poll_interval: Duration::from_millis(250),
            budget_poll_interval: Duration::from_millis(25),
            sink: Box::new(HttpSink),
        }
    }
}

/// The agent runtime driving one [`EvaluationClient`].
pub struct ChronosAgent<C: EvaluationClient> {
    client: ControlClient,
    config: AgentConfig,
    evaluation_client: C,
}

impl<C: EvaluationClient> ChronosAgent<C> {
    /// Creates an agent.
    pub fn new(client: ControlClient, config: AgentConfig, evaluation_client: C) -> Self {
        ChronosAgent { client, config, evaluation_client }
    }

    /// Claims and executes one job. Returns `Ok(false)` when no job was
    /// available, `Ok(true)` after completing one (successfully or by
    /// reporting its failure to Chronos Control).
    pub fn run_once(&mut self) -> Result<bool, AgentError> {
        let Some(job) = self.client.claim(self.config.deployment_id)? else {
            return Ok(false);
        };
        self.execute_job(job)?;
        Ok(true)
    }

    /// Runs until the queue stays empty for `idle_for`.
    pub fn run_until_idle(&mut self, idle_for: Duration) -> Result<u64, AgentError> {
        let mut completed = 0;
        let mut idle_since = Instant::now();
        loop {
            if self.run_once()? {
                completed += 1;
                idle_since = Instant::now();
            } else {
                if idle_since.elapsed() >= idle_for {
                    return Ok(completed);
                }
                std::thread::sleep(self.config.poll_interval);
            }
        }
    }

    fn execute_job(&mut self, job: ClaimedJob) -> Result<(), AgentError> {
        let ctx = JobContext::new(job.id, job.parameters.clone());
        ctx.log(format!(
            "agent: starting {} (attempt {}) with parameters {}",
            self.evaluation_client.name(),
            job.attempts,
            job.parameters
        ));

        // Heartbeat thread: ships progress + buffered logs periodically.
        // A lost lease (job rescheduled, newer attempt running) cancels the
        // run; transient transport failures are tolerated — the next beat
        // may get through before Chronos Control's timeout fires.
        let stop = Arc::new(AtomicBool::new(false));
        let attempt = job.attempts;
        let heartbeat = {
            let ctx = ctx.clone();
            let stop = Arc::clone(&stop);
            let client = self.client_clone()?;
            let interval = self.config.heartbeat_interval;
            std::thread::Builder::new()
                .name("chronos-agent-heartbeat".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match client.heartbeat(ctx.job_id, ctx.progress(), attempt) {
                            Ok(()) => {}
                            Err(AgentError::LeaseLost { message }) => {
                                ctx.cancel(message);
                                break;
                            }
                            Err(e) => {
                                ctx.log(format!("agent: heartbeat failed (tolerated): {e}"));
                            }
                        }
                        let logs = ctx.take_logs();
                        if !logs.is_empty() {
                            // Log appends are not idempotent; a transit
                            // failure drops this batch rather than risking
                            // duplicated lines on a blind resend.
                            let _ = client.append_log(ctx.job_id, &logs);
                        }
                        std::thread::sleep(interval);
                    }
                })
                .expect("failed to spawn heartbeat thread")
        };

        // Budget enforcement: arm the watchdog (and, when the host permits
        // it, the cgroup backstop) for the duration of the run.
        let budget = job.budget.filter(|b| !b.is_empty());
        let cgroup = budget.as_ref().and_then(|b| CgroupScope::try_enter(job.id, b));
        let watchdog = budget.map(|b| {
            ctx.log(format!(
                "agent: budget armed ({}ms sampling){}",
                self.config.budget_poll_interval.as_millis(),
                if cgroup.is_some() { ", cgroup backstop active" } else { "" },
            ));
            BudgetWatchdog::arm(&ctx, b, self.config.budget_poll_interval)
        });

        let outcome = self.run_lifecycle(&ctx);

        stop.store(true, Ordering::SeqCst);
        let _ = heartbeat.join();
        let mut breach = watchdog.and_then(BudgetWatchdog::disarm);
        drop(cgroup);
        // Chaos-only synthetic breach, so storms exercise the quarantine
        // path without needing a genuinely runaway workload.
        if breach.is_none() {
            if let Some(_inj) = chronos_util::fail_eval!("agent.budget.breach") {
                let synthetic =
                    crate::budget::BudgetBreach { dimension: "wall_millis", measured: 1, limit: 0 };
                ctx.cancel(synthetic.reason());
                breach = Some(synthetic);
            }
        }
        // Final log flush.
        let logs = ctx.take_logs();
        if !logs.is_empty() {
            let _ = self.client.append_log(ctx.job_id, &logs);
        }

        // A budget breach is *our* cancellation, not a lost lease: report
        // the typed failure so Chronos Control counts the attempt (and
        // quarantines the job once attempts are exhausted). This must come
        // before the generic cancellation return below.
        if let Some(breach) = breach {
            return match self.client.fail(ctx.job_id, attempt, &breach.reason()) {
                Ok(()) | Err(AgentError::LeaseLost { .. }) => Ok(()),
                Err(e) => Err(e),
            };
        }

        if ctx.is_cancelled() {
            // The lease is gone: another attempt owns this job now. Uploading
            // would be fenced anyway; treat the job as over for this agent.
            return Ok(());
        }

        match outcome {
            Ok(data) => {
                let archive = build_archive(&ctx, &data);
                match self.config.sink.deliver(&self.client, ctx.job_id, attempt, &data, &archive) {
                    Ok(_) => Ok(()),
                    // Fenced at upload: a newer attempt finished first.
                    Err(AgentError::LeaseLost { .. }) => Ok(()),
                    Err(e) => Err(e),
                }
            }
            Err(reason) => match self.client.fail(ctx.job_id, attempt, &reason) {
                Ok(()) | Err(AgentError::LeaseLost { .. }) => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    /// set-up → warm-up → execute → tear-down, timing each phase and
    /// catching panics so a crashing benchmark fails only its job.
    fn run_lifecycle(&mut self, ctx: &JobContext) -> Result<Value, String> {
        let run = |label: &str,
                   ctx: &JobContext,
                   f: &mut dyn FnMut(&JobContext) -> Result<(), String>|
         -> Result<u64, String> {
            if ctx.is_cancelled() {
                return Err(format!("run cancelled before {label}: {}", ctx.cancel_reason()));
            }
            let start = Instant::now();
            ctx.log(format!("agent: phase {label}"));
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(ctx))) {
                Ok(Ok(())) => Ok(start.elapsed().as_millis() as u64),
                Ok(Err(e)) => Err(format!("{label} failed: {e}")),
                Err(panic) => Err(format!("{label} panicked: {}", panic_message(&panic))),
            }
        };

        let client = &mut self.evaluation_client;
        // Resource accounting brackets the whole SuE run (set-up through
        // execute); the deltas ride along in the result document.
        let tracker = crate::resources::ResourceTracker::start();
        let result = (|| {
            let setup_ms = run("set_up", ctx, &mut |c| client.set_up(c))?;
            let warmup_ms = run("warm_up", ctx, &mut |c| client.warm_up(c))?;
            if ctx.is_cancelled() {
                return Err(format!("run cancelled before execute: {}", ctx.cancel_reason()));
            }
            let execute_start = Instant::now();
            ctx.log("agent: phase execute");
            let mut data = match std::panic::catch_unwind(AssertUnwindSafe(|| client.execute(ctx)))
            {
                Ok(Ok(data)) => data,
                Ok(Err(e)) => return Err(format!("execute failed: {e}")),
                Err(panic) => return Err(format!("execute panicked: {}", panic_message(&panic))),
            };
            let execute_ms = execute_start.elapsed().as_millis() as u64;
            // Basic metrics the library measures on its own (paper §2.2).
            let mut agent_info = obj! {
                "client" => client.name(),
                "setup_millis" => setup_ms,
                "warmup_millis" => warmup_ms,
                "execute_millis" => execute_ms,
            };
            if let Some(resources) = tracker.finish() {
                agent_info.set("resources", resources);
            }
            data.set("agent", agent_info);
            ctx.set_progress(100);
            Ok(data)
        })();
        self.evaluation_client.tear_down(ctx);
        result
    }

    /// The heartbeat thread needs its own connection; tokens are reusable,
    /// so we rebuild a client from the same transport settings.
    fn client_clone(&self) -> Result<ControlClient, AgentError> {
        Ok(self.client.shallow_clone())
    }
}

/// Builds the result zip: every attachment plus a pretty-printed copy of the
/// measurement document for offline analysis.
fn build_archive(ctx: &JobContext, data: &Value) -> Vec<u8> {
    let mut zip = ZipWriter::new();
    let _ = zip.add_file("result.json", data.to_pretty_string().as_bytes());
    for (name, bytes) in ctx.take_attachments() {
        let _ = zip.add_file(&name, &bytes);
    }
    zip.finish()
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}
