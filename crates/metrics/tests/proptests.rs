//! Property tests for histogram invariants: bounded relative error,
//! monotonic quantiles, merge-equals-combined.

use chronos_metrics::Histogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantile_relative_error_is_bounded(values in prop::collection::vec(1u64..u64::MAX / 2, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = h.quantile(q) as f64;
            // 2^-7 sub-bucket precision => < 1.6% error including rank rounding slack.
            prop_assert!(
                (approx - exact).abs() <= exact * 0.016 + 1.0,
                "q={q}: approx={approx}, exact={exact}"
            );
        }
    }

    #[test]
    fn quantiles_monotonic(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0u64;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            prop_assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn merge_equals_combined(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    #[test]
    fn merged_histogram_percentiles_are_monotonic(
        a in prop::collection::vec(any::<u64>(), 0..150),
        b in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        // Merging two arbitrary histograms must preserve the percentile
        // order: p_i <= p_j for i < j, across the whole 0..=100 sweep.
        // Guards the midpoint-interpolation rule against any bucket whose
        // midpoint could cross a neighbour after counts are combined.
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        ha.merge(&hb);
        let mut last = 0u64;
        for p in 0..=100 {
            let v = ha.percentile(p as f64);
            prop_assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
        if !ha.is_empty() {
            prop_assert_eq!(ha.percentile(0.0), ha.min());
            prop_assert_eq!(ha.percentile(100.0), ha.max());
        }
    }

    #[test]
    fn count_and_mean_are_exact(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact_mean = sum as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6);
    }
}
