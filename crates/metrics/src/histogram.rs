//! Log-bucketed latency histogram.
//!
//! Values (nanoseconds, microseconds — any u64 unit) are assigned to buckets
//! whose width grows geometrically: each power-of-two range is split into
//! `1 << precision_bits` linear sub-buckets, bounding the relative
//! quantization error at `2^-precision_bits`. With the default 7 precision
//! bits the error is < 0.79% and the whole histogram is ~64 KiB — cheap
//! enough that every worker thread records into its own histogram and the
//! recorder merges them at the end (no cross-thread contention on the
//! benchmark hot path, which matters for experiment E1's thread sweep).

use chronos_json::{obj, Value};

const SUB_BUCKET_BITS: u32 = 7;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 128
/// Number of power-of-two ranges needed to cover u64.
const RANGES: usize = 64 - SUB_BUCKET_BITS as usize + 1;

/// A mergeable log-bucketed histogram of `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; RANGES * SUB_BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUB_BUCKET_BITS {
            // Values below 2^SUB_BUCKET_BITS map 1:1 into the first range.
            return value as usize;
        }
        let range = (msb - SUB_BUCKET_BITS + 1) as usize;
        let shift = range as u32;
        let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
        range * SUB_BUCKETS + sub
    }

    /// Lowest value that maps to `index`'s bucket.
    fn bucket_low(index: usize) -> u64 {
        let range = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if range == 0 {
            return sub;
        }
        // Range r >= 1 covers [2^(bits+r-1), 2^(bits+r)); stored sub-bucket
        // values keep the implicit high bit (sub in [SUB_BUCKETS/2, SUB_BUCKETS)),
        // so the lower bound is simply `sub << r`.
        sub << range
    }

    /// Number of distinct values covered by `index`'s bucket (1 in the
    /// exact first range, `2^r` in range `r`).
    fn bucket_width(index: usize) -> u64 {
        let range = index / SUB_BUCKETS;
        1u64 << range
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `count` identical observations.
    pub fn record_n(&mut self, value: u64, count: u64) {
        self.counts[Self::bucket_index(value)] += count;
        self.total += count;
        self.sum += value as u128 * count as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` (0.0 ..= 1.0), with the histogram's bounded
    /// relative error. Returns 0 when empty.
    ///
    /// Interpolation rule (frozen, tested): the target rank is
    /// `ceil(q * count)` (clamped to at least 1); `q == 0.0` returns the
    /// exact observed minimum and `q >= 1.0` the exact observed maximum;
    /// every interior quantile returns the **midpoint** of the sub-bucket
    /// holding the rank'th observation, clamped to `[min, max]`. In the
    /// first range sub-buckets have width 1, so small values are exact;
    /// wider buckets report their center rather than their lower bound,
    /// which keeps the error symmetric (±2^-(bits+1)) instead of a
    /// systematic downward bias. Duplicate-heavy histograms benefit the
    /// most: when every observation is the same value `v`, the clamp
    /// collapses the bucket to `[v, v]` and all quantiles report exactly
    /// `v` — previously interior quantiles under-reported by up to 0.79%.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let mid = Self::bucket_low(i) + Self::bucket_width(i) / 2;
                // Clamp to observed extremes: a bucket only partially
                // covered by the data must not report values outside it.
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience percentile accessor (`p` in 0..=100).
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// Summarizes the histogram as a JSON object with the standard Chronos
    /// latency fields (values in the unit that was recorded).
    pub fn to_json(&self) -> Value {
        obj! {
            "count" => self.count(),
            "min" => self.min(),
            "mean" => self.mean(),
            "p50" => self.quantile(0.50),
            "p90" => self.quantile(0.90),
            "p95" => self.quantile(0.95),
            "p99" => self.quantile(0.99),
            "p999" => self.quantile(0.999),
            "max" => self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
        // Rank convention: quantile(q) = value at rank ceil(q*n), so the
        // median of 0..=99 is the 50th observation, value 49.
        assert_eq!(h.quantile(0.5), 49);
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn large_values_have_bounded_error() {
        let mut h = Histogram::new();
        let values = [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000];
        for &v in &values {
            h.record(v);
        }
        for (i, &v) in values.iter().enumerate() {
            let q = (i as f64 + 1.0) / values.len() as f64;
            let got = h.quantile(q) as f64;
            let err = (got - v as f64).abs() / v as f64;
            assert!(err < 0.01, "value {v}: got {got}, relative error {err}");
        }
    }

    #[test]
    fn quantiles_are_monotonic() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        let mut last = 0;
        for p in 0..=100 {
            let v = h.percentile(p as f64);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = Histogram::new();
        h.record(12_345);
        h.record(99_999_999);
        assert_eq!(h.quantile(0.0), 12_345.max(h.min()));
        assert_eq!(h.min(), 12_345);
        assert_eq!(h.max(), 99_999_999);
        assert!(h.quantile(1.0) <= 99_999_999);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..1_000u64 {
            let v = i * i % 500_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile(p), combined.percentile(p));
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(777, 5);
        let mut b = Histogram::new();
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn json_summary_has_standard_fields() {
        let mut h = Histogram::new();
        h.record(10);
        let j = h.to_json();
        for field in ["count", "min", "mean", "p50", "p90", "p95", "p99", "p999", "max"] {
            assert!(j.get(field).is_some(), "missing {field}");
        }
        assert_eq!(j.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn duplicate_heavy_single_value_is_exact_at_every_quantile() {
        // A histogram holding one repeated value must report that exact
        // value everywhere: the [min, max] clamp collapses the bucket.
        // 1_000_003 is deliberately not a bucket boundary.
        let mut h = Histogram::new();
        h.record_n(1_000_003, 1_000_000);
        for p in [0.0, 0.1, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 1_000_003, "p{p}");
        }
    }

    #[test]
    fn duplicate_heavy_two_values_stay_within_observed_range() {
        // 99.9% of mass at `low`, a single outlier at `high`: interior
        // quantiles must stay inside [low, high] and within the bucket's
        // half-width of `low`; the extremes are exact.
        let (low, high) = (12_347u64, 99_999_999u64);
        let mut h = Histogram::new();
        h.record_n(low, 9_990);
        h.record(high);
        assert_eq!(h.quantile(0.0), low);
        assert_eq!(h.quantile(1.0), high);
        for p in [10.0, 50.0, 99.0] {
            let got = h.percentile(p);
            assert!(got >= low && got < high, "p{p}: {got}");
            // Midpoint rule: at most half a bucket width away (< 2^-8).
            let err = (got as f64 - low as f64).abs() / low as f64;
            assert!(err < 0.004, "p{p}: {got}, relative error {err}");
        }
    }

    #[test]
    fn interior_quantiles_use_bucket_midpoints() {
        // 12_345 sits in a width-128 bucket [12_288, 12_416); with other
        // mass on both sides the interior quantile reports the midpoint
        // 12_352, not the old downward-biased lower bound 12_288.
        let mut h = Histogram::new();
        h.record(1);
        h.record_n(12_345, 8);
        h.record(99_999_999);
        assert_eq!(h.quantile(0.5), 12_352);
    }

    #[test]
    fn handles_u64_extremes_without_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let _ = h.quantile(0.99);
    }
}
