//! Per-run measurement collection and the uploaded summary.
//!
//! A [`Recorder`] lives on one worker thread (no locks on the hot path);
//! per-thread recorders are merged into a [`RunSummary`], which is the
//! JSON document every Chronos agent attaches to its job result.

use std::time::Instant;

use chronos_json::{obj, Map, Value};

use crate::{Histogram, Timeseries};

/// Statistics for one operation type (e.g. `read`, `update`, `insert`).
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Latency histogram in microseconds.
    pub latency_micros: Histogram,
    /// Operations that returned an error.
    pub errors: u64,
}

/// Collects measurements on a single worker thread.
#[derive(Debug)]
pub struct Recorder {
    ops: Vec<(String, OpStats)>,
    throughput: Timeseries,
    started: Instant,
}

impl Recorder {
    /// Creates a recorder; the run clock starts now. Throughput windows are
    /// one second wide.
    pub fn new() -> Self {
        Recorder { ops: Vec::new(), throughput: Timeseries::new(1000), started: Instant::now() }
    }

    fn stats_mut(&mut self, op: &str) -> &mut OpStats {
        if let Some(idx) = self.ops.iter().position(|(name, _)| name == op) {
            return &mut self.ops[idx].1;
        }
        self.ops.push((op.to_string(), OpStats::default()));
        &mut self.ops.last_mut().expect("just pushed").1
    }

    /// Records a successful operation with the given latency in microseconds.
    pub fn record_success(&mut self, op: &str, latency_micros: u64) {
        let elapsed = self.started.elapsed().as_millis() as u64;
        self.stats_mut(op).latency_micros.record(latency_micros);
        self.throughput.record_at(elapsed, 1);
    }

    /// Records a failed operation.
    pub fn record_error(&mut self, op: &str) {
        self.stats_mut(op).errors += 1;
    }

    /// Times `f` and records it under `op`, propagating its result.
    pub fn time<T, E>(&mut self, op: &str, f: impl FnOnce() -> Result<T, E>) -> Result<T, E> {
        let start = Instant::now();
        match f() {
            Ok(v) => {
                self.record_success(op, start.elapsed().as_micros() as u64);
                Ok(v)
            }
            Err(e) => {
                self.record_error(op);
                Err(e)
            }
        }
    }

    /// Total successful operations across all types.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.latency_micros.count()).sum()
    }

    /// Finalizes this recorder into a summary.
    pub fn into_summary(self) -> RunSummary {
        RunSummary {
            wall_millis: self.started.elapsed().as_millis() as u64,
            ops: self.ops,
            throughput: self.throughput,
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The merged, finalized measurements of a benchmark run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Wall-clock duration of the run in milliseconds.
    pub wall_millis: u64,
    ops: Vec<(String, OpStats)>,
    throughput: Timeseries,
}

impl RunSummary {
    /// Merges per-thread summaries. Wall time is the maximum across threads
    /// (they ran concurrently); counts and histograms are added.
    pub fn merge_all(summaries: Vec<RunSummary>) -> RunSummary {
        let mut merged =
            RunSummary { wall_millis: 0, ops: Vec::new(), throughput: Timeseries::new(1000) };
        for summary in summaries {
            merged.wall_millis = merged.wall_millis.max(summary.wall_millis);
            merged.throughput.merge(&summary.throughput);
            for (name, stats) in summary.ops {
                match merged.ops.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, existing)) => {
                        existing.latency_micros.merge(&stats.latency_micros);
                        existing.errors += stats.errors;
                    }
                    None => merged.ops.push((name, stats)),
                }
            }
        }
        merged
    }

    /// Total successful operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.latency_micros.count()).sum()
    }

    /// Total failed operations.
    pub fn total_errors(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.errors).sum()
    }

    /// Overall throughput in operations/second. Sub-millisecond runs are
    /// clamped to 1 ms so very fast benchmark configurations report a
    /// finite (conservative) rate instead of zero.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.total_ops() == 0 {
            return 0.0;
        }
        self.total_ops() as f64 * 1000.0 / self.wall_millis.max(1) as f64
    }

    /// Stats for one operation type, if present.
    pub fn op(&self, name: &str) -> Option<&OpStats> {
        self.ops.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Operation type names in first-recorded order.
    pub fn op_names(&self) -> Vec<&str> {
        self.ops.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The per-second throughput series.
    pub fn throughput_series(&self) -> &Timeseries {
        &self.throughput
    }

    /// The standard Chronos result-measurement document:
    ///
    /// ```json
    /// {
    ///   "wall_millis": ..., "total_ops": ..., "total_errors": ...,
    ///   "throughput_ops_per_sec": ...,
    ///   "operations": {"read": {"latency_micros": {...}, "errors": 0}, ...},
    ///   "throughput_series": {...}
    /// }
    /// ```
    pub fn to_json(&self) -> Value {
        let mut operations = Map::new();
        for (name, stats) in &self.ops {
            operations.insert(
                name.clone(),
                obj! {
                    "latency_micros" => stats.latency_micros.to_json(),
                    "errors" => stats.errors,
                },
            );
        }
        obj! {
            "wall_millis" => self.wall_millis,
            "total_ops" => self.total_ops(),
            "total_errors" => self.total_errors(),
            "throughput_ops_per_sec" => self.throughput_ops_per_sec(),
            "operations" => Value::Object(operations),
            "throughput_series" => self.throughput.to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut r = Recorder::new();
        r.record_success("read", 100);
        r.record_success("read", 200);
        r.record_success("update", 300);
        r.record_error("update");
        let s = r.into_summary();
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.total_errors(), 1);
        assert_eq!(s.op("read").unwrap().latency_micros.count(), 2);
        assert_eq!(s.op("update").unwrap().errors, 1);
        assert!(s.op("scan").is_none());
        assert_eq!(s.op_names(), vec!["read", "update"]);
    }

    #[test]
    fn time_helper_records_both_outcomes() {
        let mut r = Recorder::new();
        let ok: Result<u32, ()> = r.time("op", || Ok(42));
        assert_eq!(ok, Ok(42));
        let err: Result<(), &str> = r.time("op", || Err("boom"));
        assert_eq!(err, Err("boom"));
        let s = r.into_summary();
        assert_eq!(s.total_ops(), 1);
        assert_eq!(s.total_errors(), 1);
    }

    #[test]
    fn merge_combines_threads() {
        let mk = |n: u64| {
            let mut r = Recorder::new();
            for i in 0..n {
                r.record_success("read", 50 + i);
            }
            r.into_summary()
        };
        let merged = RunSummary::merge_all(vec![mk(10), mk(20), mk(30)]);
        assert_eq!(merged.total_ops(), 60);
        assert_eq!(merged.op("read").unwrap().latency_micros.count(), 60);
    }

    #[test]
    fn throughput_computation() {
        let mut r = Recorder::new();
        for _ in 0..100 {
            r.record_success("read", 10);
        }
        let mut s = r.into_summary();
        s.wall_millis = 2_000; // pretend the run took 2 seconds
        assert_eq!(s.throughput_ops_per_sec(), 50.0);
    }

    #[test]
    fn zero_wall_time_is_clamped_to_one_milli() {
        let mut r = Recorder::new();
        r.record_success("read", 1);
        let mut s = r.into_summary();
        s.wall_millis = 0;
        assert_eq!(s.throughput_ops_per_sec(), 1000.0);
        // With zero ops the rate is genuinely zero.
        let empty = Recorder::new().into_summary();
        assert_eq!(empty.throughput_ops_per_sec(), 0.0);
    }

    #[test]
    fn json_document_shape() {
        let mut r = Recorder::new();
        r.record_success("insert", 500);
        let s = r.into_summary();
        let j = s.to_json();
        assert_eq!(j.pointer("/total_ops").and_then(Value::as_u64), Some(1));
        assert!(j.pointer("/operations/insert/latency_micros/p99").is_some());
        assert!(j.pointer("/throughput_series/window_millis").is_some());
    }
}
