//! Measurement infrastructure for Chronos agents.
//!
//! The paper (§2.2) notes that the agent library "already measures basic
//! metrics which are returned to Chronos Control along with the results".
//! This crate is that measurement library:
//!
//! * [`Histogram`] — a log-bucketed latency histogram (HDR-style: bounded
//!   relative error, constant memory, mergeable across worker threads).
//! * [`Timeseries`] — fixed-window throughput over the run, powering the
//!   progress/throughput plots of the result page.
//! * [`Recorder`] / [`RunSummary`] — per-operation-type collection during a
//!   benchmark run and the JSON summary uploaded with every job result.
//! * [`Counter`] / [`Gauge`] — lock-free event counts and levels for
//!   control-plane health metrics (shed requests, in-flight connections).
//!
//! All types convert to [`chronos_json::Value`] so agents can embed them
//! directly in result documents.

mod counters;
mod histogram;
mod recorder;
mod timeseries;

pub use counters::{Counter, Gauge};
pub use histogram::Histogram;
pub use recorder::{OpStats, Recorder, RunSummary};
pub use timeseries::Timeseries;
