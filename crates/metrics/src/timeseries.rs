//! Fixed-window throughput time series.
//!
//! The job detail page (paper Fig. 3c) shows run progress over time; agents
//! feed it by bucketing completed operations into fixed windows and
//! reporting the series with the result. Windows are indexed from the start
//! of the run, so merging series from concurrent worker threads is a
//! per-window addition.

use chronos_json::{arr, obj, Value};

/// Counts events into fixed windows offset from a run start time.
#[derive(Debug, Clone)]
pub struct Timeseries {
    window_millis: u64,
    counts: Vec<u64>,
}

impl Timeseries {
    /// Creates a series with the given window width in milliseconds.
    ///
    /// # Panics
    /// Panics if `window_millis` is zero.
    pub fn new(window_millis: u64) -> Self {
        assert!(window_millis > 0, "window width must be positive");
        Timeseries { window_millis, counts: Vec::new() }
    }

    /// Window width in milliseconds.
    pub fn window_millis(&self) -> u64 {
        self.window_millis
    }

    /// Records `count` events at `elapsed_millis` since the run started.
    pub fn record_at(&mut self, elapsed_millis: u64, count: u64) {
        let idx = (elapsed_millis / self.window_millis) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
    }

    /// Number of windows with data (including interior zero windows).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total events across all windows.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events in window `idx`.
    pub fn count_at(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Per-window throughput in events/second.
    pub fn rates_per_second(&self) -> Vec<f64> {
        let scale = 1000.0 / self.window_millis as f64;
        self.counts.iter().map(|&c| c as f64 * scale).collect()
    }

    /// Merges another series (same window width) into this one.
    ///
    /// # Panics
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &Timeseries) {
        assert_eq!(
            self.window_millis, other.window_millis,
            "cannot merge series with different window widths"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// JSON rendering: `{window_millis, counts: [...]}`.
    pub fn to_json(&self) -> Value {
        obj! {
            "window_millis" => self.window_millis,
            "counts" => Value::Array(self.counts.iter().map(|&c| Value::from(c)).collect()),
            "rates_per_second" => {
                let mut rates = arr![];
                if let Value::Array(items) = &mut rates {
                    items.extend(self.rates_per_second().into_iter().map(Value::from));
                }
                rates
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_windows() {
        let mut ts = Timeseries::new(1000);
        ts.record_at(0, 1);
        ts.record_at(999, 1);
        ts.record_at(1000, 1);
        ts.record_at(5500, 2);
        assert_eq!(ts.len(), 6);
        assert_eq!(ts.count_at(0), 2);
        assert_eq!(ts.count_at(1), 1);
        assert_eq!(ts.count_at(4), 0);
        assert_eq!(ts.count_at(5), 2);
        assert_eq!(ts.total(), 5);
    }

    #[test]
    fn rates_scale_with_window() {
        let mut ts = Timeseries::new(500);
        ts.record_at(0, 100);
        assert_eq!(ts.rates_per_second()[0], 200.0);
    }

    #[test]
    fn merge_adds_windows() {
        let mut a = Timeseries::new(1000);
        a.record_at(0, 5);
        let mut b = Timeseries::new(1000);
        b.record_at(0, 3);
        b.record_at(2500, 7);
        a.merge(&b);
        assert_eq!(a.count_at(0), 8);
        assert_eq!(a.count_at(2), 7);
        assert_eq!(a.total(), 15);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merge_rejects_mismatched_windows() {
        let mut a = Timeseries::new(1000);
        a.merge(&Timeseries::new(500));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_rejected() {
        let _ = Timeseries::new(0);
    }

    #[test]
    fn json_shape() {
        let mut ts = Timeseries::new(1000);
        ts.record_at(100, 4);
        let j = ts.to_json();
        assert_eq!(j.pointer("/window_millis").and_then(Value::as_u64), Some(1000));
        assert_eq!(j.pointer("/counts/0").and_then(Value::as_u64), Some(4));
        assert_eq!(j.pointer("/rates_per_second/0").and_then(Value::as_f64), Some(4.0));
    }

    #[test]
    fn empty_series() {
        let ts = Timeseries::new(100);
        assert!(ts.is_empty());
        assert_eq!(ts.total(), 0);
        assert!(ts.rates_per_second().is_empty());
    }
}
