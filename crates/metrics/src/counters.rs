//! Lock-free counters and gauges for control-plane health metrics.
//!
//! The latency [`Histogram`](crate::Histogram) answers "how slow"; these
//! answer "how many" and "how many right now": requests accepted, requests
//! shed, connections in flight. They sit on the HTTP server's accept path,
//! so every operation is a single relaxed atomic instruction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can rise and fall (e.g. in-flight
/// connections). Signed internally so a racing decrement can transiently
/// undershoot without wrapping; reads clamp at zero.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright (sampled gauges: replication lag, cluster
    /// term — values observed rather than counted).
    pub fn set(&self, level: u64) {
        self.0.store(level.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    /// Current level, clamped at zero.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_rises_and_falls() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // transient undershoot must not wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
