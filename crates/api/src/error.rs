//! Typed decode/validation errors for the wire contract.
//!
//! Every variant renders to the exact message the hand-rolled handlers used
//! to produce, so tightening the contract does not shift the error bodies
//! that existing clients (and the golden fixtures) observe.

use std::fmt;

/// A request failed to decode or validate against the typed contract.
///
/// All variants map to HTTP 400; the server wraps the rendered message in
/// the standard [`crate::ErrorEnvelope`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A required field is absent (or present but `null`).
    Missing(&'static str),
    /// A required field of a specific JSON type is absent or ill-typed.
    /// Renders as `missing <ty> "<field>"` (legacy handler phrasing).
    MissingTyped { field: &'static str, ty: &'static str },
    /// A field is present but its value does not parse (ids, base64, enums).
    /// Renders as `bad <field>` (legacy handler phrasing).
    BadField(&'static str),
    /// A field is present but has the wrong JSON type or is out of range.
    OutOfRange { field: &'static str, expected: &'static str },
    /// A path parameter did not parse as an id. Renders `invalid :<name> id`.
    BadPathParam(&'static str),
    /// The request body is not valid JSON.
    MalformedBody(String),
    /// Free-form validation failure (message rendered verbatim).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Missing(field) => write!(f, "missing field {field:?}"),
            WireError::MissingTyped { field, ty } => write!(f, "missing {ty} {field:?}"),
            WireError::BadField(field) => write!(f, "bad {field}"),
            WireError::OutOfRange { field, expected } => {
                write!(f, "field {field:?} must be {expected}")
            }
            WireError::BadPathParam(name) => write!(f, "invalid :{name} id"),
            WireError::MalformedBody(detail) => write!(f, "bad JSON body: {detail}"),
            WireError::Invalid(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_legacy_handler_strings() {
        assert_eq!(WireError::Missing("username").to_string(), "missing field \"username\"");
        assert_eq!(
            WireError::MissingTyped { field: "active", ty: "boolean" }.to_string(),
            "missing boolean \"active\""
        );
        assert_eq!(WireError::BadField("deployment_id").to_string(), "bad deployment_id");
        assert_eq!(WireError::BadPathParam("job_id").to_string(), "invalid :job_id id");
        assert_eq!(
            WireError::MalformedBody("unexpected end of input".into()).to_string(),
            "bad JSON body: unexpected end of input"
        );
    }
}
