//! The typed error envelope: `{"error":{"code":...,"message":...}}`.
//!
//! Two code shapes exist on the wire today and both are preserved:
//! numeric codes mirror the HTTP status (`{"code":400,...}`), while named
//! codes carry protocol-level conditions (`{"code":"lease_lost",...}`).

use crate::codec::{WireDecode, WireEncode};
use crate::error::WireError;
use chronos_json::{obj, Value};

/// The named code a control server sends when a fencing check rejects a
/// stale agent (HTTP 409 + this code distinguishes lease loss from ordinary
/// conflicts).
pub const CODE_LEASE_LOST: &str = "lease_lost";

/// Named code on `429` responses shed by admission control (the string
/// constant lives in `chronos-http` because the server emits the envelope
/// from its accept thread, below this crate; re-exported here as the
/// contract's source of truth).
pub const CODE_OVERLOADED: &str = chronos_http::CODE_OVERLOADED;

/// Named code on `503` responses refused while the server drains.
pub const CODE_DRAINING: &str = chronos_http::CODE_DRAINING;

/// Named code on `504` responses whose deadline budget ran out server-side.
pub const CODE_DEADLINE_EXCEEDED: &str = chronos_http::CODE_DEADLINE_EXCEEDED;

/// Named code a cluster node sends when it cannot serve the request in its
/// current role: writes on a follower/candidate, or follower reads past the
/// staleness bound. The envelope's `leader` field, when present, carries
/// the base URL of the node currently believed to lead — clients re-aim
/// there instead of guessing.
pub const CODE_NOT_LEADER: &str = "not_leader";

/// An error code: the HTTP status echoed numerically, or a named
/// protocol condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    Status(u16),
    Named(String),
}

/// The standard error body for every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorEnvelope {
    pub code: ErrorCode,
    pub message: String,
    /// Leader base-URL hint, only on `not_leader` refusals from cluster
    /// followers. Omitted from the wire when absent, so every pre-cluster
    /// envelope body is byte-identical to before.
    pub leader: Option<String>,
}

impl ErrorEnvelope {
    /// An envelope echoing the HTTP status numerically.
    pub fn status(status: u16, message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Status(status), message: message.into(), leader: None }
    }

    /// An envelope with a named protocol code.
    pub fn named(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Named(code.into()), message: message.into(), leader: None }
    }

    /// The wrong-role refusal from a cluster node (sent with HTTP 503),
    /// carrying the current leader's base URL when this node knows one
    /// (mid-election there is no leader to point at).
    pub fn not_leader(message: impl Into<String>, leader: Option<String>) -> Self {
        Self { code: ErrorCode::Named(CODE_NOT_LEADER.into()), message: message.into(), leader }
    }

    /// The lease-lost envelope (sent with HTTP 409).
    pub fn lease_lost(message: impl Into<String>) -> Self {
        Self::named(CODE_LEASE_LOST, message)
    }

    /// The admission-control shed envelope (sent with HTTP 429).
    pub fn overloaded(message: impl Into<String>) -> Self {
        Self::named(CODE_OVERLOADED, message)
    }

    /// The graceful-drain refusal envelope (sent with HTTP 503).
    pub fn draining(message: impl Into<String>) -> Self {
        Self::named(CODE_DRAINING, message)
    }

    /// The deadline-budget-exhausted envelope (sent with HTTP 504).
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        Self::named(CODE_DEADLINE_EXCEEDED, message)
    }

    /// Whether this envelope signals a lost lease / stale fencing token.
    pub fn is_lease_lost(&self) -> bool {
        matches!(&self.code, ErrorCode::Named(code) if code == CODE_LEASE_LOST)
    }

    /// Whether this envelope signals a transient overload condition the
    /// client should retry after backing off: shed by admission control or
    /// refused during a drain (a draining server's peer is usually seconds
    /// from taking over).
    pub fn is_retryable_overload(&self) -> bool {
        matches!(
            &self.code,
            ErrorCode::Named(code) if code == CODE_OVERLOADED || code == CODE_DRAINING
        )
    }

    /// Whether this envelope signals an exhausted deadline budget.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(&self.code, ErrorCode::Named(code) if code == CODE_DEADLINE_EXCEEDED)
    }

    /// Whether this envelope is a cluster wrong-role refusal the client
    /// should retry against the leader (the hint, when present).
    pub fn is_not_leader(&self) -> bool {
        matches!(&self.code, ErrorCode::Named(code) if code == CODE_NOT_LEADER)
    }

    /// The leader base-URL hint on a `not_leader` envelope, if the
    /// refusing node knows who leads.
    pub fn leader_hint(&self) -> Option<&str> {
        self.leader.as_deref()
    }
}

impl WireEncode for ErrorEnvelope {
    fn to_value(&self) -> Value {
        let code = match &self.code {
            ErrorCode::Status(status) => Value::from(*status as i64),
            ErrorCode::Named(name) => Value::from(name.clone()),
        };
        let mut inner = obj! {
            "code" => code,
            "message" => self.message.clone(),
        };
        if let (Value::Object(map), Some(leader)) = (&mut inner, &self.leader) {
            map.insert("leader".into(), Value::from(leader.clone()));
        }
        obj! { "error" => inner }
    }
}

impl WireDecode for ErrorEnvelope {
    /// Tolerant decode: accepts either code shape; a missing message falls
    /// back to the empty string so transports can still surface the status.
    fn decode(value: &Value) -> Result<Self, WireError> {
        let inner = value.get("error").ok_or(WireError::Missing("error"))?;
        let code = match inner.get("code") {
            Some(v) => {
                if let Some(n) = v.as_u64() {
                    ErrorCode::Status(n.min(u16::MAX as u64) as u16)
                } else if let Some(s) = v.as_str() {
                    ErrorCode::Named(s.to_string())
                } else {
                    return Err(WireError::BadField("error.code"));
                }
            }
            None => return Err(WireError::Missing("error.code")),
        };
        let message = crate::codec::str_or(inner, "message", "");
        let leader = inner.get("leader").and_then(Value::as_str).map(str::to_string);
        Ok(Self { code, message, leader })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_code_encodes_as_integer() {
        let body = ErrorEnvelope::status(400, "missing field \"username\"").encode();
        assert_eq!(
            body,
            "{\"error\":{\"code\":400,\"message\":\"missing field \\\"username\\\"\"}}"
        );
    }

    #[test]
    fn named_code_encodes_as_string() {
        let body = ErrorEnvelope::lease_lost("heartbeat rejected: stale attempt").encode();
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"lease_lost\",\"message\":\"heartbeat rejected: stale attempt\"}}"
        );
    }

    #[test]
    fn overload_codes_roundtrip_and_classify() {
        let shed = ErrorEnvelope::overloaded("queue full");
        assert_eq!(
            shed.encode(),
            "{\"error\":{\"code\":\"overloaded\",\"message\":\"queue full\"}}"
        );
        assert!(shed.is_retryable_overload());
        let draining = ErrorEnvelope::draining("shutting down");
        assert!(draining.is_retryable_overload());
        let deadline = ErrorEnvelope::deadline_exceeded("budget spent");
        assert!(deadline.is_deadline_exceeded());
        assert!(!deadline.is_retryable_overload(), "a spent budget must not be blindly retried");
        assert!(!ErrorEnvelope::status(503, "plain 503").is_retryable_overload());
        for envelope in [shed, draining, deadline] {
            assert_eq!(ErrorEnvelope::decode(&envelope.to_value()).unwrap(), envelope);
        }
    }

    #[test]
    fn shed_path_and_contract_agree_on_the_wire_shape() {
        // The accept thread sheds via chronos_http::Response::error_named —
        // that body must decode into the same typed envelope this crate
        // defines, or agents would see untyped errors exactly when the
        // server is too loaded to be polite.
        let response = chronos_http::Response::error_named(
            chronos_http::Status::TOO_MANY_REQUESTS,
            CODE_OVERLOADED,
            "connection limit reached",
        );
        let decoded = ErrorEnvelope::decode(&response.json_body().unwrap()).unwrap();
        assert_eq!(decoded, ErrorEnvelope::overloaded("connection limit reached"));
    }

    #[test]
    fn not_leader_carries_an_optional_hint() {
        let hinted =
            ErrorEnvelope::not_leader("writes go to the leader", Some("http://n2:8080".into()));
        assert_eq!(
            hinted.encode(),
            "{\"error\":{\"code\":\"not_leader\",\"message\":\"writes go to the leader\",\
             \"leader\":\"http://n2:8080\"}}"
        );
        assert!(hinted.is_not_leader());
        assert_eq!(hinted.leader_hint(), Some("http://n2:8080"));
        assert!(!hinted.is_retryable_overload(), "not_leader re-aims, it does not blind-retry");
        let decoded = ErrorEnvelope::decode(&hinted.to_value()).unwrap();
        assert_eq!(decoded, hinted);
        // Mid-election: no hint, and the wire omits the field entirely.
        let unhinted = ErrorEnvelope::not_leader("election in progress", None);
        assert_eq!(
            unhinted.encode(),
            "{\"error\":{\"code\":\"not_leader\",\"message\":\"election in progress\"}}"
        );
        assert_eq!(ErrorEnvelope::decode(&unhinted.to_value()).unwrap().leader_hint(), None);
    }

    #[test]
    fn decode_roundtrips_both_shapes() {
        for envelope in [
            ErrorEnvelope::status(404, "no such job"),
            ErrorEnvelope::lease_lost("claim rejected: job re-scheduled"),
        ] {
            let decoded = ErrorEnvelope::decode(&envelope.to_value()).unwrap();
            assert_eq!(decoded, envelope);
        }
        assert!(ErrorEnvelope::lease_lost("x").is_lease_lost());
        assert!(!ErrorEnvelope::status(409, "x").is_lease_lost());
    }
}
