//! The typed error envelope: `{"error":{"code":...,"message":...}}`.
//!
//! Two code shapes exist on the wire today and both are preserved:
//! numeric codes mirror the HTTP status (`{"code":400,...}`), while named
//! codes carry protocol-level conditions (`{"code":"lease_lost",...}`).

use crate::codec::{WireDecode, WireEncode};
use crate::error::WireError;
use chronos_json::{obj, Value};

/// The named code a control server sends when a fencing check rejects a
/// stale agent (HTTP 409 + this code distinguishes lease loss from ordinary
/// conflicts).
pub const CODE_LEASE_LOST: &str = "lease_lost";

/// An error code: the HTTP status echoed numerically, or a named
/// protocol condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    Status(u16),
    Named(String),
}

/// The standard error body for every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorEnvelope {
    pub code: ErrorCode,
    pub message: String,
}

impl ErrorEnvelope {
    /// An envelope echoing the HTTP status numerically.
    pub fn status(status: u16, message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Status(status), message: message.into() }
    }

    /// An envelope with a named protocol code.
    pub fn named(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Named(code.into()), message: message.into() }
    }

    /// The lease-lost envelope (sent with HTTP 409).
    pub fn lease_lost(message: impl Into<String>) -> Self {
        Self::named(CODE_LEASE_LOST, message)
    }

    /// Whether this envelope signals a lost lease / stale fencing token.
    pub fn is_lease_lost(&self) -> bool {
        matches!(&self.code, ErrorCode::Named(code) if code == CODE_LEASE_LOST)
    }
}

impl WireEncode for ErrorEnvelope {
    fn to_value(&self) -> Value {
        let code = match &self.code {
            ErrorCode::Status(status) => Value::from(*status as i64),
            ErrorCode::Named(name) => Value::from(name.clone()),
        };
        obj! {
            "error" => obj! {
                "code" => code,
                "message" => self.message.clone(),
            },
        }
    }
}

impl WireDecode for ErrorEnvelope {
    /// Tolerant decode: accepts either code shape; a missing message falls
    /// back to the empty string so transports can still surface the status.
    fn decode(value: &Value) -> Result<Self, WireError> {
        let inner = value.get("error").ok_or(WireError::Missing("error"))?;
        let code = match inner.get("code") {
            Some(v) => {
                if let Some(n) = v.as_u64() {
                    ErrorCode::Status(n.min(u16::MAX as u64) as u16)
                } else if let Some(s) = v.as_str() {
                    ErrorCode::Named(s.to_string())
                } else {
                    return Err(WireError::BadField("error.code"));
                }
            }
            None => return Err(WireError::Missing("error.code")),
        };
        let message = crate::codec::str_or(inner, "message", "");
        Ok(Self { code, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_code_encodes_as_integer() {
        let body = ErrorEnvelope::status(400, "missing field \"username\"").encode();
        assert_eq!(
            body,
            "{\"error\":{\"code\":400,\"message\":\"missing field \\\"username\\\"\"}}"
        );
    }

    #[test]
    fn named_code_encodes_as_string() {
        let body = ErrorEnvelope::lease_lost("heartbeat rejected: stale attempt").encode();
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"lease_lost\",\"message\":\"heartbeat rejected: stale attempt\"}}"
        );
    }

    #[test]
    fn decode_roundtrips_both_shapes() {
        for envelope in [
            ErrorEnvelope::status(404, "no such job"),
            ErrorEnvelope::lease_lost("claim rejected: job re-scheduled"),
        ] {
            let decoded = ErrorEnvelope::decode(&envelope.to_value()).unwrap();
            assert_eq!(decoded, envelope);
        }
        assert!(ErrorEnvelope::lease_lost("x").is_lease_lost());
        assert!(!ErrorEnvelope::status(409, "x").is_lease_lost());
    }
}
