//! Typed extractors bridging `chronos-http` requests to the contract.
//!
//! Handlers call these instead of poking at `Value` trees: a missing or
//! ill-typed required field surfaces as a [`WireError`] (HTTP 400) rather
//! than a silent default.

use crate::codec::WireDecode;
use crate::error::WireError;
use chronos_http::{Request, RouteParams};
use chronos_json::Value;
use chronos_util::Id;

/// Parses the request body as JSON (no shape validation).
pub fn json_body(req: &Request) -> Result<Value, WireError> {
    req.json().map_err(|e| WireError::MalformedBody(e.to_string()))
}

/// Parses and decodes the request body as a typed DTO.
pub fn body<T: WireDecode>(req: &Request) -> Result<T, WireError> {
    T::decode(&json_body(req)?)
}

/// A path parameter that must be an entity id.
pub fn path_id(params: &RouteParams, name: &'static str) -> Result<Id, WireError> {
    params.get(name).and_then(|s| Id::parse_base32(s).ok()).ok_or(WireError::BadPathParam(name))
}

/// A raw string path parameter (always present once the route matched).
pub fn path_str<'p>(params: &'p RouteParams, name: &'static str) -> Result<&'p str, WireError> {
    params.get(name).ok_or(WireError::BadPathParam(name))
}
