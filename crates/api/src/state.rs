//! Job lifecycle states — the wire vocabulary shared by server, agent and
//! scheduler. Transition *legality* lives in `chronos-core::lifecycle`; this
//! module only owns the names that cross the wire.

/// Job lifecycle states (paper §2.1): "scheduled, running, finished,
/// aborted, or failed. Jobs which are in the status scheduled or running can
/// be aborted and those which are failed can be re-scheduled."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Waiting for an agent.
    Scheduled,
    /// Claimed by an agent and executing.
    Running,
    /// Completed with a result.
    Finished,
    /// Cancelled by a user.
    Aborted,
    /// Crashed, errored, or timed out.
    Failed,
    /// Failed `max_attempts` times; removed from scheduling for good.
    Quarantined,
}

impl JobState {
    /// Every state, in the canonical roll-up order used by status bodies.
    pub const ALL: [JobState; 6] = [
        JobState::Scheduled,
        JobState::Running,
        JobState::Finished,
        JobState::Aborted,
        JobState::Failed,
        JobState::Quarantined,
    ];

    /// The lowercase state name used in the API.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Scheduled => "scheduled",
            JobState::Running => "running",
            JobState::Finished => "finished",
            JobState::Aborted => "aborted",
            JobState::Failed => "failed",
            JobState::Quarantined => "quarantined",
        }
    }

    /// Parses the lowercase state name.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "scheduled" => Some(JobState::Scheduled),
            "running" => Some(JobState::Running),
            "finished" => Some(JobState::Finished),
            "aborted" => Some(JobState::Aborted),
            "failed" => Some(JobState::Failed),
            "quarantined" => Some(JobState::Quarantined),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for state in JobState::ALL {
            assert_eq!(JobState::parse(state.as_str()), Some(state));
        }
        assert_eq!(JobState::parse("limbo"), None);
    }
}
