//! Explicit API version negotiation.
//!
//! The control server mounts every supported version side by side
//! (`/api/v0/...`, `/api/v1/...`); `/api` advertises the set so clients can
//! negotiate instead of hard-coding a prefix.

use crate::codec::{WireDecode, WireEncode};
use crate::error::WireError;
use chronos_json::{obj, Value};

/// The service identifier advertised by version and index bodies.
pub const SERVICE_NAME: &str = "chronos-control";

/// A supported API version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ApiVersion {
    /// Frozen read-only status surface kept for legacy integrations.
    V0,
    /// The current, fully typed contract.
    V1,
}

impl ApiVersion {
    /// Every version the server still mounts, oldest first.
    pub const SUPPORTED: [ApiVersion; 2] = [ApiVersion::V0, ApiVersion::V1];

    /// The version new clients should use.
    pub const CURRENT: ApiVersion = ApiVersion::V1;

    /// The path segment (`v0`, `v1`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ApiVersion::V0 => "v0",
            ApiVersion::V1 => "v1",
        }
    }

    /// Parses a version token (`"v1"`).
    pub fn parse(s: &str) -> Option<ApiVersion> {
        match s {
            "v0" => Some(ApiVersion::V0),
            "v1" => Some(ApiVersion::V1),
            _ => None,
        }
    }

    /// Resolves a requested version token, defaulting to [`Self::CURRENT`]
    /// when the client does not ask for one.
    pub fn negotiate(requested: Option<&str>) -> Result<ApiVersion, WireError> {
        match requested {
            None => Ok(Self::CURRENT),
            Some(token) => Self::parse(token)
                .ok_or_else(|| WireError::Invalid(format!("unsupported API version {token:?}"))),
        }
    }

    /// The mount prefix for this version (`/api/v1`).
    pub fn prefix(&self) -> String {
        format!("/api/{}", self.as_str())
    }

    /// The body served by this version's `/version` endpoint.
    pub fn version_body(&self) -> Value {
        match self {
            ApiVersion::V0 => obj! { "version" => "v0", "deprecated" => true },
            ApiVersion::V1 => obj! { "version" => "v1", "service" => SERVICE_NAME },
        }
    }
}

impl std::fmt::Display for ApiVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The `/api` discovery document: the service plus every mounted version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiIndex {
    pub versions: Vec<ApiVersion>,
    pub current: ApiVersion,
}

impl Default for ApiIndex {
    fn default() -> Self {
        Self { versions: ApiVersion::SUPPORTED.to_vec(), current: ApiVersion::CURRENT }
    }
}

impl WireEncode for ApiIndex {
    fn to_value(&self) -> Value {
        let versions: Vec<Value> = self.versions.iter().map(|v| Value::from(v.as_str())).collect();
        obj! {
            "service" => SERVICE_NAME,
            "versions" => versions,
            "current" => self.current.as_str(),
        }
    }
}

impl WireDecode for ApiIndex {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let versions = value
            .get("versions")
            .and_then(Value::as_array)
            .ok_or(WireError::Missing("versions"))?
            .iter()
            .map(|v| v.as_str().and_then(ApiVersion::parse).ok_or(WireError::BadField("versions")))
            .collect::<Result<Vec<_>, _>>()?;
        let current =
            value.get("current").and_then(Value::as_str).ok_or(WireError::Missing("current"))?;
        let current = ApiVersion::parse(current).ok_or(WireError::BadField("current"))?;
        Ok(Self { versions, current })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_defaults_to_current_and_rejects_unknown() {
        assert_eq!(ApiVersion::negotiate(None).unwrap(), ApiVersion::V1);
        assert_eq!(ApiVersion::negotiate(Some("v0")).unwrap(), ApiVersion::V0);
        assert!(ApiVersion::negotiate(Some("v7")).is_err());
    }

    #[test]
    fn prefixes_and_tokens_roundtrip() {
        for v in ApiVersion::SUPPORTED {
            assert_eq!(ApiVersion::parse(v.as_str()), Some(v));
            assert!(v.prefix().ends_with(v.as_str()));
        }
    }
}
