//! The frozen v0 status surface — kept byte-identical for legacy
//! integrations (unauthenticated read-only job/evaluation status).

use crate::codec::{self, WireDecode, WireEncode};
use crate::error::WireError;
use crate::state::JobState;
use chronos_json::{obj, Value};
use chronos_util::Id;

/// `GET /api/v0/jobs/:id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStatusV0 {
    pub id: Id,
    pub status: JobState,
    pub percent: u8,
    pub evaluation: Id,
}

impl WireEncode for JobStatusV0 {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "status" => self.status.as_str(),
            "percent" => self.percent as i64,
            "evaluation" => self.evaluation.to_base32(),
        }
    }
}

impl WireDecode for JobStatusV0 {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let status_name = codec::req_str(value, "status")?;
        Ok(Self {
            id: codec::req_id(value, "id")?,
            status: JobState::parse(&status_name).ok_or(WireError::BadField("status"))?,
            percent: codec::lenient_u64(value, "percent").unwrap_or(0).min(100) as u8,
            evaluation: codec::req_id(value, "evaluation")?,
        })
    }
}

/// `GET /api/v0/evaluations/:id/status` — the open/closed split the
/// original Chronos exposed to build bots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationStatusV0 {
    /// Jobs still scheduled or running.
    pub open: usize,
    /// Jobs in a settled state.
    pub closed: usize,
    pub id: Id,
    pub percent: u8,
}

impl WireEncode for EvaluationStatusV0 {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "open" => self.open,
            "closed" => self.closed,
            "percent" => self.percent as i64,
        }
    }
}

impl WireDecode for EvaluationStatusV0 {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            open: codec::lenient_u64(value, "open").unwrap_or(0) as usize,
            closed: codec::lenient_u64(value, "closed").unwrap_or(0) as usize,
            percent: codec::lenient_u64(value, "percent").unwrap_or(0).min(100) as u8,
        })
    }
}
