//! The v1 wire contract: one DTO per request/response body.
//!
//! Encoders fix the canonical key order (maps serialize in insertion
//! order); decoders come in two strictness levels. **Request** DTOs are
//! strict: missing or ill-typed required fields are typed 400s. **Entity**
//! (response) DTOs are lenient, mirroring the tolerant reads clients and
//! the store have always performed.

mod agent;
mod analytics;
mod cluster;
mod entities;
mod requests;

pub use agent::{
    write_upload_frame, ClaimRequest, ClaimedJob, FailRequest, HeartbeatAck, HeartbeatRequest,
    UploadResultRequest,
};
pub use analytics::{
    ExperimentRegressionFlag, RegressionChangePointDto, RegressionRunDto, RegressionsResponse,
};
pub use cluster::{ClusterStatusDto, ReplicateAck, ReplicateRequest, VoteRequest, VoteResponse};
pub use entities::{
    DeploymentDto, EvaluationDto, EvaluationStatusDto, ExperimentDto, FrontierDto, JobBudget,
    JobDto, JobResultDto, ProjectDto, StrategyDto, SystemDto, TimelineEventDto, UserPublic,
};
pub use requests::{
    AddProjectMemberRequest, CreateDeploymentRequest, CreateExperimentRequest,
    CreateProjectRequest, CreateUserRequest, LoginRequest, LoginResponse, LogoutResponse,
    SetDeploymentActiveRequest, StatsResponse, TriggerBuildRequest, TriggerBuildResponse,
};
