//! Request DTOs (strict decode) and the simple response bodies for the
//! management surface of the v1 API.
//!
//! Strict means: a missing or ill-typed *required* field is a typed
//! [`WireError`] that the server turns into a 400 envelope. Optional
//! fields keep their documented defaults.

use crate::codec::{self, WireDecode, WireEncode};
use crate::error::WireError;
use chronos_json::{obj, Map, Value};
use chronos_util::Id;

/// `POST /api/v1/login`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginRequest {
    pub username: String,
    pub password: String,
}

impl WireEncode for LoginRequest {
    fn to_value(&self) -> Value {
        obj! {
            "username" => self.username.as_str(),
            "password" => self.password.as_str(),
        }
    }
}

impl WireDecode for LoginRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            username: codec::req_str(value, "username")?,
            password: codec::req_str(value, "password")?,
        })
    }
}

/// `POST /api/v1/login` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginResponse {
    pub token: String,
}

impl WireEncode for LoginResponse {
    fn to_value(&self) -> Value {
        obj! { "token" => self.token.as_str() }
    }
}

impl WireDecode for LoginResponse {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self { token: codec::req_str(value, "token")? })
    }
}

/// `POST /api/v1/logout` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogoutResponse {
    pub revoked: bool,
}

impl WireEncode for LogoutResponse {
    fn to_value(&self) -> Value {
        obj! { "revoked" => self.revoked }
    }
}

impl WireDecode for LogoutResponse {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self { revoked: value.get("revoked").and_then(Value::as_bool).unwrap_or(false) })
    }
}

/// `POST /api/v1/users`. An absent `role` defaults to member; a present
/// but unknown/ill-typed one is rejected (the handler validates the name
/// against the role table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateUserRequest {
    pub username: String,
    pub password: String,
    pub role: Option<String>,
}

impl WireEncode for CreateUserRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("username".into(), Value::from(self.username.as_str()));
        map.insert("password".into(), Value::from(self.password.as_str()));
        if let Some(role) = &self.role {
            map.insert("role".into(), Value::from(role.as_str()));
        }
        Value::Object(map)
    }
}

impl WireDecode for CreateUserRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let role = match value.get("role") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_str().ok_or(WireError::BadField("role"))?.to_string()),
        };
        Ok(Self {
            username: codec::req_str(value, "username")?,
            password: codec::req_str(value, "password")?,
            role,
        })
    }
}

/// `POST /api/v1/systems/:id/deployments`. `version` is required — a
/// deployment without one is unidentifiable in trend analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateDeploymentRequest {
    pub environment: String,
    pub version: String,
}

impl WireEncode for CreateDeploymentRequest {
    fn to_value(&self) -> Value {
        obj! {
            "environment" => self.environment.as_str(),
            "version" => self.version.as_str(),
        }
    }
}

impl WireDecode for CreateDeploymentRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            environment: codec::str_or(value, "environment", "default"),
            version: codec::req_str(value, "version")?,
        })
    }
}

/// `POST /api/v1/deployments/:id/active`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetDeploymentActiveRequest {
    pub active: bool,
}

impl WireEncode for SetDeploymentActiveRequest {
    fn to_value(&self) -> Value {
        obj! { "active" => self.active }
    }
}

impl WireDecode for SetDeploymentActiveRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self { active: codec::req_bool(value, "active")? })
    }
}

/// `POST /api/v1/projects`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateProjectRequest {
    pub name: String,
    pub description: String,
}

impl WireEncode for CreateProjectRequest {
    fn to_value(&self) -> Value {
        obj! {
            "name" => self.name.as_str(),
            "description" => self.description.as_str(),
        }
    }
}

impl WireDecode for CreateProjectRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            name: codec::req_str(value, "name")?,
            description: codec::str_or(value, "description", ""),
        })
    }
}

/// `POST /api/v1/projects/:id/members`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddProjectMemberRequest {
    pub user_id: Id,
}

impl WireEncode for AddProjectMemberRequest {
    fn to_value(&self) -> Value {
        obj! { "user_id" => self.user_id.to_base32() }
    }
}

impl WireDecode for AddProjectMemberRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self { user_id: codec::req_id(value, "user_id")? })
    }
}

/// `POST /api/v1/projects/:id/experiments`. `parameters` carries the
/// `ParamAssignments` document verbatim (the core layer validates it
/// against the system's parameter space). An absent `strategy` means grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateExperimentRequest {
    pub name: String,
    pub system_id: Id,
    pub description: String,
    pub parameters: Option<Value>,
    pub strategy: Option<crate::v1::StrategyDto>,
    /// Per-job resource budget applied to every job of every evaluation of
    /// this experiment. Absent (or empty) means unbudgeted.
    pub budget: Option<crate::v1::JobBudget>,
}

impl WireEncode for CreateExperimentRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("name".into(), Value::from(self.name.as_str()));
        map.insert("system_id".into(), Value::from(self.system_id.to_base32()));
        if !self.description.is_empty() {
            map.insert("description".into(), Value::from(self.description.as_str()));
        }
        if let Some(parameters) = &self.parameters {
            map.insert("parameters".into(), parameters.clone());
        }
        if let Some(strategy) = &self.strategy {
            map.insert("strategy".into(), strategy.to_value());
        }
        if let Some(budget) = &self.budget {
            map.insert("budget".into(), budget.to_value());
        }
        Value::Object(map)
    }
}

impl WireDecode for CreateExperimentRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let strategy = match value.get("strategy") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(crate::v1::StrategyDto::decode(v)?),
        };
        let budget = match value.get("budget") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(crate::v1::JobBudget::decode(v)?),
        };
        Ok(Self {
            name: codec::req_str(value, "name")?,
            system_id: codec::req_id(value, "system_id")?,
            description: codec::str_or(value, "description", ""),
            parameters: codec::opt_value(value, "parameters"),
            strategy,
            budget,
        })
    }
}

/// `POST /api/v1/trigger/build` — the build-bot integration hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerBuildRequest {
    pub experiment_id: Id,
    pub build: String,
}

impl WireEncode for TriggerBuildRequest {
    fn to_value(&self) -> Value {
        obj! {
            "experiment_id" => self.experiment_id.to_base32(),
            "build" => self.build.as_str(),
        }
    }
}

impl WireDecode for TriggerBuildRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            experiment_id: codec::req_id(value, "experiment_id")?,
            build: codec::str_or(value, "build", "unknown"),
        })
    }
}

/// `POST /api/v1/trigger/build` response.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerBuildResponse {
    pub evaluation: Value,
    pub build: String,
    pub jobs: usize,
}

impl WireEncode for TriggerBuildResponse {
    fn to_value(&self) -> Value {
        obj! {
            "evaluation" => self.evaluation.clone(),
            "triggered_by" => obj! { "build" => self.build.as_str() },
            "jobs" => self.jobs,
        }
    }
}

impl WireDecode for TriggerBuildResponse {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let triggered_by = value.get("triggered_by").cloned().unwrap_or(Value::Null);
        Ok(Self {
            evaluation: codec::req_value(value, "evaluation")?,
            build: codec::str_or(&triggered_by, "build", "unknown"),
            jobs: codec::lenient_u64(value, "jobs").unwrap_or(0) as usize,
        })
    }
}

/// `GET /api/v1/stats` — installation-wide job-state roll-up.
/// `remaining_space` sums the not-yet-materialized points of all lazy
/// evaluations; `0` is omitted on the wire (pre-refactor bodies had no
/// such key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsResponse {
    pub scheduled: usize,
    pub running: usize,
    pub finished: usize,
    pub aborted: usize,
    pub failed: usize,
    /// Jobs quarantined installation-wide; `0` is omitted on the wire
    /// (pre-quarantine bodies had no such key).
    pub quarantined: usize,
    pub remaining_space: u64,
    pub systems: usize,
    pub projects: usize,
}

impl WireEncode for StatsResponse {
    fn to_value(&self) -> Value {
        let mut jobs = obj! {
            "scheduled" => self.scheduled,
            "running" => self.running,
            "finished" => self.finished,
            "aborted" => self.aborted,
            "failed" => self.failed,
        };
        if self.quarantined > 0 {
            jobs.set("quarantined", self.quarantined as u64);
        }
        if self.remaining_space > 0 {
            jobs.set("remaining_space", self.remaining_space);
        }
        obj! {
            "jobs" => jobs,
            "systems" => self.systems,
            "projects" => self.projects,
        }
    }
}

impl WireDecode for StatsResponse {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let jobs = value.get("jobs").cloned().unwrap_or(Value::Null);
        let count = |field: &str| codec::lenient_u64(&jobs, field).unwrap_or(0) as usize;
        Ok(Self {
            scheduled: count("scheduled"),
            running: count("running"),
            finished: count("finished"),
            aborted: count("aborted"),
            failed: count("failed"),
            quarantined: count("quarantined"),
            remaining_space: codec::lenient_u64(&jobs, "remaining_space").unwrap_or(0),
            systems: codec::lenient_u64(value, "systems").unwrap_or(0) as usize,
            projects: codec::lenient_u64(value, "projects").unwrap_or(0) as usize,
        })
    }
}
