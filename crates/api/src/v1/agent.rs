//! Agent-protocol DTOs: claim, heartbeat, result upload, failure report.
//!
//! These bodies ride the hot path between every agent and the control
//! server, so the encoders go through `write_into` and the result upload
//! keeps its hand-framed streaming shape (the archive is base64-framed
//! without building an intermediate `Value` tree).

use crate::codec::{self, WireDecode, WireEncode};
use crate::error::WireError;
use crate::state::JobState;
use chronos_json::{obj, Map, Value};
use chronos_util::encode::{base64_decode, base64_encode};
use chronos_util::Id;

/// `POST /api/v1/agent/claim`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimRequest {
    pub deployment_id: Id,
    /// Fencing/idempotency key minted by the agent (PR 3 semantics): a
    /// retried claim with the same key returns the same job.
    pub idempotency_key: Option<String>,
}

impl WireEncode for ClaimRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("deployment_id".into(), Value::from(self.deployment_id.to_base32()));
        if let Some(key) = &self.idempotency_key {
            map.insert("idempotency_key".into(), Value::from(key.as_str()));
        }
        Value::Object(map)
    }
}

impl WireDecode for ClaimRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            deployment_id: codec::req_id(value, "deployment_id")?,
            idempotency_key: codec::opt_str(value, "idempotency_key"),
        })
    }
}

/// The agent-side projection of a claim response (a full job document).
/// Only the fields the runtime needs are decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimedJob {
    pub id: Id,
    pub evaluation_id: Id,
    pub parameters: Value,
    /// The attempt number doubling as the fencing token for heartbeats,
    /// result uploads, and failure reports.
    pub attempts: u32,
    /// Resource budget the watchdog enforces; absent means unbudgeted.
    pub budget: Option<crate::v1::JobBudget>,
}

impl WireEncode for ClaimedJob {
    fn to_value(&self) -> Value {
        let mut doc = obj! {
            "id" => self.id.to_base32(),
            "evaluation_id" => self.evaluation_id.to_base32(),
            "parameters" => self.parameters.clone(),
            "attempts" => self.attempts as i64,
        };
        if let Some(budget) = &self.budget {
            doc.set("budget", budget.to_value());
        }
        doc
    }
}

impl WireDecode for ClaimedJob {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            evaluation_id: codec::req_id(value, "evaluation_id")?,
            parameters: value.get("parameters").cloned().unwrap_or(Value::Null),
            attempts: u32::try_from(codec::lenient_u64(value, "attempts").unwrap_or(1))
                .unwrap_or(u32::MAX),
            budget: value.get("budget").map(crate::v1::JobBudget::decode).transpose()?,
        })
    }
}

/// `POST /api/v1/agent/jobs/:id/heartbeat`. Both fields are optional on
/// the wire but a present, ill-typed value is rejected — a heartbeat that
/// silently drops its fencing token would defeat the lease protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatRequest {
    pub progress: Option<u8>,
    pub attempt: Option<u32>,
}

impl WireEncode for HeartbeatRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        if let Some(progress) = self.progress {
            map.insert("progress".into(), Value::from(progress as i64));
        }
        if let Some(attempt) = self.attempt {
            map.insert("attempt".into(), Value::from(attempt as i64));
        }
        Value::Object(map)
    }
}

impl WireDecode for HeartbeatRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let progress = match codec::opt_u64(value, "progress")? {
            None => None,
            Some(p) if p <= 100 => Some(p as u8),
            Some(_) => {
                return Err(WireError::OutOfRange {
                    field: "progress",
                    expected: "an integer in 0..=100",
                })
            }
        };
        let attempt = codec::opt_u64(value, "attempt")?
            .map(|a| {
                u32::try_from(a).map_err(|_| WireError::OutOfRange {
                    field: "attempt",
                    expected: "a 32-bit unsigned integer",
                })
            })
            .transpose()?;
        Ok(Self { progress, attempt })
    }
}

/// Heartbeat acknowledgement: the authoritative state and progress as the
/// control server sees them (the agent uses `state` to detect aborts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatAck {
    pub state: JobState,
    pub progress: u8,
}

impl WireEncode for HeartbeatAck {
    fn to_value(&self) -> Value {
        obj! {
            "state" => self.state.as_str(),
            "progress" => self.progress as i64,
        }
    }
}

impl WireDecode for HeartbeatAck {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let state_name = codec::req_str(value, "state")?;
        Ok(Self {
            state: JobState::parse(&state_name).ok_or(WireError::BadField("state"))?,
            progress: codec::lenient_u64(value, "progress").unwrap_or(0).min(100) as u8,
        })
    }
}

/// `POST /api/v1/agent/jobs/:id/result`. The canonical encode is the
/// hand-rolled frame (`data`, `archive_b64`, `attempt`, `idempotency_key`)
/// so large archives never pass through a `Value` tree.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadResultRequest {
    pub data: Value,
    pub archive: Vec<u8>,
    pub attempt: Option<u32>,
    pub idempotency_key: Option<String>,
}

impl WireEncode for UploadResultRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("data".into(), self.data.clone());
        map.insert("archive_b64".into(), Value::from(base64_encode(&self.archive)));
        if let Some(attempt) = self.attempt {
            map.insert("attempt".into(), Value::from(attempt as i64));
        }
        if let Some(key) = &self.idempotency_key {
            map.insert("idempotency_key".into(), Value::from(key.as_str()));
        }
        Value::Object(map)
    }

    /// Streaming frame: identical bytes to `to_value()` + `write_into`,
    /// without cloning `data` or materialising the archive twice.
    fn encode_into(&self, out: &mut String) {
        write_upload_frame(
            out,
            &self.data,
            &self.archive,
            self.attempt,
            self.idempotency_key.as_deref(),
        );
    }
}

/// Writes the result-upload frame from borrowed parts. This is the one
/// definition of the upload body: agents with only `&Value`/`&[u8]` in hand
/// stream through here without constructing an [`UploadResultRequest`].
pub fn write_upload_frame(
    out: &mut String,
    data: &Value,
    archive: &[u8],
    attempt: Option<u32>,
    idempotency_key: Option<&str>,
) {
    out.push_str("{\"data\":");
    data.write_into(out);
    out.push_str(",\"archive_b64\":");
    chronos_json::write_string(out, &base64_encode(archive));
    if let Some(attempt) = attempt {
        out.push_str(",\"attempt\":");
        out.push_str(&attempt.to_string());
    }
    if let Some(key) = idempotency_key {
        out.push_str(",\"idempotency_key\":");
        chronos_json::write_string(out, key);
    }
    out.push('}');
}

impl WireDecode for UploadResultRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let data = value
            .get("data")
            .cloned()
            .ok_or_else(|| WireError::Invalid("result needs \"data\"".into()))?;
        let archive = match value.get("archive_b64").and_then(Value::as_str) {
            Some(b64) => base64_decode(b64).ok_or(WireError::BadField("archive_b64"))?,
            None => Vec::new(),
        };
        let attempt =
            codec::lenient_u64(value, "attempt").map(|a| u32::try_from(a).unwrap_or(u32::MAX));
        Ok(Self {
            data,
            archive,
            attempt,
            idempotency_key: codec::opt_str(value, "idempotency_key"),
        })
    }
}

/// `POST /api/v1/agent/jobs/:id/fail`. `reason` is required — a failure
/// report without one used to silently become a canned string, which made
/// post-mortems useless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailRequest {
    pub reason: String,
    pub attempt: Option<u32>,
}

impl WireEncode for FailRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("reason".into(), Value::from(self.reason.as_str()));
        if let Some(attempt) = self.attempt {
            map.insert("attempt".into(), Value::from(attempt as i64));
        }
        Value::Object(map)
    }
}

impl WireDecode for FailRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            reason: codec::req_str(value, "reason")?,
            attempt: codec::opt_u64(value, "attempt")?
                .map(|a| {
                    u32::try_from(a).map_err(|_| WireError::OutOfRange {
                        field: "attempt",
                        expected: "a 32-bit unsigned integer",
                    })
                })
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_frame_matches_value_tree_encoding() {
        let request = UploadResultRequest {
            data: obj! { "ops" => 12.5, "note" => "q\"uote" },
            archive: vec![1, 2, 3, 4, 5],
            attempt: Some(3),
            idempotency_key: Some("key-1".into()),
        };
        let mut framed = String::new();
        request.encode_into(&mut framed);
        assert_eq!(framed, request.to_value().to_string());

        let bare = UploadResultRequest {
            data: Value::Null,
            archive: Vec::new(),
            attempt: None,
            idempotency_key: None,
        };
        let mut framed = String::new();
        bare.encode_into(&mut framed);
        assert_eq!(framed, bare.to_value().to_string());
    }
}
