//! Result-analytics DTOs: the automatic regression-detection endpoint
//! (`GET /api/v1/experiments/{id}/regressions`) and the regression flag
//! the experiment status body carries after a scan.

use crate::codec::{self, WireDecode, WireEncode};
use crate::error::WireError;
use chronos_json::{obj, Value};
use chronos_util::Id;

fn req_f64(value: &Value, field: &'static str) -> Result<f64, WireError> {
    value.get(field).and_then(Value::as_f64).ok_or(WireError::MissingTyped { field, ty: "number" })
}

/// One evaluation run in a regression scan: identity plus measured mean.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionRunDto {
    pub evaluation_id: Id,
    pub created_at: u64,
    pub jobs_measured: u64,
    pub mean: f64,
}

impl WireEncode for RegressionRunDto {
    fn to_value(&self) -> Value {
        obj! {
            "evaluation_id" => self.evaluation_id.to_base32(),
            "created_at" => self.created_at,
            "jobs_measured" => self.jobs_measured,
            "mean" => self.mean,
        }
    }
}

impl WireDecode for RegressionRunDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            evaluation_id: codec::req_id(value, "evaluation_id")?,
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
            jobs_measured: codec::lenient_u64(value, "jobs_measured").unwrap_or(0),
            mean: req_f64(value, "mean")?,
        })
    }
}

/// One detected change point in the run history. `index` is the first
/// run of the new regime (an index into `runs`).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionChangePointDto {
    pub index: u64,
    pub before_mean: f64,
    pub after_mean: f64,
    pub p_value: f64,
}

impl WireEncode for RegressionChangePointDto {
    fn to_value(&self) -> Value {
        obj! {
            "index" => self.index,
            "before_mean" => self.before_mean,
            "after_mean" => self.after_mean,
            "p_value" => self.p_value,
        }
    }
}

impl WireDecode for RegressionChangePointDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            index: codec::lenient_u64(value, "index").unwrap_or(0),
            before_mean: req_f64(value, "before_mean")?,
            after_mean: req_f64(value, "after_mean")?,
            p_value: req_f64(value, "p_value")?,
        })
    }
}

/// Response of `GET /api/v1/experiments/{id}/regressions`: the scanned
/// run history, the detection parameters (echoed so clients can verify
/// determinism), and the detected change points.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionsResponse {
    pub experiment_id: Id,
    pub value_path: String,
    pub seed: u64,
    pub permutations: u64,
    pub significance: f64,
    pub min_segment: u64,
    pub runs: Vec<RegressionRunDto>,
    pub change_points: Vec<RegressionChangePointDto>,
    pub regressed: bool,
}

impl WireEncode for RegressionsResponse {
    fn to_value(&self) -> Value {
        obj! {
            "experiment_id" => self.experiment_id.to_base32(),
            "value_path" => self.value_path.as_str(),
            "seed" => self.seed,
            "permutations" => self.permutations,
            "significance" => self.significance,
            "min_segment" => self.min_segment,
            "runs" => Value::Array(self.runs.iter().map(WireEncode::to_value).collect()),
            "change_points" =>
                Value::Array(self.change_points.iter().map(WireEncode::to_value).collect()),
            "regressed" => self.regressed,
        }
    }
}

impl WireDecode for RegressionsResponse {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let runs = codec::arr_or_empty(value, "runs")
            .iter()
            .map(RegressionRunDto::decode)
            .collect::<Result<_, _>>()?;
        let change_points = codec::arr_or_empty(value, "change_points")
            .iter()
            .map(RegressionChangePointDto::decode)
            .collect::<Result<_, _>>()?;
        Ok(Self {
            experiment_id: codec::req_id(value, "experiment_id")?,
            value_path: codec::str_or(value, "value_path", ""),
            seed: codec::lenient_u64(value, "seed").unwrap_or(0),
            permutations: codec::lenient_u64(value, "permutations").unwrap_or(0),
            significance: value.get("significance").and_then(Value::as_f64).unwrap_or(0.0),
            min_segment: codec::lenient_u64(value, "min_segment").unwrap_or(0),
            runs,
            change_points,
            regressed: value.get("regressed").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

/// The cached outcome of the last regression scan, embedded in the
/// experiment status body as its `regressions` field (only present once a
/// scan has run — older bodies are byte-identical to before the field
/// existed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentRegressionFlag {
    pub value_path: String,
    pub change_points: u64,
    pub regressed: bool,
    pub runs: u64,
    pub scanned_at: u64,
}

impl WireEncode for ExperimentRegressionFlag {
    fn to_value(&self) -> Value {
        obj! {
            "value_path" => self.value_path.as_str(),
            "change_points" => self.change_points,
            "regressed" => self.regressed,
            "runs" => self.runs,
            "scanned_at" => self.scanned_at,
        }
    }
}

impl WireDecode for ExperimentRegressionFlag {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            value_path: codec::str_or(value, "value_path", ""),
            change_points: codec::lenient_u64(value, "change_points").unwrap_or(0),
            regressed: value.get("regressed").and_then(Value::as_bool).unwrap_or(false),
            runs: codec::lenient_u64(value, "runs").unwrap_or(0),
            scanned_at: codec::lenient_u64(value, "scanned_at").unwrap_or(0),
        })
    }
}
