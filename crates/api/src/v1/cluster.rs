//! Cluster-mode DTOs: WAL-segment replication, lease votes, and node
//! status.
//!
//! These bodies ride the peer-to-peer endpoints (`/api/v1/cluster/*`)
//! between control-plane nodes. Every one carries the sender's **term** —
//! the cluster's fencing token — so a receiver can refuse anything from a
//! deposed leader or a stale candidate. The segment checksum is encoded as
//! fixed-width lowercase hex (a u64 does not fit the wire's i64 numbers).

use crate::codec::{self, WireDecode, WireEncode};
use crate::error::WireError;
use chronos_json::{obj, Map, Value};
use chronos_util::encode::{base64_decode, base64_encode};

/// `POST /api/v1/cluster/replicate` — a frame-aligned slice of the
/// leader's replication feed (empty = pure lease heartbeat).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateRequest {
    /// The shipping leader's term (fencing token).
    pub term: u64,
    /// The shipping leader's advertised base URL (becomes the follower's
    /// `not_leader` hint).
    pub leader: String,
    /// Byte offset in the replication feed where `frames` starts; must
    /// equal the follower's current offset or the install is refused.
    pub start_offset: u64,
    /// FNV-1a 64 over `frames`, verified before any byte is applied.
    pub checksum: u64,
    /// The raw WAL frames (JSON-lines), base64 on the wire.
    pub frames: Vec<u8>,
}

impl WireEncode for ReplicateRequest {
    fn to_value(&self) -> Value {
        obj! {
            "term" => self.term as i64,
            "leader" => self.leader.clone(),
            "start_offset" => self.start_offset as i64,
            "checksum" => format!("{:016x}", self.checksum),
            "frames" => base64_encode(&self.frames),
        }
    }
}

impl WireDecode for ReplicateRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            term: req_u64(value, "term")?,
            leader: codec::req_str(value, "leader")?,
            start_offset: req_u64(value, "start_offset")?,
            checksum: req_hex_u64(value, "checksum")?,
            frames: req_base64(value, "frames")?,
        })
    }
}

/// The follower's acknowledgement of a replicate call: its term and the
/// feed offset it has durably applied through (the leader resumes
/// shipping from there — after a torn install, that is mid-segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicateAck {
    pub term: u64,
    pub offset: u64,
}

impl WireEncode for ReplicateAck {
    fn to_value(&self) -> Value {
        obj! {
            "term" => self.term as i64,
            "offset" => self.offset as i64,
        }
    }
}

impl WireDecode for ReplicateAck {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self { term: req_u64(value, "term")?, offset: req_u64(value, "offset")? })
    }
}

/// `POST /api/v1/cluster/vote` — a candidate soliciting one vote for
/// `term`. `last_offset` lets voters refuse a candidate whose replica is
/// behind their own (its election would lose committed writes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteRequest {
    pub term: u64,
    /// The candidate's advertised base URL (what the vote is granted to).
    pub candidate: String,
    pub last_offset: u64,
}

impl WireEncode for VoteRequest {
    fn to_value(&self) -> Value {
        obj! {
            "term" => self.term as i64,
            "candidate" => self.candidate.clone(),
            "last_offset" => self.last_offset as i64,
        }
    }
}

impl WireDecode for VoteRequest {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            term: req_u64(value, "term")?,
            candidate: codec::req_str(value, "candidate")?,
            last_offset: req_u64(value, "last_offset")?,
        })
    }
}

/// The voter's answer: granted or not, plus the voter's current term so a
/// stale candidate learns it was outpaced and steps back down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteResponse {
    pub term: u64,
    pub granted: bool,
}

impl WireEncode for VoteResponse {
    fn to_value(&self) -> Value {
        obj! {
            "term" => self.term as i64,
            "granted" => self.granted,
        }
    }
}

impl WireDecode for VoteResponse {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self { term: req_u64(value, "term")?, granted: codec::req_bool(value, "granted")? })
    }
}

/// `GET /api/v1/cluster/status` — one node's view of the cluster (also
/// how a new leader re-learns follower offsets after winning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatusDto {
    pub node: String,
    /// `"leader"`, `"follower"`, or `"candidate"`.
    pub role: String,
    pub term: u64,
    /// Advertised URL of the believed leader, absent mid-election.
    pub leader: Option<String>,
    /// This node's replication-feed end offset.
    pub offset: u64,
    /// Milliseconds since the last leader contact (0 on the leader).
    pub lag_millis: u64,
    /// Elections this node has started.
    pub elections: u64,
    /// Segments this node has shipped while leading.
    pub segments_shipped: u64,
}

impl WireEncode for ClusterStatusDto {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("node".into(), Value::from(self.node.clone()));
        map.insert("role".into(), Value::from(self.role.clone()));
        map.insert("term".into(), Value::from(self.term as i64));
        if let Some(leader) = &self.leader {
            map.insert("leader".into(), Value::from(leader.clone()));
        }
        map.insert("offset".into(), Value::from(self.offset as i64));
        map.insert("lag_millis".into(), Value::from(self.lag_millis as i64));
        map.insert("elections".into(), Value::from(self.elections as i64));
        map.insert("segments_shipped".into(), Value::from(self.segments_shipped as i64));
        Value::Object(map)
    }
}

impl WireDecode for ClusterStatusDto {
    /// Lenient, like every entity DTO: a newer node may add fields.
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            node: codec::str_or(value, "node", ""),
            role: codec::str_or(value, "role", "follower"),
            term: codec::lenient_u64(value, "term").unwrap_or(0),
            leader: codec::opt_str(value, "leader"),
            offset: codec::lenient_u64(value, "offset").unwrap_or(0),
            lag_millis: codec::lenient_u64(value, "lag_millis").unwrap_or(0),
            elections: codec::lenient_u64(value, "elections").unwrap_or(0),
            segments_shipped: codec::lenient_u64(value, "segments_shipped").unwrap_or(0),
        })
    }
}

fn req_u64(value: &Value, field: &'static str) -> Result<u64, WireError> {
    codec::opt_u64(value, field)?.ok_or(WireError::Missing(field))
}

fn req_hex_u64(value: &Value, field: &'static str) -> Result<u64, WireError> {
    let text = codec::req_str(value, field)?;
    u64::from_str_radix(&text, 16).map_err(|_| WireError::BadField(field))
}

fn req_base64(value: &Value, field: &'static str) -> Result<Vec<u8>, WireError> {
    let text = codec::req_str(value, field)?;
    base64_decode(&text).ok_or(WireError::BadField(field))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_roundtrips_frames_and_checksum() {
        let request = ReplicateRequest {
            term: 7,
            leader: "http://127.0.0.1:8081".into(),
            start_offset: 4096,
            checksum: 0xdead_beef_cafe_f00d,
            frames: b"{\"op\":\"put\",\"kind\":\"job\",\"id\":\"j\",\"doc\":{}}\n".to_vec(),
        };
        let decoded = ReplicateRequest::decode(&request.to_value()).unwrap();
        assert_eq!(decoded, request);
        assert!(request.encode().contains("\"checksum\":\"deadbeefcafef00d\""));
    }

    #[test]
    fn corrupt_base64_and_hex_are_typed_rejections() {
        let mut value = ReplicateRequest {
            term: 1,
            leader: "http://x".into(),
            start_offset: 0,
            checksum: 1,
            frames: Vec::new(),
        }
        .to_value();
        if let Value::Object(map) = &mut value {
            map.insert("frames".into(), Value::from("!!not base64!!"));
        }
        assert!(matches!(
            ReplicateRequest::decode(&value).unwrap_err(),
            WireError::BadField("frames")
        ));
        if let Value::Object(map) = &mut value {
            map.insert("frames".into(), Value::from(""));
            map.insert("checksum".into(), Value::from("xyzzy"));
        }
        assert!(matches!(
            ReplicateRequest::decode(&value).unwrap_err(),
            WireError::BadField("checksum")
        ));
    }

    #[test]
    fn vote_and_ack_roundtrip() {
        let vote = VoteRequest { term: 3, candidate: "http://n2".into(), last_offset: 99 };
        assert_eq!(VoteRequest::decode(&vote.to_value()).unwrap(), vote);
        let response = VoteResponse { term: 3, granted: true };
        assert_eq!(VoteResponse::decode(&response.to_value()).unwrap(), response);
        let ack = ReplicateAck { term: 3, offset: 123 };
        assert_eq!(ReplicateAck::decode(&ack.to_value()).unwrap(), ack);
    }

    #[test]
    fn status_omits_leader_mid_election_and_decodes_leniently() {
        let status = ClusterStatusDto {
            node: "n1".into(),
            role: "candidate".into(),
            term: 4,
            leader: None,
            offset: 10,
            lag_millis: 250,
            elections: 2,
            segments_shipped: 0,
        };
        assert!(!status.encode().contains("leader"));
        assert_eq!(ClusterStatusDto::decode(&status.to_value()).unwrap(), status);
    }
}
