//! Entity (response) DTOs — the documents the control server serves.
//!
//! Key order in every `to_value` is the frozen wire contract; the golden
//! fixtures under `tests/fixtures/api_v1/` pin it byte-for-byte. Decoders
//! are lenient (absent optionals default) because clients and the store
//! have always read these documents tolerantly.

use crate::codec::{self, WireDecode, WireEncode};
use crate::error::WireError;
use crate::state::JobState;
use chronos_json::{obj, Map, Value};
use chronos_util::Id;

fn req_u32(raw: u64) -> u32 {
    u32::try_from(raw).unwrap_or(u32::MAX)
}

/// A system under evaluation. `parameters` and `charts` carry the
/// definition documents verbatim (`ParamDef`/`ChartSpec` own their shape).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDto {
    pub id: Id,
    pub name: String,
    pub description: String,
    pub parameters: Vec<Value>,
    pub charts: Vec<Value>,
    pub created_at: u64,
}

impl WireEncode for SystemDto {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "name" => self.name.as_str(),
            "description" => self.description.as_str(),
            "parameters" => Value::Array(self.parameters.clone()),
            "charts" => Value::Array(self.charts.clone()),
            "created_at" => self.created_at,
        }
    }
}

impl WireDecode for SystemDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            name: codec::req_str(value, "name")?,
            description: codec::str_or(value, "description", ""),
            parameters: codec::arr_or_empty(value, "parameters"),
            charts: codec::arr_or_empty(value, "charts"),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
        })
    }
}

/// A deployment of a system in a concrete environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentDto {
    pub id: Id,
    pub system_id: Id,
    pub environment: String,
    pub version: String,
    pub active: bool,
    pub created_at: u64,
}

impl WireEncode for DeploymentDto {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "system_id" => self.system_id.to_base32(),
            "environment" => self.environment.as_str(),
            "version" => self.version.as_str(),
            "active" => self.active,
            "created_at" => self.created_at,
        }
    }
}

impl WireDecode for DeploymentDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            system_id: codec::req_id(value, "system_id")?,
            environment: codec::str_or(value, "environment", ""),
            version: codec::str_or(value, "version", ""),
            active: value.get("active").and_then(Value::as_bool).unwrap_or(true),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
        })
    }
}

/// A project: the collaboration and access-control unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectDto {
    pub id: Id,
    pub name: String,
    pub description: String,
    pub members: Vec<Id>,
    pub archived: bool,
    pub created_at: u64,
}

impl WireEncode for ProjectDto {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "name" => self.name.as_str(),
            "description" => self.description.as_str(),
            "members" => Value::Array(self.members.iter().map(|m| Value::from(m.to_base32())).collect()),
            "archived" => self.archived,
            "created_at" => self.created_at,
        }
    }
}

impl WireDecode for ProjectDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let members = value
            .get("members")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|m| {
                        m.as_str()
                            .and_then(|s| Id::parse_base32(s).ok())
                            .ok_or_else(|| WireError::Invalid("bad member id".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(Self {
            id: codec::req_id(value, "id")?,
            name: codec::req_str(value, "name")?,
            description: codec::str_or(value, "description", ""),
            members,
            archived: value.get("archived").and_then(Value::as_bool).unwrap_or(false),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
        })
    }
}

/// How an experiment explores its parameter space. `"grid"` (the historic
/// behavior) encodes as a bare string so pre-strategy documents and
/// fixtures stay byte-identical; adaptive strategies encode as an object.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyDto {
    /// Exhaustive sweep, index order.
    Grid,
    /// Successive-halving exploration.
    Adaptive {
        /// Candidate-sampling seed.
        seed: u64,
        /// Rung-0 size; `None` lets the scheduler derive it from the
        /// space size.
        initial: Option<u64>,
        /// Halving factor (keep `ceil(k/eta)` per rung).
        eta: u64,
        /// JSON pointer into result documents that scores a candidate.
        metric: String,
        /// Whether a larger metric is better.
        maximize: bool,
    },
}

impl WireEncode for StrategyDto {
    fn to_value(&self) -> Value {
        match self {
            StrategyDto::Grid => Value::from("grid"),
            StrategyDto::Adaptive { seed, initial, eta, metric, maximize } => {
                let mut map = Map::new();
                map.insert("kind".into(), Value::from("adaptive"));
                map.insert("seed".into(), Value::from(*seed));
                if let Some(initial) = initial {
                    map.insert("initial".into(), Value::from(*initial));
                }
                map.insert("eta".into(), Value::from(*eta));
                map.insert("metric".into(), Value::from(metric.as_str()));
                map.insert("maximize".into(), Value::from(*maximize));
                Value::Object(map)
            }
        }
    }
}

impl WireDecode for StrategyDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let kind = match value {
            Value::String(s) => s.as_str(),
            Value::Object(_) => value
                .get("kind")
                .and_then(Value::as_str)
                .ok_or(WireError::BadField("strategy.kind"))?,
            _ => return Err(WireError::BadField("strategy")),
        };
        match kind {
            "grid" => Ok(StrategyDto::Grid),
            "adaptive" => Ok(StrategyDto::Adaptive {
                seed: codec::lenient_u64(value, "seed").unwrap_or(0),
                initial: codec::lenient_u64(value, "initial"),
                eta: codec::lenient_u64(value, "eta").unwrap_or(4),
                metric: codec::str_or(value, "metric", "/throughput_ops_per_sec"),
                maximize: value.get("maximize").and_then(Value::as_bool).unwrap_or(true),
            }),
            _ => Err(WireError::BadField("strategy")),
        }
    }
}

/// The live rung of an adaptive evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierDto {
    pub rung: u32,
    /// Point indices competing in this rung.
    pub candidates: Vec<u64>,
    /// Materialized prefix of `candidates`.
    pub issued: u64,
    /// Jobs of this rung, in issue order.
    pub job_ids: Vec<Id>,
    /// Per-completed-rung pruning records (opaque documents).
    pub decisions: Vec<Value>,
}

impl WireEncode for FrontierDto {
    fn to_value(&self) -> Value {
        obj! {
            "rung" => self.rung as u64,
            "candidates" => Value::Array(self.candidates.iter().map(|&c| Value::from(c)).collect()),
            "issued" => self.issued,
            "job_ids" => Value::Array(self.job_ids.iter().map(|j| Value::from(j.to_base32())).collect()),
            "decisions" => Value::Array(self.decisions.clone()),
        }
    }
}

impl WireDecode for FrontierDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let job_ids = value
            .get("job_ids")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|j| {
                        j.as_str()
                            .and_then(|s| Id::parse_base32(s).ok())
                            .ok_or_else(|| WireError::Invalid("bad frontier job id".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(Self {
            rung: req_u32(codec::lenient_u64(value, "rung").unwrap_or(0)),
            candidates: value
                .get("candidates")
                .and_then(Value::as_array)
                .map(|items| items.iter().filter_map(Value::as_u64).collect())
                .unwrap_or_default(),
            issued: codec::lenient_u64(value, "issued").unwrap_or(0),
            job_ids,
            decisions: codec::arr_or_empty(value, "decisions"),
        })
    }
}

/// Per-job resource budget declared on an experiment and copied onto every
/// job it materializes. Each dimension is independent and optional; the
/// agent-side watchdog terminates a run the first time any present limit is
/// breached. Encodes as an object carrying only the present dimensions, and
/// the whole document is omitted from experiment/job bodies when no
/// dimension is set — pre-budget documents stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBudget {
    /// Combined user+system CPU time, milliseconds.
    pub cpu_millis: Option<u64>,
    /// Peak resident-set size, KiB.
    pub max_rss_kib: Option<u64>,
    /// Combined storage-layer read+write bytes.
    pub io_bytes: Option<u64>,
    /// Wall-clock runtime, milliseconds.
    pub wall_millis: Option<u64>,
}

impl JobBudget {
    /// Whether no dimension is budgeted (the document is omitted then).
    pub fn is_empty(&self) -> bool {
        self.cpu_millis.is_none()
            && self.max_rss_kib.is_none()
            && self.io_bytes.is_none()
            && self.wall_millis.is_none()
    }
}

impl WireEncode for JobBudget {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        if let Some(cpu) = self.cpu_millis {
            map.insert("cpu_millis".into(), Value::from(cpu));
        }
        if let Some(rss) = self.max_rss_kib {
            map.insert("max_rss_kib".into(), Value::from(rss));
        }
        if let Some(io) = self.io_bytes {
            map.insert("io_bytes".into(), Value::from(io));
        }
        if let Some(wall) = self.wall_millis {
            map.insert("wall_millis".into(), Value::from(wall));
        }
        Value::Object(map)
    }
}

impl WireDecode for JobBudget {
    fn decode(value: &Value) -> Result<Self, WireError> {
        if !matches!(value, Value::Object(_)) {
            return Err(WireError::BadField("budget"));
        }
        Ok(Self {
            cpu_millis: codec::lenient_u64(value, "cpu_millis"),
            max_rss_kib: codec::lenient_u64(value, "max_rss_kib"),
            io_bytes: codec::lenient_u64(value, "io_bytes"),
            wall_millis: codec::lenient_u64(value, "wall_millis"),
        })
    }
}

/// An experiment: a parameterised evaluation template. `parameters` holds
/// the `ParamAssignments` document verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDto {
    pub id: Id,
    pub project_id: Id,
    pub system_id: Id,
    pub name: String,
    pub description: String,
    pub parameters: Value,
    pub archived: bool,
    pub created_at: u64,
    /// Exploration strategy. `None` means grid and is omitted on the wire,
    /// keeping pre-strategy documents byte-identical.
    pub strategy: Option<StrategyDto>,
    /// Per-job resource budget; omitted on the wire when unset so
    /// pre-budget documents stay byte-identical.
    pub budget: Option<JobBudget>,
}

impl WireEncode for ExperimentDto {
    fn to_value(&self) -> Value {
        let mut doc = obj! {
            "id" => self.id.to_base32(),
            "project_id" => self.project_id.to_base32(),
            "system_id" => self.system_id.to_base32(),
            "name" => self.name.as_str(),
            "description" => self.description.as_str(),
            "parameters" => self.parameters.clone(),
            "archived" => self.archived,
            "created_at" => self.created_at,
        };
        if let Some(strategy) = &self.strategy {
            doc.set("strategy", strategy.to_value());
        }
        if let Some(budget) = &self.budget {
            doc.set("budget", budget.to_value());
        }
        doc
    }
}

impl WireDecode for ExperimentDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            project_id: codec::req_id(value, "project_id")?,
            system_id: codec::req_id(value, "system_id")?,
            name: codec::req_str(value, "name")?,
            description: codec::str_or(value, "description", ""),
            parameters: value
                .get("parameters")
                .cloned()
                .unwrap_or_else(|| Value::Object(Map::new())),
            archived: value.get("archived").and_then(Value::as_bool).unwrap_or(false),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
            strategy: value.get("strategy").map(StrategyDto::decode).transpose()?,
            budget: value.get("budget").map(JobBudget::decode).transpose()?,
        })
    }
}

/// An evaluation: one execution of an experiment, fanned out into jobs.
///
/// Lazy evaluations additionally carry their job-source state (`strategy`,
/// `total_points`, `materialized`, and for adaptive runs the `frontier`).
/// All four are optional and omitted when absent, so pre-refactor
/// documents and fixtures stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationDto {
    pub id: Id,
    pub experiment_id: Id,
    pub job_ids: Vec<Id>,
    pub swept_params: Vec<String>,
    pub created_at: u64,
    pub strategy: Option<StrategyDto>,
    pub total_points: Option<u64>,
    pub materialized: Option<u64>,
    pub frontier: Option<FrontierDto>,
}

impl EvaluationDto {
    /// The `GET /evaluations/:id` detail body: the evaluation document with
    /// the status roll-up appended under `"status"`.
    pub fn detail_value(&self, status: &EvaluationStatusDto) -> Value {
        let mut doc = self.to_value();
        doc.set("status", status.to_value());
        doc
    }
}

impl WireEncode for EvaluationDto {
    fn to_value(&self) -> Value {
        let mut doc = obj! {
            "id" => self.id.to_base32(),
            "experiment_id" => self.experiment_id.to_base32(),
            "job_ids" => Value::Array(self.job_ids.iter().map(|j| Value::from(j.to_base32())).collect()),
            "swept_params" => Value::Array(self.swept_params.iter().map(|s| Value::from(s.as_str())).collect()),
            "created_at" => self.created_at,
        };
        if let Some(strategy) = &self.strategy {
            doc.set("strategy", strategy.to_value());
        }
        if let Some(total_points) = self.total_points {
            doc.set("total_points", total_points);
        }
        if let Some(materialized) = self.materialized {
            doc.set("materialized", materialized);
        }
        if let Some(frontier) = &self.frontier {
            doc.set("frontier", frontier.to_value());
        }
        doc
    }
}

impl WireDecode for EvaluationDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let job_ids = value
            .get("job_ids")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|j| {
                        j.as_str()
                            .and_then(|s| Id::parse_base32(s).ok())
                            .ok_or_else(|| WireError::Invalid("bad job id".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(Self {
            id: codec::req_id(value, "id")?,
            experiment_id: codec::req_id(value, "experiment_id")?,
            job_ids,
            swept_params: value
                .get("swept_params")
                .and_then(Value::as_array)
                .map(|items| items.iter().filter_map(Value::as_str).map(str::to_string).collect())
                .unwrap_or_default(),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
            strategy: value.get("strategy").map(StrategyDto::decode).transpose()?,
            total_points: codec::lenient_u64(value, "total_points"),
            materialized: codec::lenient_u64(value, "materialized"),
            frontier: value.get("frontier").map(FrontierDto::decode).transpose()?,
        })
    }
}

/// The per-evaluation job-state roll-up. All fields (including the derived
/// `total`/`settled`/`progress_percent`) are carried verbatim so the
/// encode stays a pure projection of what the scheduler computed.
/// `remaining_space` counts not-yet-materialized points of a lazy
/// evaluation; it is omitted for fully-materialized (pre-refactor)
/// evaluations so their status bodies stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationStatusDto {
    pub scheduled: usize,
    pub running: usize,
    pub finished: usize,
    pub aborted: usize,
    pub failed: usize,
    /// Jobs quarantined after exhausting their attempts. Encoded only when
    /// non-zero so pre-quarantine status bodies stay byte-identical.
    pub quarantined: usize,
    pub total: usize,
    pub settled: bool,
    pub progress_percent: u8,
    pub remaining_space: Option<u64>,
}

impl WireEncode for EvaluationStatusDto {
    fn to_value(&self) -> Value {
        let mut doc = obj! {
            "scheduled" => self.scheduled,
            "running" => self.running,
            "finished" => self.finished,
            "aborted" => self.aborted,
            "failed" => self.failed,
            "total" => self.total,
            "settled" => self.settled,
            "progress_percent" => self.progress_percent as i64,
        };
        if self.quarantined > 0 {
            doc.set("quarantined", self.quarantined as u64);
        }
        if let Some(remaining) = self.remaining_space {
            doc.set("remaining_space", remaining);
        }
        doc
    }
}

impl WireDecode for EvaluationStatusDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let count = |field: &str| codec::lenient_u64(value, field).unwrap_or(0) as usize;
        Ok(Self {
            scheduled: count("scheduled"),
            running: count("running"),
            finished: count("finished"),
            aborted: count("aborted"),
            failed: count("failed"),
            quarantined: count("quarantined"),
            total: count("total"),
            settled: value.get("settled").and_then(Value::as_bool).unwrap_or(false),
            progress_percent: codec::lenient_u64(value, "progress_percent").unwrap_or(0).min(100)
                as u8,
            remaining_space: codec::lenient_u64(value, "remaining_space"),
        })
    }
}

/// One timeline entry on a job. The human-readable `time` field is derived
/// from `at` on encode and ignored on decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEventDto {
    pub at: u64,
    pub kind: String,
    pub message: String,
}

impl WireEncode for TimelineEventDto {
    fn to_value(&self) -> Value {
        obj! {
            "at" => self.at,
            "time" => chronos_util::clock::format_timestamp(self.at),
            "kind" => self.kind.as_str(),
            "message" => self.message.as_str(),
        }
    }
}

impl WireDecode for TimelineEventDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            at: codec::lenient_u64(value, "at").unwrap_or(0),
            kind: codec::str_or(value, "kind", ""),
            message: codec::str_or(value, "message", ""),
        })
    }
}

/// A job document: the full wire view served by `GET /jobs/:id`, claim
/// responses, and (trimmed via [`JobDto::summary_value`]) job listings.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDto {
    pub id: Id,
    pub evaluation_id: Id,
    pub system_id: Id,
    pub parameters: Value,
    pub state: JobState,
    pub deployment_id: Option<Id>,
    pub progress: u8,
    pub log: String,
    pub timeline: Vec<TimelineEventDto>,
    pub heartbeat_at: Option<u64>,
    pub attempts: u32,
    pub claim_key: Option<String>,
    pub result_key: Option<String>,
    pub result_id: Option<Id>,
    pub failure: Option<String>,
    pub created_at: u64,
    /// Index of this job's point in the evaluation's parameter space.
    /// Present only on lazily-materialized jobs; omitted on the wire when
    /// absent so pre-refactor job documents stay byte-identical.
    pub point_index: Option<u64>,
    /// Resource budget copied from the experiment at materialization;
    /// omitted on the wire when unset.
    pub budget: Option<JobBudget>,
}

impl JobDto {
    fn build_value(&self, with_details: bool) -> Value {
        let mut map = Map::new();
        map.insert("id".into(), Value::from(self.id.to_base32()));
        map.insert("evaluation_id".into(), Value::from(self.evaluation_id.to_base32()));
        map.insert("system_id".into(), Value::from(self.system_id.to_base32()));
        map.insert("parameters".into(), self.parameters.clone());
        map.insert("state".into(), Value::from(self.state.as_str()));
        map.insert("deployment_id".into(), Value::from(self.deployment_id.map(|d| d.to_base32())));
        map.insert("progress".into(), Value::from(self.progress as i64));
        if with_details {
            map.insert("log".into(), Value::from(self.log.as_str()));
            map.insert(
                "timeline".into(),
                Value::Array(self.timeline.iter().map(TimelineEventDto::to_value).collect()),
            );
        }
        map.insert("heartbeat_at".into(), Value::from(self.heartbeat_at));
        map.insert("attempts".into(), Value::from(self.attempts as i64));
        map.insert("claim_key".into(), Value::from(self.claim_key.clone()));
        map.insert("result_key".into(), Value::from(self.result_key.clone()));
        map.insert("result_id".into(), Value::from(self.result_id.map(|r| r.to_base32())));
        map.insert("failure".into(), Value::from(self.failure.clone()));
        map.insert("created_at".into(), Value::from(self.created_at));
        if let Some(point_index) = self.point_index {
            map.insert("point_index".into(), Value::from(point_index));
        }
        if let Some(budget) = &self.budget {
            map.insert("budget".into(), budget.to_value());
        }
        Value::Object(map)
    }

    /// The listing view: same document with the potentially large `log`
    /// and `timeline` omitted.
    pub fn summary_value(&self) -> Value {
        self.build_value(false)
    }
}

impl WireEncode for JobDto {
    fn to_value(&self) -> Value {
        self.build_value(true)
    }
}

impl WireDecode for JobDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        let state_name = codec::req_str(value, "state")?;
        Ok(Self {
            id: codec::req_id(value, "id")?,
            evaluation_id: codec::req_id(value, "evaluation_id")?,
            system_id: codec::req_id(value, "system_id")?,
            parameters: value.get("parameters").cloned().unwrap_or(Value::Null),
            state: JobState::parse(&state_name).ok_or(WireError::BadField("state"))?,
            deployment_id: codec::opt_id(value, "deployment_id")?,
            progress: codec::lenient_u64(value, "progress").unwrap_or(0).min(100) as u8,
            log: codec::str_or(value, "log", ""),
            timeline: value
                .get("timeline")
                .and_then(Value::as_array)
                .map(|items| items.iter().map(TimelineEventDto::decode).collect())
                .transpose()?
                .unwrap_or_default(),
            heartbeat_at: codec::lenient_u64(value, "heartbeat_at"),
            attempts: req_u32(codec::lenient_u64(value, "attempts").unwrap_or(1)),
            claim_key: codec::opt_str(value, "claim_key"),
            result_key: codec::opt_str(value, "result_key"),
            result_id: codec::opt_id(value, "result_id")?,
            failure: codec::opt_str(value, "failure"),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
            point_index: codec::lenient_u64(value, "point_index"),
            budget: value.get("budget").map(JobBudget::decode).transpose()?,
        })
    }
}

/// A job result document. The archive itself is served from the dedicated
/// `archive.zip` endpoint; the document only reports its size.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResultDto {
    pub id: Id,
    pub job_id: Id,
    pub data: Value,
    pub archive_bytes: usize,
    pub created_at: u64,
}

impl WireEncode for JobResultDto {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "job_id" => self.job_id.to_base32(),
            "data" => self.data.clone(),
            "archive_bytes" => self.archive_bytes,
            "created_at" => self.created_at,
        }
    }
}

impl WireDecode for JobResultDto {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            job_id: codec::req_id(value, "job_id")?,
            data: value.get("data").cloned().unwrap_or(Value::Null),
            archive_bytes: codec::lenient_u64(value, "archive_bytes").unwrap_or(0) as usize,
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
        })
    }
}

/// A served user document — the password hash never crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserPublic {
    pub id: Id,
    pub username: String,
    pub role: String,
    pub created_at: u64,
}

impl WireEncode for UserPublic {
    fn to_value(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "username" => self.username.as_str(),
            "role" => self.role.as_str(),
            "created_at" => self.created_at,
        }
    }
}

impl WireDecode for UserPublic {
    fn decode(value: &Value) -> Result<Self, WireError> {
        Ok(Self {
            id: codec::req_id(value, "id")?,
            username: codec::req_str(value, "username")?,
            role: codec::str_or(value, "role", "member"),
            created_at: codec::lenient_u64(value, "created_at").unwrap_or(0),
        })
    }
}
