//! Encode/decode codec over `chronos-json`.
//!
//! [`WireEncode`] renders a DTO through the allocation-free `write_into`
//! path; [`WireDecode`] parses one out of a `Value` with typed errors.
//! The field accessors at the bottom are the **only** place in the
//! workspace where raw `Value::get`/`as_str` pointer-chasing on wire
//! documents is allowed — handlers and clients go through DTOs.

use crate::error::WireError;
use chronos_json::Value;
use chronos_util::Id;

/// A type with a canonical wire representation.
pub trait WireEncode {
    /// Builds the wire `Value` (maps are written in insertion order, so the
    /// implementation fixes the canonical key order).
    fn to_value(&self) -> Value;

    /// Appends the compact JSON encoding to `out` without intermediate
    /// allocations beyond the `Value` tree itself.
    fn encode_into(&self, out: &mut String) {
        self.to_value().write_into(out);
    }

    /// The compact JSON encoding as a string.
    fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }
}

/// A type that can be decoded from its wire representation.
pub trait WireDecode: Sized {
    /// Decodes from a parsed `Value`.
    fn decode(value: &Value) -> Result<Self, WireError>;

    /// Parses and decodes a raw JSON body.
    fn decode_slice(bytes: &[u8]) -> Result<Self, WireError> {
        let text = String::from_utf8_lossy(bytes);
        let value =
            chronos_json::parse(&text).map_err(|e| WireError::MalformedBody(e.to_string()))?;
        Self::decode(&value)
    }
}

// ---------------------------------------------------------------------------
// Field accessors (the one sanctioned pointer-chasing site)
// ---------------------------------------------------------------------------

/// Required string field.
pub fn req_str(value: &Value, field: &'static str) -> Result<String, WireError> {
    value.get(field).and_then(Value::as_str).map(str::to_string).ok_or(WireError::Missing(field))
}

/// Optional string field (`null` and absent are both `None`).
pub fn opt_str(value: &Value, field: &str) -> Option<String> {
    value.get(field).and_then(Value::as_str).map(str::to_string)
}

/// Optional string field with a default for absent/`null`.
pub fn str_or(value: &Value, field: &str, default: &str) -> String {
    opt_str(value, field).unwrap_or_else(|| default.to_string())
}

/// Required id field; absent renders `missing field`, unparsable `bad <field>`.
pub fn req_id(value: &Value, field: &'static str) -> Result<Id, WireError> {
    let raw = value.get(field).and_then(Value::as_str).ok_or(WireError::Missing(field))?;
    Id::parse_base32(raw).map_err(|_| WireError::BadField(field))
}

/// Optional id field; present-but-unparsable is an error.
pub fn opt_id(value: &Value, field: &'static str) -> Result<Option<Id>, WireError> {
    match value.get(field) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => {
            let raw = v.as_str().ok_or(WireError::BadField(field))?;
            Id::parse_base32(raw).map(Some).map_err(|_| WireError::BadField(field))
        }
    }
}

/// Required boolean field; renders `missing boolean "<field>"` when absent
/// or ill-typed (legacy phrasing for `POST /deployments/:id/active`).
pub fn req_bool(value: &Value, field: &'static str) -> Result<bool, WireError> {
    value
        .get(field)
        .and_then(Value::as_bool)
        .ok_or(WireError::MissingTyped { field, ty: "boolean" })
}

/// Optional unsigned integer; present-but-ill-typed is an error.
pub fn opt_u64(value: &Value, field: &'static str) -> Result<Option<u64>, WireError> {
    match value.get(field) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or(WireError::OutOfRange { field, expected: "an unsigned integer" }),
    }
}

/// Optional unsigned integer clamped to `u64` with absent/`null` → `None`,
/// silently ignoring ill-typed values (legacy-lenient decode paths only).
pub fn lenient_u64(value: &Value, field: &str) -> Option<u64> {
    value.get(field).and_then(Value::as_u64)
}

/// Optional field cloned out of the document.
pub fn opt_value(value: &Value, field: &str) -> Option<Value> {
    value.get(field).filter(|v| !v.is_null()).cloned()
}

/// Required field cloned out of the document.
pub fn req_value(value: &Value, field: &'static str) -> Result<Value, WireError> {
    value.get(field).filter(|v| !v.is_null()).cloned().ok_or(WireError::Missing(field))
}

/// Optional array field, cloned element-wise; absent/`null` → empty.
pub fn arr_or_empty(value: &Value, field: &str) -> Vec<Value> {
    value.get(field).and_then(Value::as_array).cloned().unwrap_or_default()
}
