//! chronos-api: the typed wire contract for the Chronos REST API.
//!
//! This crate is the single source of truth for everything that crosses
//! the wire between the control server, agents, and integrators:
//!
//! - **DTOs** for every v1 endpoint ([`v1`]) and the frozen v0 status
//!   surface ([`v0`]), with canonical key order baked into the encoders.
//! - A **codec** ([`WireEncode`]/[`WireDecode`]) over `chronos-json`,
//!   using the allocation-free `write_into` path for encoding.
//! - The **error envelope** ([`ErrorEnvelope`]) with numeric and named
//!   codes (`lease_lost`), replacing ad-hoc `error/code` pointer-chasing.
//! - **Version negotiation** ([`ApiVersion`]) for the mounted API
//!   generations.
//! - The wire vocabulary for **job lifecycle states** ([`JobState`]);
//!   transition legality lives in `chronos-core::lifecycle`.
//!
//! Server handlers and client code never touch raw `Value` field access
//! for contract documents — the accessors in [`codec`] are the only
//! sanctioned site.

pub mod codec;
mod envelope;
mod error;
pub mod extract;
mod state;
pub mod v0;
pub mod v1;
mod version;

pub use codec::{WireDecode, WireEncode};
pub use envelope::{
    ErrorCode, ErrorEnvelope, CODE_DEADLINE_EXCEEDED, CODE_DRAINING, CODE_LEASE_LOST,
    CODE_NOT_LEADER, CODE_OVERLOADED,
};
pub use error::WireError;
pub use state::JobState;
pub use version::{ApiIndex, ApiVersion, SERVICE_NAME};

/// Header carrying the session token on every authenticated request.
pub const TOKEN_HEADER: &str = "X-Chronos-Token";

/// Request header carrying the caller's processing budget in milliseconds
/// (re-exported from `chronos-http`, which parses it into
/// `Request::deadline`).
pub use chronos_http::DEADLINE_HEADER;

/// Response header mirroring `Retry-After` with millisecond precision.
pub use chronos_http::RETRY_AFTER_MS_HEADER;
