//! Property tests for the wire contract: `decode(encode(dto)) == dto` for
//! every DTO, through the full text path (DTO → `write_into` bytes →
//! `parse` → decode). Key-order stability is covered separately by the
//! golden fixtures in the workspace root; these tests pin the *information*
//! content of the codec, including boundary ids, attempts and progress.

use chronos_api::v1;
use chronos_api::{v0, ApiIndex, ErrorEnvelope, JobState, WireDecode, WireEncode};
use chronos_json::{obj, Value};
use chronos_util::Id;
use proptest::prelude::*;

/// Full-fidelity roundtrip through the encoded bytes *and* the value tree.
fn roundtrip<T>(dto: &T)
where
    T: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
{
    let decoded = T::decode_slice(dto.encode().as_bytes()).expect("decode of own encoding");
    assert_eq!(&decoded, dto, "text roundtrip must be lossless");
    let decoded = T::decode(&dto.to_value()).expect("decode of own value tree");
    assert_eq!(&decoded, dto, "tree roundtrip must be lossless");
}

/// `Option<V>` strategy (the shim has no `prop::option`).
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), s).prop_map(|(some, v)| if some { Some(v) } else { None })
}

/// Ids over the full 128-bit space; `any::<u64>()` is edge-biased, so both
/// halves regularly hit 0 and `u64::MAX`.
fn arb_id() -> impl Strategy<Value = Id> {
    (any::<u64>(), any::<u64>())
        .prop_map(|(hi, lo)| Id::from_u128(((hi as u128) << 64) | lo as u128))
}

fn arb_u32() -> impl Strategy<Value = u32> {
    any::<u64>().prop_map(|x| x as u32)
}

/// Timestamps stay within `i64` so they encode as JSON integers.
fn arb_ts() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|x| x >> 1)
}

fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 _.:/-]{0,12}"
}

/// u64 payloads that stay within `i64` so they encode as JSON integers.
fn arb_u64() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|x| x >> 1)
}

fn arb_strategy() -> impl Strategy<Value = v1::StrategyDto> {
    prop_oneof![
        Just(v1::StrategyDto::Grid),
        (arb_u64(), opt(1u64..1_000_000), 2u64..16, arb_text(), any::<bool>()).prop_map(
            |(seed, initial, eta, metric, maximize)| v1::StrategyDto::Adaptive {
                seed,
                initial,
                eta,
                metric: format!("/{metric}"),
                maximize,
            }
        ),
    ]
}

fn arb_frontier() -> impl Strategy<Value = v1::FrontierDto> {
    (
        0u32..8,
        prop::collection::vec(arb_u64(), 0..4),
        0u64..4,
        prop::collection::vec(arb_id(), 0..3),
        prop::collection::vec(arb_doc(), 0..2),
    )
        .prop_map(|(rung, candidates, issued, job_ids, decisions)| v1::FrontierDto {
            rung,
            candidates,
            issued,
            job_ids,
            decisions,
        })
}

fn arb_state() -> impl Strategy<Value = JobState> {
    prop_oneof![
        Just(JobState::Scheduled),
        Just(JobState::Running),
        Just(JobState::Finished),
        Just(JobState::Aborted),
        Just(JobState::Failed),
        Just(JobState::Quarantined),
    ]
}

fn arb_budget() -> impl Strategy<Value = v1::JobBudget> {
    (opt(1u64..1_000_000), opt(1u64..1_000_000), opt(1u64..1_000_000), opt(1u64..1_000_000))
        .prop_map(|(cpu_millis, max_rss_kib, io_bytes, wall_millis)| v1::JobBudget {
            cpu_millis,
            max_rss_kib,
            io_bytes,
            wall_millis,
        })
}

/// Small parameter/measurement documents (ints only: float formatting is
/// pinned by fixtures, not roundtripped here).
fn arb_doc() -> impl Strategy<Value = Value> {
    prop::collection::vec(("[a-z]{1,6}", any::<i64>()), 0..4).prop_map(|pairs| {
        let mut doc = obj! {};
        for (k, v) in pairs {
            doc.set(&k, v);
        }
        doc
    })
}

proptest! {
    #[test]
    fn auth_and_user_dtos(
        username in arb_text(), password in arb_text(), token in arb_text(),
        (revoked, role) in (any::<bool>(), opt(arb_text())),
        id in arb_id(), created_at in arb_ts(),
    ) {
        roundtrip(&v1::LoginRequest { username: username.clone(), password: password.clone() });
        roundtrip(&v1::LoginResponse { token });
        roundtrip(&v1::LogoutResponse { revoked });
        roundtrip(&v1::CreateUserRequest { username: username.clone(), password, role });
        roundtrip(&v1::UserPublic {
            id,
            username,
            role: "viewer".into(),
            created_at,
        });
    }

    #[test]
    fn management_request_dtos(
        (environment, version, active) in (arb_text(), arb_text(), any::<bool>()),
        (name, description, build) in (arb_text(), arb_text(), arb_text()),
        (user_id, system_id, experiment_id) in (arb_id(), arb_id(), arb_id()),
        parameters in opt(arb_doc()),
        strategy in opt(arb_strategy()),
        budget in opt(arb_budget()),
    ) {
        roundtrip(&v1::CreateDeploymentRequest { environment, version });
        roundtrip(&v1::SetDeploymentActiveRequest { active });
        roundtrip(&v1::CreateProjectRequest { name: name.clone(), description: description.clone() });
        roundtrip(&v1::AddProjectMemberRequest { user_id });
        roundtrip(&v1::CreateExperimentRequest { name, system_id, description, parameters, strategy, budget });
        roundtrip(&v1::TriggerBuildRequest { experiment_id, build: build.clone() });
        roundtrip(&v1::TriggerBuildResponse {
            evaluation: obj! {"id" => experiment_id.to_base32()},
            build,
            jobs: 4,
        });
    }

    #[test]
    fn entity_dtos(
        (id, other, third) in (arb_id(), arb_id(), arb_id()),
        (name, description) in (arb_text(), arb_text()),
        (flag, created_at) in (any::<bool>(), arb_ts()),
        members in prop::collection::vec(arb_id(), 0..4),
        swept in prop::collection::vec("[a-z]{1,6}", 0..3),
        (doc, strategy, frontier, total_points, materialized, budget) in (
            arb_doc(),
            opt(arb_strategy()),
            opt(arb_frontier()),
            opt(arb_u64()),
            opt(arb_u64()),
            opt(arb_budget()),
        ),
    ) {
        roundtrip(&v1::SystemDto {
            id,
            name: name.clone(),
            description: description.clone(),
            parameters: vec![doc.clone()],
            charts: vec![],
            created_at,
        });
        roundtrip(&v1::DeploymentDto {
            id,
            system_id: other,
            environment: name.clone(),
            version: description.clone(),
            active: flag,
            created_at,
        });
        roundtrip(&v1::ProjectDto {
            id,
            name: name.clone(),
            description: description.clone(),
            members: members.clone(),
            archived: flag,
            created_at,
        });
        roundtrip(&v1::ExperimentDto {
            id,
            project_id: other,
            system_id: third,
            name,
            description,
            parameters: doc.clone(),
            archived: flag,
            created_at,
            strategy: strategy.clone(),
            budget,
        });
        roundtrip(&v1::EvaluationDto {
            id,
            experiment_id: other,
            job_ids: members,
            swept_params: swept,
            created_at,
            strategy,
            total_points,
            materialized,
            frontier,
        });
        roundtrip(&v1::JobResultDto {
            id,
            job_id: other,
            data: doc,
            archive_bytes: created_at as usize,
            created_at,
        });
    }

    #[test]
    fn status_dtos(
        counts in prop::collection::vec(0u64..1_000_000, 6..7),
        settled in any::<bool>(), percent in 0u8..=100,
        id in arb_id(),
        remaining in opt(1u64..1_000_000),
        (stats_remaining, quarantined) in (0u64..1_000_000, 0u64..1_000_000),
    ) {
        let counts: Vec<usize> = counts.into_iter().map(|c| c as usize).collect();
        roundtrip(&v1::EvaluationStatusDto {
            scheduled: counts[0],
            running: counts[1],
            finished: counts[2],
            aborted: counts[3],
            failed: counts[4],
            quarantined: quarantined as usize,
            total: counts[5],
            settled,
            progress_percent: percent,
            remaining_space: remaining,
        });
        roundtrip(&v1::StatsResponse {
            scheduled: counts[0],
            running: counts[1],
            finished: counts[2],
            aborted: counts[3],
            failed: counts[4],
            quarantined: quarantined as usize,
            remaining_space: stats_remaining,
            systems: counts[5],
            projects: counts[0],
        });
        roundtrip(&v0::EvaluationStatusV0 {
            id,
            open: counts[0],
            closed: counts[1],
            percent,
        });
    }

    #[test]
    fn job_and_timeline_dtos(
        (id, evaluation_id, system_id, deployment_id, result_id) in
            (arb_id(), arb_id(), arb_id(), opt(arb_id()), opt(arb_id())),
        (state, progress, attempts) in (arb_state(), 0u8..=100, arb_u32()),
        (log, failure, claim_key, result_key) in
            (arb_text(), opt(arb_text()), opt(arb_text()), opt(arb_text())),
        (heartbeat_at, created_at, point_index) in (opt(arb_ts()), arb_ts(), opt(arb_u64())),
        timeline in prop::collection::vec((arb_ts(), "[a-z]{1,8}", arb_text()), 0..3),
        (doc, budget) in (arb_doc(), opt(arb_budget())),
    ) {
        let timeline: Vec<_> = timeline
            .into_iter()
            .map(|(at, kind, message)| v1::TimelineEventDto { at, kind, message })
            .collect();
        for event in &timeline {
            roundtrip(event);
        }
        let job = v1::JobDto {
            id,
            evaluation_id,
            system_id,
            parameters: doc.clone(),
            state,
            deployment_id,
            progress,
            log,
            timeline,
            heartbeat_at,
            attempts,
            claim_key,
            result_key,
            result_id,
            failure,
            created_at,
            point_index,
            budget,
        };
        roundtrip(&job);
        // The summary view drops only the details: decoding it yields the
        // same job with an empty log/timeline.
        let summary = v1::JobDto::decode(&job.summary_value()).unwrap();
        prop_assert_eq!(summary.log, "");
        prop_assert!(summary.timeline.is_empty());
        prop_assert_eq!(summary.id, job.id);
        prop_assert_eq!(summary.attempts, job.attempts);
        roundtrip(&v0::JobStatusV0 { id, status: state, percent: progress, evaluation: evaluation_id });
    }

    #[test]
    fn agent_protocol_dtos(
        (deployment_id, id, other) in (arb_id(), arb_id(), arb_id()),
        (key, progress, attempt) in (opt(arb_text()), opt(0u8..=100), opt(arb_u32())),
        (state, ack_progress, attempts) in (arb_state(), 0u8..=100, arb_u32()),
        reason in arb_text(),
        archive in prop::collection::vec(any::<u8>(), 0..64),
        (data, budget) in (arb_doc(), opt(arb_budget())),
    ) {
        roundtrip(&v1::ClaimRequest { deployment_id, idempotency_key: key.clone() });
        roundtrip(&v1::ClaimedJob {
            id,
            evaluation_id: other,
            parameters: data.clone(),
            attempts,
            budget,
        });
        roundtrip(&v1::HeartbeatRequest { progress, attempt });
        roundtrip(&v1::HeartbeatAck { state, progress: ack_progress });
        roundtrip(&v1::FailRequest { reason, attempt });
        roundtrip(&v1::UploadResultRequest {
            data,
            archive,
            attempt,
            idempotency_key: key,
        });
    }

    #[test]
    fn error_envelope_roundtrips(
        status in 100u64..600, named in any::<bool>(), message in arb_text(),
    ) {
        let envelope = if named {
            ErrorEnvelope::named("lease_lost", message)
        } else {
            ErrorEnvelope::status(status as u16, message)
        };
        roundtrip(&envelope);
    }
}

#[test]
fn boundary_values_roundtrip() {
    // Ids at both ends of the 128-bit space.
    for raw in [0u128, 1, u128::MAX - 1, u128::MAX] {
        roundtrip(&v1::AddProjectMemberRequest { user_id: Id::from_u128(raw) });
    }
    // Attempt numbers at the fencing-token extremes.
    for attempt in [0u32, 1, u32::MAX - 1, u32::MAX] {
        roundtrip(&v1::HeartbeatRequest { progress: Some(0), attempt: Some(attempt) });
        roundtrip(&v1::FailRequest { reason: "r".into(), attempt: Some(attempt) });
        roundtrip(&v1::ClaimedJob {
            id: Id::from_u128(7),
            evaluation_id: Id::from_u128(8),
            parameters: obj! {},
            attempts: attempt,
            budget: None,
        });
    }
    // Progress at the clamp edges.
    for progress in [0u8, 1, 99, 100] {
        roundtrip(&v1::HeartbeatRequest { progress: Some(progress), attempt: None });
        roundtrip(&v1::HeartbeatAck { state: JobState::Running, progress });
    }
}

#[test]
fn strings_with_escapes_roundtrip() {
    // The proptest character classes stay conservative; this pins the
    // JSON-escaping corners explicitly.
    for tricky in ["", "a\"b", "back\\slash", "tab\there", "line\nbreak", "üñîçødé 😀"] {
        roundtrip(&v1::LoginRequest { username: tricky.into(), password: tricky.into() });
        roundtrip(&v1::FailRequest { reason: tricky.into(), attempt: None });
        roundtrip(&ErrorEnvelope::status(400, tricky));
    }
}

#[test]
fn api_index_roundtrips() {
    let index = ApiIndex::default();
    roundtrip(&index);
}
