//! A scaled-down TPC-C-style transactional workload ("tpcc-lite").
//!
//! The Chronos paper's future work is to "develop a Chronos Agent that
//! wraps the OLTP-Bench so as to combine both systems" — OLTP-Bench's
//! flagship workload being TPC-C. This module implements that direction:
//! a self-contained generator for the five TPC-C transaction profiles with
//! the standard mix (45% New-Order, 43% Payment, 4% each Order-Status,
//! Delivery, Stock-Level), the NURand non-uniform key distribution, and a
//! scaled-down population (fewer customers/items than the spec, same
//! structure) sized for embedded-store benchmarking.
//!
//! The generator emits *logical* transactions; executing them against a
//! store (as document reads/writes, without multi-document atomicity —
//! faithful to the MongoDB generation the demo targets) is the evaluation
//! client's job (`chronos-agent`'s `TpccClient`).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::Rng;

use crate::generators::seeded_rng;

/// Districts per warehouse (TPC-C spec value).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
/// Customers per district (scaled down from the spec's 3000).
pub const CUSTOMERS_PER_DISTRICT: u64 = 60;
/// Items in the catalog (scaled down from the spec's 100000).
pub const ITEMS: u64 = 1_000;
/// NURand constant A for customer selection.
const NURAND_A_CUSTOMER: u64 = 1023;
/// NURand constant A for item selection.
const NURAND_A_ITEM: u64 = 8191;

/// Configuration for a tpcc-lite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpccConfig {
    /// Number of warehouses (the scale factor).
    pub warehouses: u64,
    /// Transactions per run (across all threads).
    pub transaction_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig { warehouses: 2, transaction_count: 1_000, seed: 7 }
    }
}

/// One logical TPC-C transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TpccTx {
    /// New-Order: the measured transaction (tpmC counts these).
    NewOrder {
        /// Home warehouse.
        warehouse: u64,
        /// District within the warehouse.
        district: u64,
        /// Ordering customer.
        customer: u64,
        /// `(item id, supplying warehouse, quantity)` per order line.
        lines: Vec<(u64, u64, u32)>,
    },
    /// Payment against a customer's balance.
    Payment {
        /// Home warehouse.
        warehouse: u64,
        /// District.
        district: u64,
        /// Paying customer.
        customer: u64,
        /// Payment amount (cents).
        amount_cents: u64,
    },
    /// Order-Status: read a customer's most recent order.
    OrderStatus {
        /// Warehouse.
        warehouse: u64,
        /// District.
        district: u64,
        /// Customer.
        customer: u64,
    },
    /// Delivery: process the oldest undelivered order of each district.
    Delivery {
        /// Warehouse.
        warehouse: u64,
        /// Carrier assigned to the delivery batch.
        carrier: u32,
    },
    /// Stock-Level: count items below a threshold in a district's recent
    /// orders.
    StockLevel {
        /// Warehouse.
        warehouse: u64,
        /// District.
        district: u64,
        /// Stock threshold.
        threshold: u32,
    },
}

impl TpccTx {
    /// Metric label for this transaction type.
    pub fn kind(&self) -> &'static str {
        match self {
            TpccTx::NewOrder { .. } => "new_order",
            TpccTx::Payment { .. } => "payment",
            TpccTx::OrderStatus { .. } => "order_status",
            TpccTx::Delivery { .. } => "delivery",
            TpccTx::StockLevel { .. } => "stock_level",
        }
    }
}

/// TPC-C's non-uniform random distribution.
fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64, c: u64) -> u64 {
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % (y - x + 1)) + x
}

/// Shared state for one tpcc-lite run: per-thread transaction streams with
/// a shared order-id sequence (order keys never collide across threads).
#[derive(Debug)]
pub struct TpccRunner {
    config: TpccConfig,
    next_order_id: AtomicU64,
    /// Run-constant NURand C values (per the spec they are chosen once).
    c_customer: u64,
    c_item: u64,
}

impl TpccRunner {
    /// Creates a runner. Fails when the scale is zero.
    pub fn new(config: TpccConfig) -> Result<Self, String> {
        if config.warehouses == 0 {
            return Err("warehouses must be positive".to_string());
        }
        let mut rng = seeded_rng(config.seed ^ 0xC0FFEE);
        let c_customer = rng.gen_range(0..NURAND_A_CUSTOMER);
        let c_item = rng.gen_range(0..NURAND_A_ITEM);
        Ok(TpccRunner { config, next_order_id: AtomicU64::new(1), c_customer, c_item })
    }

    /// The configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Allocates a globally unique order id.
    pub fn allocate_order_id(&self) -> u64 {
        self.next_order_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The transaction stream for `thread` of `threads`.
    pub fn stream(&self, thread: usize, threads: usize) -> TpccStream<'_> {
        let threads = threads.max(1);
        let per_thread = self.config.transaction_count / threads as u64;
        let count = if thread + 1 == threads {
            self.config.transaction_count - per_thread * (threads as u64 - 1)
        } else {
            per_thread
        };
        TpccStream {
            runner: self,
            rng: seeded_rng(self.config.seed.wrapping_add(thread as u64 * 0x9E37)),
            remaining: count,
        }
    }
}

/// Per-thread transaction iterator.
pub struct TpccStream<'a> {
    runner: &'a TpccRunner,
    rng: StdRng,
    remaining: u64,
}

impl TpccStream<'_> {
    fn pick_customer(&mut self) -> u64 {
        nurand(&mut self.rng, NURAND_A_CUSTOMER, 1, CUSTOMERS_PER_DISTRICT, self.runner.c_customer)
    }

    fn pick_item(&mut self) -> u64 {
        nurand(&mut self.rng, NURAND_A_ITEM, 1, ITEMS, self.runner.c_item)
    }
}

impl Iterator for TpccStream<'_> {
    type Item = TpccTx;

    fn next(&mut self) -> Option<TpccTx> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let warehouses = self.runner.config.warehouses;
        let warehouse = self.rng.gen_range(1..=warehouses);
        let district = self.rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        // Standard mix: 45 / 43 / 4 / 4 / 4.
        let roll: f64 = self.rng.gen();
        let tx = if roll < 0.45 {
            let line_count = self.rng.gen_range(5..=15);
            let lines = (0..line_count)
                .map(|_| {
                    let item = self.pick_item();
                    // 1% of lines are supplied by a remote warehouse.
                    let supply = if warehouses > 1 && self.rng.gen::<f64>() < 0.01 {
                        loop {
                            let other = self.rng.gen_range(1..=warehouses);
                            if other != warehouse {
                                break other;
                            }
                        }
                    } else {
                        warehouse
                    };
                    (item, supply, self.rng.gen_range(1..=10u32))
                })
                .collect();
            TpccTx::NewOrder { warehouse, district, customer: self.pick_customer(), lines }
        } else if roll < 0.88 {
            TpccTx::Payment {
                warehouse,
                district,
                customer: self.pick_customer(),
                amount_cents: self.rng.gen_range(100..=500_000),
            }
        } else if roll < 0.92 {
            TpccTx::OrderStatus { warehouse, district, customer: self.pick_customer() }
        } else if roll < 0.96 {
            TpccTx::Delivery { warehouse, carrier: self.rng.gen_range(1..=10) }
        } else {
            TpccTx::StockLevel { warehouse, district, threshold: self.rng.gen_range(10..=20) }
        };
        Some(tx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Document keys for the tpcc-lite population (shared between loader and
/// executor so both sides agree).
pub mod keys {
    /// Warehouse document key.
    pub fn warehouse(w: u64) -> String {
        format!("w{w:04}")
    }

    /// District document key.
    pub fn district(w: u64, d: u64) -> String {
        format!("w{w:04}d{d:02}")
    }

    /// Customer document key.
    pub fn customer(w: u64, d: u64, c: u64) -> String {
        format!("w{w:04}d{d:02}c{c:04}")
    }

    /// Item document key.
    pub fn item(i: u64) -> String {
        format!("i{i:06}")
    }

    /// Stock document key.
    pub fn stock(w: u64, i: u64) -> String {
        format!("w{w:04}i{i:06}")
    }

    /// Order document key — zero-padded so key order equals order age.
    pub fn order(o: u64) -> String {
        format!("o{o:010}")
    }

    /// New-order (undelivered) marker key; prefix-scannable per district.
    pub fn new_order(w: u64, d: u64, o: u64) -> String {
        format!("w{w:04}d{d:02}o{o:010}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_roughly_standard() {
        let runner =
            TpccRunner::new(TpccConfig { warehouses: 3, transaction_count: 40_000, seed: 1 })
                .unwrap();
        let mut counts = std::collections::HashMap::new();
        for tx in runner.stream(0, 1) {
            *counts.entry(tx.kind()).or_insert(0usize) += 1;
        }
        let frac = |k: &str| counts.get(k).copied().unwrap_or(0) as f64 / 40_000.0;
        assert!((frac("new_order") - 0.45).abs() < 0.01, "{}", frac("new_order"));
        assert!((frac("payment") - 0.43).abs() < 0.01);
        assert!((frac("order_status") - 0.04).abs() < 0.005);
        assert!((frac("delivery") - 0.04).abs() < 0.005);
        assert!((frac("stock_level") - 0.04).abs() < 0.005);
    }

    #[test]
    fn new_order_lines_are_well_formed() {
        let runner = TpccRunner::new(TpccConfig::default()).unwrap();
        for tx in runner.stream(0, 1).take(2_000) {
            if let TpccTx::NewOrder { warehouse, district, customer, lines } = tx {
                assert!((1..=2).contains(&warehouse));
                assert!((1..=DISTRICTS_PER_WAREHOUSE).contains(&district));
                assert!((1..=CUSTOMERS_PER_DISTRICT).contains(&customer));
                assert!((5..=15).contains(&lines.len()));
                for (item, supply, qty) in lines {
                    assert!((1..=ITEMS).contains(&item));
                    assert!((1..=2).contains(&supply));
                    assert!((1..=10).contains(&qty));
                }
            }
        }
    }

    #[test]
    fn nurand_is_skewed_but_covers() {
        let mut rng = seeded_rng(5);
        let mut counts = vec![0u32; (CUSTOMERS_PER_DISTRICT + 1) as usize];
        for _ in 0..60_000 {
            let c = nurand(&mut rng, NURAND_A_CUSTOMER, 1, CUSTOMERS_PER_DISTRICT, 77);
            assert!((1..=CUSTOMERS_PER_DISTRICT).contains(&c));
            counts[c as usize] += 1;
        }
        let covered = counts[1..].iter().filter(|&&c| c > 0).count() as u64;
        assert_eq!(covered, CUSTOMERS_PER_DISTRICT, "all customers reachable");
        let max = *counts.iter().max().unwrap() as f64;
        let min = counts[1..].iter().copied().min().unwrap() as f64;
        assert!(max / min.max(1.0) > 1.5, "distribution must be non-uniform");
    }

    #[test]
    fn streams_split_and_are_deterministic() {
        let runner =
            TpccRunner::new(TpccConfig { transaction_count: 1_001, ..TpccConfig::default() })
                .unwrap();
        let total: usize = (0..4).map(|t| runner.stream(t, 4).count()).sum();
        assert_eq!(total, 1_001);
        let a: Vec<TpccTx> = runner.stream(0, 4).collect();
        let b: Vec<TpccTx> = runner.stream(0, 4).collect();
        assert_eq!(a, b);
        let other: Vec<TpccTx> = runner.stream(1, 4).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn order_ids_are_unique_across_threads() {
        let runner = TpccRunner::new(TpccConfig::default()).unwrap();
        let ids = chronos_util::pool::scoped_indexed(4, |_| {
            (0..100).map(|_| runner.allocate_order_id()).collect::<Vec<_>>()
        });
        let flat: Vec<u64> = ids.into_iter().flatten().collect();
        let unique: std::collections::HashSet<_> = flat.iter().collect();
        assert_eq!(unique.len(), flat.len());
    }

    #[test]
    fn zero_warehouses_rejected() {
        assert!(TpccRunner::new(TpccConfig { warehouses: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn keys_sort_by_recency() {
        assert!(keys::order(9) < keys::order(10));
        assert!(keys::new_order(1, 2, 5) < keys::new_order(1, 2, 6));
        assert!(keys::new_order(1, 2, 999) < keys::new_order(1, 3, 0), "district prefixes");
    }
}
