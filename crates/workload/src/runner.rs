//! Turning a [`WorkloadSpec`] into operation streams.
//!
//! One [`WorkloadRunner`] is shared by all client threads of a benchmark
//! run; each thread creates its own [`OpStream`](WorkloadRunner::stream) with
//! a thread-specific seed. The only shared mutable state is the insert
//! frontier (an atomic counter), exactly like the YCSB client's
//! `transactioninsertkeysequence`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::generators::{
    seeded_rng, ExponentialGenerator, Generator, HotspotGenerator, LatestGenerator,
    ScrambledZipfian, UniformGenerator,
};
use crate::spec::{Distribution, WorkloadSpec};

/// One benchmark operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read the document with this key.
    Read { key: String },
    /// Replace all field values of this key.
    Update { key: String, fields: Vec<(String, String)> },
    /// Insert a brand-new document.
    Insert { key: String, fields: Vec<(String, String)> },
    /// Scan `count` documents starting at `start_key`.
    Scan { start_key: String, count: u64 },
    /// Read the document, then write it back modified.
    ReadModifyWrite { key: String, fields: Vec<(String, String)> },
}

impl Operation {
    /// A short operation-type label for metrics (`read`, `update`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Operation::Read { .. } => "read",
            Operation::Update { .. } => "update",
            Operation::Insert { .. } => "insert",
            Operation::Scan { .. } => "scan",
            Operation::ReadModifyWrite { .. } => "read_modify_write",
        }
    }
}

/// Shared workload state for one benchmark run.
#[derive(Debug)]
pub struct WorkloadRunner {
    spec: WorkloadSpec,
    /// Next key index to hand to an insert (starts at `record_count`).
    insert_frontier: Arc<AtomicU64>,
}

impl WorkloadRunner {
    /// Creates a runner. Fails if the spec is invalid.
    pub fn new(spec: WorkloadSpec) -> Result<Self, String> {
        spec.validate()?;
        let frontier = Arc::new(AtomicU64::new(spec.record_count));
        Ok(WorkloadRunner { spec, insert_frontier: frontier })
    }

    /// The underlying spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Keys (with generated documents) for the load phase, partitioned for
    /// `thread` of `threads` (round-robin so all partitions are equal ±1).
    pub fn load_partition(&self, thread: usize, threads: usize) -> Vec<Operation> {
        let threads = threads.max(1);
        let mut rng = seeded_rng(self.spec.thread_seed(thread) ^ 0x10AD);
        (0..self.spec.record_count)
            .filter(|i| (*i as usize) % threads == thread)
            .map(|i| Operation::Insert {
                key: self.spec.key_for(i),
                fields: self.generate_fields(&mut rng),
            })
            .collect()
    }

    /// Creates the transaction-phase operation stream for one thread.
    /// The stream yields `operation_count / threads` operations (the last
    /// thread absorbs the remainder).
    pub fn stream(&self, thread: usize, threads: usize) -> OpStream {
        let threads = threads.max(1);
        let per_thread = self.spec.operation_count / threads as u64;
        let count = if thread + 1 == threads {
            self.spec.operation_count - per_thread * (threads as u64 - 1)
        } else {
            per_thread
        };
        let selector: Box<dyn Generator> = match self.spec.distribution {
            Distribution::Uniform => Box::new(UniformGenerator::new(self.spec.record_count)),
            Distribution::Zipfian => Box::new(ScrambledZipfian::new(self.spec.record_count)),
            Distribution::Latest => Box::new(LatestGenerator::new(self.spec.record_count)),
            Distribution::Hotspot => {
                Box::new(HotspotGenerator::new(self.spec.record_count, 0.1, 0.9))
            }
            Distribution::Exponential => {
                Box::new(ExponentialGenerator::new(self.spec.record_count))
            }
        };
        OpStream {
            spec: self.spec.clone(),
            rng: seeded_rng(self.spec.thread_seed(thread)),
            selector,
            frontier: Arc::clone(&self.insert_frontier),
            remaining: count,
        }
    }

    /// Current size of the keyspace (records loaded + inserted so far).
    pub fn keyspace_size(&self) -> u64 {
        self.insert_frontier.load(Ordering::Relaxed)
    }

    fn generate_fields(&self, rng: &mut StdRng) -> Vec<(String, String)> {
        generate_fields(&self.spec, rng)
    }
}

/// Word dictionary for partially redundant field values: sixteen 16-byte
/// tokens, drawn with a skew (80% of draws from the first four) so values
/// repeat the way real-world document fields do, giving block compressors
/// long matches within each document.
const WORDS: [&str; 16] = [
    "account_balance_",
    "customer_record_",
    "delivery_status_",
    "transaction_ref_",
    "envelope_digest_",
    "fragment_offset_",
    "gateway_routing_",
    "horizon_scanner_",
    "industry_sector_",
    "junction_signal_",
    "keyboard_layout_",
    "latitude_degree_",
    "merchant_ledger_",
    "notebook_margin_",
    "operator_handle_",
    "pipeline_stages_",
];

/// Deterministic printable field payloads. A `compressibility` fraction of
/// the bytes come from a small word dictionary (redundant, compressible);
/// the rest are uniform lowercase noise (incompressible) — see
/// [`WorkloadSpec::compressibility`].
fn generate_fields(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<(String, String)> {
    (0..spec.field_count)
        .map(|f| {
            let mut value = String::with_capacity(spec.field_length + 8);
            while value.len() < spec.field_length {
                if rng.gen::<f64>() < spec.compressibility {
                    let idx = if rng.gen::<f64>() < 0.8 {
                        rng.gen_range(0..4)
                    } else {
                        rng.gen_range(0..WORDS.len())
                    };
                    value.push_str(WORDS[idx]);
                } else {
                    for _ in 0..8 {
                        value.push((b'a' + rng.gen_range(0..26u8)) as char);
                    }
                }
            }
            value.truncate(spec.field_length);
            (format!("field{f}"), value)
        })
        .collect()
}

/// The per-thread operation stream (an iterator).
pub struct OpStream {
    spec: WorkloadSpec,
    rng: StdRng,
    selector: Box<dyn Generator>,
    frontier: Arc<AtomicU64>,
    remaining: u64,
}

impl OpStream {
    fn pick_key(&mut self) -> String {
        // For `latest`, track the shared frontier so recency follows inserts.
        let frontier = self.frontier.load(Ordering::Relaxed);
        if self.spec.distribution == Distribution::Latest {
            // Safe: LatestGenerator only ever grows.
            if frontier > self.selector.cardinality() {
                // Downcast-free growth: recreate cheaply when behind.
                let mut g = LatestGenerator::new(self.selector.cardinality());
                g.grow_to(frontier);
                self.selector = Box::new(g);
            }
        }
        let idx = loop {
            let idx = self.selector.next(&mut self.rng);
            if idx < frontier.max(1) {
                break idx;
            }
        };
        self.spec.key_for(idx)
    }
}

impl Iterator for OpStream {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let m = &self.spec.mix;
        let roll: f64 = self.rng.gen();
        let op = if roll < m.read {
            Operation::Read { key: self.pick_key() }
        } else if roll < m.read + m.update {
            let key = self.pick_key();
            let fields = generate_fields(&self.spec, &mut self.rng);
            Operation::Update { key, fields }
        } else if roll < m.read + m.update + m.insert {
            let idx = self.frontier.fetch_add(1, Ordering::Relaxed);
            Operation::Insert {
                key: self.spec.key_for(idx),
                fields: generate_fields(&self.spec, &mut self.rng),
            }
        } else if roll < m.read + m.update + m.insert + m.scan {
            let count = self.rng.gen_range(1..=self.spec.max_scan_length);
            Operation::Scan { start_key: self.pick_key(), count }
        } else {
            let key = self.pick_key();
            let fields = generate_fields(&self.spec, &mut self.rng);
            Operation::ReadModifyWrite { key, fields }
        };
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CoreWorkload, OpMix};

    fn spec() -> WorkloadSpec {
        WorkloadSpec { record_count: 100, operation_count: 1_000, ..WorkloadSpec::default() }
    }

    #[test]
    fn load_partitions_cover_all_records() {
        let runner = WorkloadRunner::new(spec()).unwrap();
        let mut keys: Vec<String> = (0..4)
            .flat_map(|t| runner.load_partition(t, 4))
            .map(|op| match op {
                Operation::Insert { key, .. } => key,
                other => panic!("load phase must only insert, got {other:?}"),
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn stream_counts_split_across_threads() {
        let runner = WorkloadRunner::new(spec()).unwrap();
        let total: usize = (0..3).map(|t| runner.stream(t, 3).count()).sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn single_thread_takes_all_ops() {
        let runner = WorkloadRunner::new(spec()).unwrap();
        assert_eq!(runner.stream(0, 1).count(), 1_000);
    }

    #[test]
    fn mix_proportions_roughly_hold() {
        let mut s = spec();
        s.operation_count = 20_000;
        s.mix = OpMix { read: 0.6, update: 0.3, insert: 0.1, scan: 0.0, read_modify_write: 0.0 };
        let runner = WorkloadRunner::new(s).unwrap();
        let mut reads = 0;
        let mut updates = 0;
        let mut inserts = 0;
        for op in runner.stream(0, 1) {
            match op {
                Operation::Read { .. } => reads += 1,
                Operation::Update { .. } => updates += 1,
                Operation::Insert { .. } => inserts += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((reads as f64 / 20_000.0 - 0.6).abs() < 0.02);
        assert!((updates as f64 / 20_000.0 - 0.3).abs() < 0.02);
        assert!((inserts as f64 / 20_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn inserts_use_fresh_keys() {
        let mut s = spec();
        s.mix = OpMix { read: 0.0, update: 0.0, insert: 1.0, scan: 0.0, read_modify_write: 0.0 };
        s.operation_count = 50;
        let runner = WorkloadRunner::new(s).unwrap();
        let mut keys: Vec<String> = runner
            .stream(0, 1)
            .map(|op| match op {
                Operation::Insert { key, .. } => key,
                other => panic!("{other:?}"),
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "insert keys must be unique");
        assert!(keys.iter().all(|k| k.as_str() >= "user000000000100"), "fresh keys only");
        assert_eq!(runner.keyspace_size(), 150);
    }

    #[test]
    fn concurrent_inserts_never_collide() {
        let mut s = spec();
        s.mix = OpMix { read: 0.0, update: 0.0, insert: 1.0, scan: 0.0, read_modify_write: 0.0 };
        s.operation_count = 400;
        let runner = WorkloadRunner::new(s).unwrap();
        let all: Vec<String> = chronos_util::pool::scoped_indexed(4, |t| {
            runner
                .stream(t, 4)
                .map(|op| match op {
                    Operation::Insert { key, .. } => key,
                    other => panic!("{other:?}"),
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn reads_stay_in_keyspace() {
        let runner = WorkloadRunner::new(WorkloadSpec::core(CoreWorkload::C)).unwrap();
        for op in runner.stream(0, 1).take(5_000) {
            match op {
                Operation::Read { key } => {
                    assert!(key < runner.spec().key_for(runner.keyspace_size()));
                }
                other => panic!("workload C is read-only, got {other:?}"),
            }
        }
    }

    #[test]
    fn scans_bounded_by_max_length() {
        let runner = WorkloadRunner::new(WorkloadSpec::core(CoreWorkload::E)).unwrap();
        for op in runner.stream(0, 1).take(2_000) {
            if let Operation::Scan { count, .. } = op {
                assert!((1..=100).contains(&count));
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let collect = || {
            let runner = WorkloadRunner::new(spec()).unwrap();
            runner.stream(0, 2).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_threads_get_different_streams() {
        let runner = WorkloadRunner::new(spec()).unwrap();
        let a: Vec<Operation> = runner.stream(0, 2).collect();
        let b: Vec<Operation> = runner.stream(1, 2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn workload_f_produces_rmw() {
        let runner = WorkloadRunner::new(WorkloadSpec::core(CoreWorkload::F)).unwrap();
        let kinds: std::collections::HashSet<&str> =
            runner.stream(0, 1).take(1_000).map(|op| op.kind()).collect();
        assert!(kinds.contains("read_modify_write"));
        assert!(kinds.contains("read"));
    }

    #[test]
    fn field_payloads_match_spec() {
        let mut s = spec();
        s.field_count = 3;
        s.field_length = 16;
        s.mix = OpMix { read: 0.0, update: 1.0, insert: 0.0, scan: 0.0, read_modify_write: 0.0 };
        let runner = WorkloadRunner::new(s).unwrap();
        let Some(Operation::Update { fields, .. }) = runner.stream(0, 1).next() else {
            panic!("expected update");
        };
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].0, "field0");
        assert!(fields.iter().all(|(_, v)| v.len() == 16));
    }
}
