//! Request-distribution generators.
//!
//! Each generator produces values in `[0, n)` for a keyspace of size `n`
//! (possibly growing, for `latest`). The zipfian implementation follows the
//! rejection-free method of Gray et al. ("Quickly Generating Billion-Record
//! Synthetic Databases", SIGMOD '94), as used by the YCSB reference
//! implementation, including the same `ZIPFIAN_CONSTANT = 0.99`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The default zipfian skew used by YCSB.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// A source of keyspace indexes.
pub trait Generator: Send {
    /// Draws the next index in `[0, cardinality)`.
    fn next(&mut self, rng: &mut StdRng) -> u64;

    /// The current keyspace cardinality.
    fn cardinality(&self) -> u64;
}

/// Uniform over `[0, n)`.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    n: u64,
}

impl UniformGenerator {
    /// Creates a uniform generator over `[0, n)` (n ≥ 1).
    pub fn new(n: u64) -> Self {
        UniformGenerator { n: n.max(1) }
    }
}

impl Generator for UniformGenerator {
    fn next(&mut self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.n)
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Zipfian over `[0, n)`: item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    zetan: f64,
    zeta2theta: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfianGenerator {
    /// Creates a zipfian generator with the default YCSB constant.
    pub fn new(items: u64) -> Self {
        Self::with_theta(items, ZIPFIAN_CONSTANT)
    }

    /// Creates a zipfian generator with an explicit skew `theta` in (0, 1).
    pub fn with_theta(items: u64, theta: f64) -> Self {
        let items = items.max(1);
        let zetan = Self::zeta(items, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianGenerator { items, theta, zetan, zeta2theta, alpha, eta }
    }

    /// Harmonic-like normalization constant `zeta(n, theta)`.
    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Extends the keyspace (used by `latest` when records are inserted).
    /// Recomputes the normalization incrementally.
    pub fn grow_to(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        for i in (self.items + 1)..=items {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.items = items;
        self.eta = (1.0 - (2.0 / items as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zetan);
    }
}

impl Generator for ZipfianGenerator {
    fn next(&mut self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.items - 1)
    }

    fn cardinality(&self) -> u64 {
        self.items
    }
}

/// FNV-1a 64-bit hash, used to scatter zipfian popularity over the keyspace.
pub fn fnv1a64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = OFFSET;
    for shift in (0..64).step_by(8) {
        hash ^= (value >> shift) & 0xFF;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Zipfian with hashed item order, so the popular items are spread across
/// the keyspace instead of clustered at the low indexes (matches YCSB's
/// `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: ZipfianGenerator,
    items: u64,
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian over `[0, items)`.
    pub fn new(items: u64) -> Self {
        let items = items.max(1);
        ScrambledZipfian { inner: ZipfianGenerator::new(items), items }
    }
}

impl Generator for ScrambledZipfian {
    fn next(&mut self, rng: &mut StdRng) -> u64 {
        let raw = self.inner.next(rng);
        fnv1a64(raw) % self.items
    }

    fn cardinality(&self) -> u64 {
        self.items
    }
}

/// Skews towards the most recently inserted records: index `frontier - 1`
/// is most popular (YCSB's `SkewedLatestGenerator`).
#[derive(Debug, Clone)]
pub struct LatestGenerator {
    zipf: ZipfianGenerator,
}

impl LatestGenerator {
    /// Creates a latest generator for an initial frontier of `items`.
    pub fn new(items: u64) -> Self {
        LatestGenerator { zipf: ZipfianGenerator::new(items.max(1)) }
    }

    /// Advances the insert frontier.
    pub fn grow_to(&mut self, items: u64) {
        self.zipf.grow_to(items);
    }
}

impl Generator for LatestGenerator {
    fn next(&mut self, rng: &mut StdRng) -> u64 {
        let n = self.zipf.cardinality();
        let offset = self.zipf.next(rng);
        n - 1 - offset
    }

    fn cardinality(&self) -> u64 {
        self.zipf.cardinality()
    }
}

/// A hot set receiving a fixed fraction of requests.
#[derive(Debug, Clone)]
pub struct HotspotGenerator {
    n: u64,
    hot_items: u64,
    hot_opn_fraction: f64,
}

impl HotspotGenerator {
    /// `hot_set_fraction` of the keyspace receives `hot_opn_fraction` of
    /// operations.
    pub fn new(n: u64, hot_set_fraction: f64, hot_opn_fraction: f64) -> Self {
        let n = n.max(1);
        let hot_items = ((n as f64 * hot_set_fraction.clamp(0.0, 1.0)) as u64).max(1);
        HotspotGenerator { n, hot_items, hot_opn_fraction: hot_opn_fraction.clamp(0.0, 1.0) }
    }
}

impl Generator for HotspotGenerator {
    fn next(&mut self, rng: &mut StdRng) -> u64 {
        if rng.gen::<f64>() < self.hot_opn_fraction {
            rng.gen_range(0..self.hot_items)
        } else if self.hot_items < self.n {
            rng.gen_range(self.hot_items..self.n)
        } else {
            rng.gen_range(0..self.n)
        }
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Exponentially distributed indexes (YCSB's `ExponentialGenerator`):
/// a fraction `percentile` of draws fall within `frac * n`.
#[derive(Debug, Clone)]
pub struct ExponentialGenerator {
    n: u64,
    gamma: f64,
}

impl ExponentialGenerator {
    /// YCSB defaults: 95% of draws in the most recent 10% of the keyspace.
    pub fn new(n: u64) -> Self {
        Self::with_shape(n, 0.95, 0.10)
    }

    /// Custom shape: `percentile` of draws within `frac * n`.
    pub fn with_shape(n: u64, percentile: f64, frac: f64) -> Self {
        let n = n.max(1);
        let gamma = -(1.0 - percentile).ln() / (n as f64 * frac);
        ExponentialGenerator { n, gamma }
    }
}

impl Generator for ExponentialGenerator {
    fn next(&mut self, rng: &mut StdRng) -> u64 {
        loop {
            let u: f64 = rng.gen();
            let v = (-u.ln() / self.gamma) as u64;
            if v < self.n {
                return v;
            }
        }
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Round-robin over `[0, n)` — used for the load phase.
#[derive(Debug, Clone)]
pub struct SequentialGenerator {
    n: u64,
    next: u64,
}

impl SequentialGenerator {
    /// Creates a sequential generator starting at 0.
    pub fn new(n: u64) -> Self {
        SequentialGenerator { n: n.max(1), next: 0 }
    }
}

impl Generator for SequentialGenerator {
    fn next(&mut self, _rng: &mut StdRng) -> u64 {
        let v = self.next;
        self.next = (self.next + 1) % self.n;
        v
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Convenience: a seeded RNG for deterministic workload streams.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(gen: &mut dyn Generator, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        let mut counts = vec![0u64; gen.cardinality() as usize];
        for _ in 0..draws {
            let v = gen.next(&mut rng);
            counts[v as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_covers_range() {
        let mut g = UniformGenerator::new(10);
        let counts = histogram(&mut g, 10_000, 1);
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 800, "index {i} drawn only {c} times");
        }
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let mut g = ZipfianGenerator::new(1000);
        let counts = histogram(&mut g, 100_000, 2);
        // Item 0 must be by far the most popular.
        assert!(counts[0] > counts[500] * 10, "0:{} 500:{}", counts[0], counts[500]);
        // YCSB zipfian(0.99): the top item gets roughly 1/zeta(n) of draws.
        let frac = counts[0] as f64 / 100_000.0;
        assert!(frac > 0.05 && frac < 0.25, "top-item fraction {frac}");
    }

    #[test]
    fn zipfian_single_item() {
        let mut g = ZipfianGenerator::new(1);
        let mut rng = seeded_rng(3);
        for _ in 0..100 {
            assert_eq!(g.next(&mut rng), 0);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let mut g = ScrambledZipfian::new(1000);
        let counts = histogram(&mut g, 100_000, 4);
        // The most popular item should NOT be index 0 with high probability
        // (FNV scatters it), and skew should persist.
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(max as f64 / 100_000.0 > 0.05, "still skewed");
        assert!(nonzero > 500, "most of the keyspace is still touched");
    }

    #[test]
    fn latest_prefers_frontier() {
        let mut g = LatestGenerator::new(1000);
        let counts = histogram(&mut g, 100_000, 5);
        assert!(counts[999] > counts[0] * 10, "frontier must dominate");
    }

    #[test]
    fn latest_grows() {
        let mut g = LatestGenerator::new(10);
        g.grow_to(20);
        let mut rng = seeded_rng(6);
        let mut saw_new = false;
        for _ in 0..1000 {
            if g.next(&mut rng) >= 10 {
                saw_new = true;
            }
        }
        assert!(saw_new, "grown keyspace must be reachable");
    }

    #[test]
    fn hotspot_concentrates() {
        let mut g = HotspotGenerator::new(1000, 0.1, 0.9);
        let counts = histogram(&mut g, 100_000, 7);
        let hot: u64 = counts[..100].iter().sum();
        let frac = hot as f64 / 100_000.0;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn exponential_is_front_loaded() {
        let mut g = ExponentialGenerator::new(1000);
        let counts = histogram(&mut g, 100_000, 8);
        let front: u64 = counts[..100].iter().sum();
        let frac = front as f64 / 100_000.0;
        assert!((frac - 0.95).abs() < 0.02, "front fraction {frac}");
    }

    #[test]
    fn sequential_round_robins() {
        let mut g = SequentialGenerator::new(3);
        let mut rng = seeded_rng(9);
        let seq: Vec<u64> = (0..7).map(|_| g.next(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn determinism_across_runs() {
        let draw = |seed| {
            let mut g = ZipfianGenerator::new(500);
            let mut rng = seeded_rng(seed);
            (0..100).map(|_| g.next(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn fnv_is_stable() {
        // Spot-check the hash is deterministic and spreads inputs.
        assert_eq!(fnv1a64(0), fnv1a64(0));
        assert_ne!(fnv1a64(0), fnv1a64(1));
        assert_ne!(fnv1a64(1), fnv1a64(2));
    }

    #[test]
    fn zipfian_grow_matches_fresh() {
        let mut grown = ZipfianGenerator::new(100);
        grown.grow_to(200);
        let fresh = ZipfianGenerator::new(200);
        assert!((grown.zetan - fresh.zetan).abs() < 1e-9);
        assert!((grown.eta - fresh.eta).abs() < 1e-9);
    }
}
