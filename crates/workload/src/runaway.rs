//! Deliberately misbehaving workloads for budget-enforcement testing.
//!
//! A budget watchdog is only trustworthy if it is exercised against real
//! resource abuse, not just mocked counters. This module provides small,
//! *bounded* runaway scenarios: each burns one resource dimension (cpu or
//! memory) until either a cancellation callback tells it to stop or a hard
//! safety cap is reached, so a watchdog that fails to fire cannot take the
//! test host down with it.

/// Which resource a [`RunawayScenario`] abuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunawayKind {
    /// A spin-loop burning user cpu as fast as one core allows.
    SpinCpu,
    /// An allocation loop growing the resident set in 1-MiB steps.
    AllocBomb,
}

impl RunawayKind {
    /// Parses the scenario name used in experiment parameters.
    pub fn parse(name: &str) -> Option<RunawayKind> {
        match name {
            "spin_cpu" => Some(RunawayKind::SpinCpu),
            "alloc_bomb" => Some(RunawayKind::AllocBomb),
            _ => None,
        }
    }

    /// The parameter-value name of this scenario.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunawayKind::SpinCpu => "spin_cpu",
            RunawayKind::AllocBomb => "alloc_bomb",
        }
    }
}

/// A bounded resource-abuse loop.
#[derive(Debug, Clone, Copy)]
pub struct RunawayScenario {
    /// The dimension to abuse.
    pub kind: RunawayKind,
    /// Hard safety cap in milliseconds: the scenario stops on its own after
    /// this long even if never cancelled (a watchdog test that hangs would
    /// otherwise spin forever).
    pub cap_millis: u64,
    /// For [`RunawayKind::AllocBomb`]: stop after this many MiB even if
    /// never cancelled, so an unenforced run cannot OOM the host.
    pub cap_alloc_mib: usize,
}

impl RunawayScenario {
    /// A scenario with safe default caps (10 s wall, 256 MiB).
    pub fn new(kind: RunawayKind) -> RunawayScenario {
        RunawayScenario { kind, cap_millis: 10_000, cap_alloc_mib: 256 }
    }

    /// Runs the abuse loop until `cancelled` returns true or a safety cap
    /// is hit. Returns how many iterations (spin rounds or MiB allocated)
    /// completed — primarily so the compiler cannot optimise the work away.
    pub fn run(&self, cancelled: &dyn Fn() -> bool) -> u64 {
        let start = std::time::Instant::now();
        let deadline = std::time::Duration::from_millis(self.cap_millis);
        match self.kind {
            RunawayKind::SpinCpu => {
                let mut acc = 0x9e3779b97f4a7c15u64;
                let mut rounds = 0u64;
                while !cancelled() && start.elapsed() < deadline {
                    // ~1M mixing steps per cancellation check: frequent
                    // enough to stop within milliseconds, long enough that
                    // the loop is genuinely cpu-bound.
                    for i in 0..1_000_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i).rotate_left(17);
                    }
                    rounds += 1;
                }
                // Keep `acc` observable so the loop cannot be elided.
                std::hint::black_box(acc);
                rounds
            }
            RunawayKind::AllocBomb => {
                let mut hoard: Vec<Vec<u8>> = Vec::new();
                while !cancelled() && start.elapsed() < deadline && hoard.len() < self.cap_alloc_mib
                {
                    // Touch every page so the allocation lands in the
                    // resident set instead of staying virtual.
                    let mut block = vec![0u8; 1 << 20];
                    for page in block.chunks_mut(4096) {
                        page[0] = hoard.len() as u8;
                    }
                    hoard.push(block);
                }
                let grown = hoard.len() as u64;
                std::hint::black_box(&hoard);
                grown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in [RunawayKind::SpinCpu, RunawayKind::AllocBomb] {
            assert_eq!(RunawayKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(RunawayKind::parse("well_behaved"), None);
    }

    #[test]
    fn spin_cpu_stops_on_cancellation() {
        let scenario = RunawayScenario::new(RunawayKind::SpinCpu);
        let rounds = scenario.run(&|| true); // cancelled from the start
        assert_eq!(rounds, 0, "a pre-cancelled scenario does no work");
    }

    #[test]
    fn alloc_bomb_respects_the_allocation_cap() {
        let scenario =
            RunawayScenario { kind: RunawayKind::AllocBomb, cap_millis: 10_000, cap_alloc_mib: 3 };
        let grown = scenario.run(&|| false);
        assert_eq!(grown, 3, "the safety cap bounds an unenforced run");
    }

    #[test]
    fn spin_cpu_burns_cpu_until_the_wall_cap() {
        let scenario =
            RunawayScenario { kind: RunawayKind::SpinCpu, cap_millis: 50, cap_alloc_mib: 0 };
        let start = std::time::Instant::now();
        let rounds = scenario.run(&|| false);
        assert!(rounds > 0, "an uncancelled spin does real work");
        assert!(start.elapsed().as_millis() >= 50, "runs until the cap");
    }
}
