//! YCSB-style benchmark workload generation.
//!
//! The Chronos paper's demo pits two MongoDB storage engines against each
//! other under a configurable benchmark; YCSB (the paper's reference [4]) is
//! the canonical workload family for exactly that comparison. This crate
//! reimplements the YCSB core machinery:
//!
//! * [`generators`] — request-distribution generators (uniform, zipfian,
//!   scrambled zipfian, latest, hotspot, exponential, sequential) with the
//!   same constants as the YCSB reference implementation.
//! * [`spec`] — a declarative [`WorkloadSpec`](spec::WorkloadSpec) with the
//!   six core workloads A–F as presets, convertible to/from JSON so Chronos
//!   experiments can carry workload definitions as parameters.
//! * [`runner`] — turns a spec into a deterministic stream of
//!   [`Operation`](runner::Operation)s for the load and transaction phases,
//!   with a thread-safe insert frontier so concurrent clients never collide
//!   on generated keys.
//!
//! Everything is deterministic given a seed, which is what makes Chronos
//! evaluations repeatable across re-runs of the same experiment.

pub mod generators;
pub mod runaway;
pub mod runner;
pub mod spec;
pub mod surface;
pub mod tpcc;
pub mod trace;

pub use generators::{
    ExponentialGenerator, Generator, HotspotGenerator, LatestGenerator, ScrambledZipfian,
    SequentialGenerator, UniformGenerator, ZipfianGenerator,
};
pub use runaway::{RunawayKind, RunawayScenario};
pub use runner::{Operation, WorkloadRunner};
pub use spec::{CoreWorkload, Distribution, OpMix, WorkloadSpec};
pub use surface::ResponseSurface;
pub use tpcc::{TpccConfig, TpccRunner, TpccTx};
