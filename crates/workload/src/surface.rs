//! A seeded synthetic response surface for scheduler evaluations (E15).
//!
//! Real tuning studies sweep a parameter space whose latency/throughput
//! optimum sits somewhere unknown. This module fakes that cheaply and
//! deterministically: a smooth surface over the unit hypercube whose
//! optimum location is drawn from the seed — so an adaptive scheduler
//! cannot hard-code it, and two runs (or two cluster nodes) evaluating the
//! same seed and point always see identical metrics.
//!
//! The shape is a Gaussian throughput peak with a mild seeded cosine
//! ripple; p99 latency is modelled as the reciprocal response, so the
//! throughput argmax and the latency argmin coincide.

use chronos_json::{obj, Value};

/// Splitmix64 finalizer step (the workspace idiom for seeding).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit fraction in (0, 1) from a seed/axis pair.
fn unit(seed: u64, axis: u64) -> f64 {
    (mix(seed ^ axis.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic latency/throughput surface over `dims` normalized axes.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSurface {
    seed: u64,
    /// Optimum coordinate per axis, in [0.1, 0.9].
    optimum: Vec<f64>,
}

impl ResponseSurface {
    /// Peak throughput in ops/s at the optimum.
    pub const PEAK_THROUGHPUT: f64 = 50_000.0;

    /// Builds the surface for `seed` over `dims` axes. Different seeds move
    /// the optimum; the same seed always yields the same surface.
    pub fn new(seed: u64, dims: usize) -> ResponseSurface {
        let optimum = (0..dims as u64).map(|axis| 0.1 + 0.8 * unit(seed, axis)).collect();
        ResponseSurface { seed, optimum }
    }

    /// The optimum coordinates (unit hypercube).
    pub fn optimum(&self) -> &[f64] {
        &self.optimum
    }

    /// Throughput (ops/s) at `coords`, each coordinate in [0, 1]. Smooth,
    /// single global maximum at [`ResponseSurface::optimum`].
    pub fn throughput(&self, coords: &[f64]) -> f64 {
        let d2: f64 = coords.iter().zip(&self.optimum).map(|(x, o)| (x - o) * (x - o)).sum();
        // Width 0.35 keeps a usable gradient across the whole cube; the
        // ripple is small enough to never create a second local optimum.
        let peak = (-d2 / (2.0 * 0.35 * 0.35)).exp();
        let ripple: f64 = coords
            .iter()
            .enumerate()
            .map(|(axis, x)| {
                let phase = unit(self.seed ^ 0x00C0_FFEE, axis as u64) * std::f64::consts::TAU;
                0.01 * (x * 6.0 + phase).cos()
            })
            .sum();
        Self::PEAK_THROUGHPUT * (peak + ripple).max(0.001)
    }

    /// p99 operation latency (µs) at `coords`: the reciprocal response, so
    /// minimizing latency finds the same configuration as maximizing
    /// throughput.
    pub fn p99_latency_micros(&self, coords: &[f64]) -> f64 {
        1_000_000_000.0 / self.throughput(coords)
    }

    /// A result document for `coords` shaped like an agent upload, with the
    /// metrics under the standard columnar paths.
    pub fn result_document(&self, coords: &[f64]) -> Value {
        let throughput = self.throughput(coords);
        let p99 = self.p99_latency_micros(coords);
        obj! {
            "throughput_ops_per_sec" => throughput,
            "wall_millis" => 1_000u64,
            "total_ops" => throughput as u64,
            "total_errors" => 0u64,
            "operations" => obj! {
                "read" => obj! {
                    "latency_micros" => obj! { "p99" => p99 },
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_is_deterministic_and_seed_sensitive() {
        let a = ResponseSurface::new(11, 2);
        let b = ResponseSurface::new(11, 2);
        assert_eq!(a, b);
        assert_eq!(a.throughput(&[0.3, 0.7]), b.throughput(&[0.3, 0.7]));
        let c = ResponseSurface::new(12, 2);
        assert_ne!(a.optimum(), c.optimum(), "the optimum moves with the seed");
    }

    #[test]
    fn optimum_dominates_the_corners() {
        for seed in [1u64, 7, 23, 47] {
            let surface = ResponseSurface::new(seed, 3);
            let at_opt = surface.throughput(surface.optimum());
            for corner in [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.0, 1.0, 0.0]] {
                let there = surface.throughput(&corner);
                assert!(at_opt > there, "seed {seed}: optimum {at_opt} not above corner {there}");
            }
            // Latency inverts: best configuration has the lowest p99.
            assert!(
                surface.p99_latency_micros(surface.optimum())
                    < surface.p99_latency_micros(&[0.0, 0.0, 0.0])
            );
        }
    }

    #[test]
    fn result_document_carries_standard_metric_paths() {
        let surface = ResponseSurface::new(5, 1);
        let doc = surface.result_document(&[0.5]);
        assert!(doc.pointer("/throughput_ops_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(
            doc.pointer("/operations/read/latency_micros/p99").and_then(Value::as_f64).unwrap()
                > 0.0
        );
        assert_eq!(doc.pointer("/total_errors").and_then(Value::as_u64), Some(0));
    }
}
