//! Operation-trace recording and replay.
//!
//! Chronos archives "all parameter settings which have led to these
//! results" (requirement *(iv)*); for full reproducibility an evaluation
//! can additionally record the *exact operation stream* it executed and
//! attach it to the result zip. A trace is JSON-lines (one operation per
//! line), so it is diffable, streamable and consumable outside Rust.

use chronos_util::encode::{base64_decode, base64_encode};

use crate::runner::Operation;

/// Serializes one operation to its JSON-line form.
pub fn operation_to_json(op: &Operation) -> chronos_json::Value {
    use chronos_json::{obj, Value};
    let fields_json = |fields: &Vec<(String, String)>| {
        let mut map = chronos_json::Map::with_capacity(fields.len());
        for (name, value) in fields {
            // Values may be arbitrary bytes-as-strings; base64 keeps the
            // trace line-safe regardless of content.
            map.insert(name.clone(), Value::from(base64_encode(value.as_bytes())));
        }
        Value::Object(map)
    };
    match op {
        Operation::Read { key } => obj! {"op" => "read", "key" => key.as_str()},
        Operation::Update { key, fields } => {
            obj! {"op" => "update", "key" => key.as_str(), "fields" => fields_json(fields)}
        }
        Operation::Insert { key, fields } => {
            obj! {"op" => "insert", "key" => key.as_str(), "fields" => fields_json(fields)}
        }
        Operation::Scan { start_key, count } => {
            obj! {"op" => "scan", "start_key" => start_key.as_str(), "count" => *count}
        }
        Operation::ReadModifyWrite { key, fields } => {
            obj! {"op" => "rmw", "key" => key.as_str(), "fields" => fields_json(fields)}
        }
    }
}

/// Parses one operation from its JSON form.
pub fn operation_from_json(value: &chronos_json::Value) -> Result<Operation, String> {
    use chronos_json::Value;
    let op = value.get("op").and_then(Value::as_str).ok_or("missing \"op\"")?;
    let key = |field: &str| -> Result<String, String> {
        value
            .get(field)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing {field:?}"))
    };
    let fields = || -> Result<Vec<(String, String)>, String> {
        let map = value.get("fields").and_then(Value::as_object).ok_or("missing \"fields\"")?;
        map.iter()
            .map(|(name, v)| {
                let b64 = v.as_str().ok_or("field value must be a string")?;
                let bytes = base64_decode(b64).ok_or("bad base64 field value")?;
                let text =
                    String::from_utf8(bytes).map_err(|_| "field value not UTF-8".to_string())?;
                Ok((name.to_string(), text))
            })
            .collect()
    };
    match op {
        "read" => Ok(Operation::Read { key: key("key")? }),
        "update" => Ok(Operation::Update { key: key("key")?, fields: fields()? }),
        "insert" => Ok(Operation::Insert { key: key("key")?, fields: fields()? }),
        "scan" => Ok(Operation::Scan {
            start_key: key("start_key")?,
            count: value.get("count").and_then(Value::as_u64).ok_or("missing \"count\"")?,
        }),
        "rmw" => Ok(Operation::ReadModifyWrite { key: key("key")?, fields: fields()? }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Records an operation stream as a JSON-lines trace.
pub fn record<I: IntoIterator<Item = Operation>>(ops: I) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&operation_to_json(&op).to_string());
        out.push('\n');
    }
    out
}

/// Replays a JSON-lines trace back into operations. Fails on the first
/// malformed line (with its 1-based line number).
pub fn replay(trace: &str) -> Result<Vec<Operation>, String> {
    trace
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            let value = chronos_json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            operation_from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CoreWorkload, WorkloadSpec};
    use crate::WorkloadRunner;

    #[test]
    fn roundtrip_every_operation_kind() {
        let ops = vec![
            Operation::Read { key: "user1".into() },
            Operation::Update {
                key: "user2".into(),
                fields: vec![("f0".into(), "plain".into()), ("f1".into(), "with,comma\n".into())],
            },
            Operation::Insert { key: "user3".into(), fields: vec![("f".into(), "v".into())] },
            Operation::Scan { start_key: "user4".into(), count: 42 },
            Operation::ReadModifyWrite {
                key: "user5".into(),
                fields: vec![("f".into(), "ünïcode 😀".into())],
            },
        ];
        let trace = record(ops.clone());
        assert_eq!(trace.lines().count(), 5);
        assert_eq!(replay(&trace).unwrap(), ops);
    }

    #[test]
    fn real_workload_stream_roundtrips() {
        let spec = WorkloadSpec {
            record_count: 50,
            operation_count: 200,
            ..WorkloadSpec::core(CoreWorkload::A)
        };
        let runner = WorkloadRunner::new(spec).unwrap();
        let ops: Vec<Operation> = runner.stream(0, 1).collect();
        let trace = record(ops.clone());
        assert_eq!(replay(&trace).unwrap(), ops);
    }

    #[test]
    fn malformed_lines_are_located() {
        let err = replay("{\"op\":\"read\",\"key\":\"a\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = replay("{\"op\":\"warp\"}").unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        let err = replay("{\"op\":\"scan\",\"start_key\":\"a\"}").unwrap_err();
        assert!(err.contains("count"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let trace = "\n{\"op\":\"read\",\"key\":\"a\"}\n\n";
        assert_eq!(replay(trace).unwrap().len(), 1);
    }
}
