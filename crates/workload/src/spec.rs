//! Declarative workload specifications and the YCSB core presets.

use chronos_util::Id;

/// Which request distribution drives key selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform over all records.
    Uniform,
    /// Scrambled zipfian (YCSB default for A/B).
    Zipfian,
    /// Skewed towards recently inserted records (workload D).
    Latest,
    /// Hot set: 10% of records get 90% of requests.
    Hotspot,
    /// Exponential (front-loaded).
    Exponential,
}

impl Distribution {
    /// Parses the lowercase name used in experiment parameters.
    pub fn parse(s: &str) -> Option<Distribution> {
        match s {
            "uniform" => Some(Distribution::Uniform),
            "zipfian" => Some(Distribution::Zipfian),
            "latest" => Some(Distribution::Latest),
            "hotspot" => Some(Distribution::Hotspot),
            "exponential" => Some(Distribution::Exponential),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Zipfian => "zipfian",
            Distribution::Latest => "latest",
            Distribution::Hotspot => "hotspot",
            Distribution::Exponential => "exponential",
        }
    }
}

/// Operation mix proportions. Must sum to (approximately) 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Point reads.
    pub read: f64,
    /// Full-document updates.
    pub update: f64,
    /// New-record inserts.
    pub insert: f64,
    /// Short range scans.
    pub scan: f64,
    /// Read-modify-write transactions.
    pub read_modify_write: f64,
}

impl OpMix {
    /// Validates the proportions (non-negative, sum ≈ 1).
    pub fn validate(&self) -> Result<(), String> {
        let parts = [self.read, self.update, self.insert, self.scan, self.read_modify_write];
        if parts.iter().any(|&p| p < 0.0) {
            return Err("operation proportions must be non-negative".to_string());
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("operation proportions sum to {sum}, expected 1.0"));
        }
        Ok(())
    }
}

/// The six YCSB core workloads plus two Chronos scenario-pack mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreWorkload {
    /// A: update heavy (50/50 read/update), zipfian.
    A,
    /// B: read mostly (95/5 read/update), zipfian.
    B,
    /// C: read only, zipfian.
    C,
    /// D: read latest (95/5 read/insert), latest distribution.
    D,
    /// E: short ranges (95/5 scan/insert), zipfian.
    E,
    /// F: read-modify-write (50/50 read/rmw), zipfian.
    F,
    /// sh: scan heavy (70/25/5 scan/read/insert), hotspot — range-query
    /// pressure with a skewed hot set, for index/iterator evaluations.
    ScanHeavy,
    /// rmw: read-modify-write heavy (70/20/10 rmw/read/update), zipfian —
    /// contended write transactions, for locking/MVCC evaluations.
    ReadModifyWriteHeavy,
}

impl CoreWorkload {
    /// Every workload, in canonical-name order.
    pub const ALL: [CoreWorkload; 8] = [
        CoreWorkload::A,
        CoreWorkload::B,
        CoreWorkload::C,
        CoreWorkload::D,
        CoreWorkload::E,
        CoreWorkload::F,
        CoreWorkload::ScanHeavy,
        CoreWorkload::ReadModifyWriteHeavy,
    ];

    /// Parses `"a"`..`"f"`, `"sh"` or `"rmw"` (case-insensitive).
    pub fn parse(s: &str) -> Option<CoreWorkload> {
        match s.to_ascii_lowercase().as_str() {
            "a" => Some(CoreWorkload::A),
            "b" => Some(CoreWorkload::B),
            "c" => Some(CoreWorkload::C),
            "d" => Some(CoreWorkload::D),
            "e" => Some(CoreWorkload::E),
            "f" => Some(CoreWorkload::F),
            "sh" => Some(CoreWorkload::ScanHeavy),
            "rmw" => Some(CoreWorkload::ReadModifyWriteHeavy),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn as_str(&self) -> &'static str {
        match self {
            CoreWorkload::A => "a",
            CoreWorkload::B => "b",
            CoreWorkload::C => "c",
            CoreWorkload::D => "d",
            CoreWorkload::E => "e",
            CoreWorkload::F => "f",
            CoreWorkload::ScanHeavy => "sh",
            CoreWorkload::ReadModifyWriteHeavy => "rmw",
        }
    }
}

/// A complete workload definition.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Records loaded in the load phase.
    pub record_count: u64,
    /// Operations executed in the transaction phase (per run, across all
    /// client threads).
    pub operation_count: u64,
    /// Fields per document.
    pub field_count: usize,
    /// Bytes per field value.
    pub field_length: usize,
    /// Operation proportions.
    pub mix: OpMix,
    /// Key-selection distribution.
    pub distribution: Distribution,
    /// Maximum records returned by a scan.
    pub max_scan_length: u64,
    /// RNG seed; two runs with the same spec produce identical streams.
    pub seed: u64,
    /// Fraction (0..=1) of field bytes drawn from a small word dictionary
    /// instead of uniform noise. Real-world documents are partially
    /// redundant; this controls how well they compress (0.0 = YCSB's
    /// classic incompressible random values).
    pub compressibility: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            record_count: 1_000,
            operation_count: 10_000,
            field_count: 10,
            field_length: 100,
            mix: OpMix { read: 0.5, update: 0.5, insert: 0.0, scan: 0.0, read_modify_write: 0.0 },
            distribution: Distribution::Zipfian,
            max_scan_length: 100,
            seed: 42,
            compressibility: 0.5,
        }
    }
}

impl WorkloadSpec {
    /// The preset for one of the YCSB core workloads.
    pub fn core(workload: CoreWorkload) -> Self {
        let mix = match workload {
            CoreWorkload::A => {
                OpMix { read: 0.5, update: 0.5, insert: 0.0, scan: 0.0, read_modify_write: 0.0 }
            }
            CoreWorkload::B => {
                OpMix { read: 0.95, update: 0.05, insert: 0.0, scan: 0.0, read_modify_write: 0.0 }
            }
            CoreWorkload::C => {
                OpMix { read: 1.0, update: 0.0, insert: 0.0, scan: 0.0, read_modify_write: 0.0 }
            }
            CoreWorkload::D => {
                OpMix { read: 0.95, update: 0.0, insert: 0.05, scan: 0.0, read_modify_write: 0.0 }
            }
            CoreWorkload::E => {
                OpMix { read: 0.0, update: 0.0, insert: 0.05, scan: 0.95, read_modify_write: 0.0 }
            }
            CoreWorkload::F => {
                OpMix { read: 0.5, update: 0.0, insert: 0.0, scan: 0.0, read_modify_write: 0.5 }
            }
            CoreWorkload::ScanHeavy => {
                OpMix { read: 0.25, update: 0.0, insert: 0.05, scan: 0.7, read_modify_write: 0.0 }
            }
            CoreWorkload::ReadModifyWriteHeavy => {
                OpMix { read: 0.2, update: 0.1, insert: 0.0, scan: 0.0, read_modify_write: 0.7 }
            }
        };
        let distribution = match workload {
            CoreWorkload::D => Distribution::Latest,
            CoreWorkload::ScanHeavy => Distribution::Hotspot,
            _ => Distribution::Zipfian,
        };
        WorkloadSpec { mix, distribution, ..WorkloadSpec::default() }
    }

    /// Validates the whole spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.record_count == 0 {
            return Err("record_count must be positive".to_string());
        }
        if self.field_count == 0 {
            return Err("field_count must be positive".to_string());
        }
        if self.max_scan_length == 0 {
            return Err("max_scan_length must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.compressibility) {
            return Err(format!("compressibility must be in [0, 1], got {}", self.compressibility));
        }
        self.mix.validate()
    }

    /// The key string for record index `i` (zero-padded, YCSB-style).
    pub fn key_for(&self, i: u64) -> String {
        format!("user{i:012}")
    }

    /// Derives a fresh seed for worker thread `thread` of `threads`.
    pub fn thread_seed(&self, thread: usize) -> u64 {
        // Mix with a splitmix-style finalizer so nearby thread indexes do not
        // produce correlated streams.
        let mut z = self.seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Serializes to the JSON shape used in Chronos experiment parameters.
    pub fn to_json(&self) -> chronos_json::Value {
        chronos_json::obj! {
            "record_count" => self.record_count,
            "operation_count" => self.operation_count,
            "field_count" => self.field_count,
            "field_length" => self.field_length,
            "read" => self.mix.read,
            "update" => self.mix.update,
            "insert" => self.mix.insert,
            "scan" => self.mix.scan,
            "read_modify_write" => self.mix.read_modify_write,
            "distribution" => self.distribution.as_str(),
            "max_scan_length" => self.max_scan_length,
            "seed" => self.seed,
            "compressibility" => self.compressibility,
        }
    }

    /// Parses the JSON shape produced by [`WorkloadSpec::to_json`]. Missing
    /// fields fall back to the defaults.
    pub fn from_json(value: &chronos_json::Value) -> Result<Self, String> {
        let d = WorkloadSpec::default();
        let get_u64 = |k: &str, dflt: u64| value.get(k).and_then(|v| v.as_u64()).unwrap_or(dflt);
        let get_f64 = |k: &str, dflt: f64| value.get(k).and_then(|v| v.as_f64()).unwrap_or(dflt);
        let distribution = match value.get("distribution").and_then(|v| v.as_str()) {
            Some(s) => {
                Distribution::parse(s).ok_or_else(|| format!("unknown distribution {s:?}"))?
            }
            None => d.distribution,
        };
        let spec = WorkloadSpec {
            record_count: get_u64("record_count", d.record_count),
            operation_count: get_u64("operation_count", d.operation_count),
            field_count: get_u64("field_count", d.field_count as u64) as usize,
            field_length: get_u64("field_length", d.field_length as u64) as usize,
            mix: OpMix {
                read: get_f64("read", d.mix.read),
                update: get_f64("update", d.mix.update),
                insert: get_f64("insert", d.mix.insert),
                scan: get_f64("scan", d.mix.scan),
                read_modify_write: get_f64("read_modify_write", d.mix.read_modify_write),
            },
            distribution,
            max_scan_length: get_u64("max_scan_length", d.max_scan_length),
            seed: get_u64("seed", d.seed),
            compressibility: get_f64("compressibility", d.compressibility),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// A workload-scoped unique run id (handy for collection names).
    pub fn run_tag(&self) -> String {
        format!("run-{}", Id::generate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_presets_are_valid() {
        for w in CoreWorkload::ALL {
            let spec = WorkloadSpec::core(w);
            spec.validate().unwrap_or_else(|e| panic!("workload {w:?}: {e}"));
            assert_eq!(CoreWorkload::parse(w.as_str()), Some(w), "name roundtrip for {w:?}");
        }
    }

    #[test]
    fn workload_d_uses_latest() {
        assert_eq!(WorkloadSpec::core(CoreWorkload::D).distribution, Distribution::Latest);
        assert_eq!(WorkloadSpec::core(CoreWorkload::A).distribution, Distribution::Zipfian);
    }

    #[test]
    fn scenario_pack_mixes() {
        let sh = WorkloadSpec::core(CoreWorkload::ScanHeavy);
        assert!(sh.mix.scan >= 0.7, "scan-heavy must be dominated by scans");
        assert_eq!(sh.distribution, Distribution::Hotspot);
        let rmw = WorkloadSpec::core(CoreWorkload::ReadModifyWriteHeavy);
        assert!(rmw.mix.read_modify_write >= 0.7, "rmw-heavy must be dominated by rmw");
        assert_eq!(rmw.distribution, Distribution::Zipfian);
        assert_eq!(CoreWorkload::parse("SH"), Some(CoreWorkload::ScanHeavy));
        assert_eq!(CoreWorkload::parse("rmw"), Some(CoreWorkload::ReadModifyWriteHeavy));
    }

    #[test]
    fn mix_validation() {
        let mut spec = WorkloadSpec::default();
        spec.mix.read = 0.9;
        assert!(spec.validate().is_err());
        spec.mix.read = 0.5;
        assert!(spec.validate().is_ok());
        spec.mix.update = -0.1;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn zero_counts_rejected() {
        let spec = WorkloadSpec { record_count: 0, ..WorkloadSpec::default() };
        assert!(spec.validate().is_err());
        let spec = WorkloadSpec { field_count: 0, ..WorkloadSpec::default() };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn keys_are_padded_and_ordered() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.key_for(0), "user000000000000");
        assert_eq!(spec.key_for(42), "user000000000042");
        assert!(spec.key_for(9) < spec.key_for(10), "lexicographic = numeric order");
    }

    #[test]
    fn json_roundtrip() {
        let spec = WorkloadSpec::core(CoreWorkload::E);
        let parsed = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn json_defaults_applied() {
        let spec = WorkloadSpec::from_json(&chronos_json::obj! {}).unwrap();
        assert_eq!(spec, WorkloadSpec::default());
    }

    #[test]
    fn json_rejects_unknown_distribution() {
        let bad = chronos_json::obj! { "distribution" => "gaussian" };
        assert!(WorkloadSpec::from_json(&bad).is_err());
    }

    #[test]
    fn thread_seeds_differ() {
        let spec = WorkloadSpec::default();
        let seeds: Vec<u64> = (0..16).map(|t| spec.thread_seed(t)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn distribution_name_roundtrip() {
        for d in [
            Distribution::Uniform,
            Distribution::Zipfian,
            Distribution::Latest,
            Distribution::Hotspot,
            Distribution::Exponential,
        ] {
            assert_eq!(Distribution::parse(d.as_str()), Some(d));
        }
        assert_eq!(Distribution::parse("nope"), None);
    }
}
