//! E5 — Chronos Control itself: evaluation-space expansion, job claiming,
//! and metadata-store recovery. Requirement (ii)/(iii) machinery must stay
//! cheap relative to the benchmarks it orchestrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chronos_core::auth::Role;
use chronos_core::params::{ParamAssignments, ParamDef, ParamType};
use chronos_core::store::MetadataStore;
use chronos_core::ChronosControl;
use chronos_json::{obj, Value};

/// Builds a control instance with a system whose space has `points` points.
fn control_with_space(points: i64) -> (ChronosControl, chronos_util::Id, chronos_util::Id) {
    let control = ChronosControl::in_memory();
    let owner = control.create_user("bench", "pw", Role::Member).unwrap();
    let system = control
        .register_system(
            "sut",
            "",
            vec![ParamDef::new(
                "p",
                "",
                ParamType::Interval { min: 1, max: points.max(1), step: 1 },
                Value::from(1),
            )
            .unwrap()],
            vec![],
        )
        .unwrap();
    let deployment = control.create_deployment(system.id, "bench", "1").unwrap();
    let project = control.create_project("bench", "", owner.id).unwrap();
    let experiment = control
        .create_experiment(project.id, system.id, "e", "", ParamAssignments::new().sweep_all("p"))
        .unwrap();
    (control, experiment.id, deployment.id)
}

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_space_expansion");
    group.sample_size(10);
    for points in [10i64, 100, 1000] {
        group.throughput(Throughput::Elements(points as u64));
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, &points| {
            let (control, experiment_id, _) = control_with_space(points);
            b.iter(|| control.create_evaluation(experiment_id).unwrap());
        });
    }
    group.finish();
}

fn bench_claim(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_job_claim");
    group.sample_size(10);
    group.bench_function("claim_one_of_100", |b| {
        b.iter_batched(
            || {
                let (control, experiment_id, deployment_id) = control_with_space(100);
                control.create_evaluation(experiment_id).unwrap();
                (control, deployment_id)
            },
            |(control, deployment_id)| {
                control.claim_next_job(deployment_id, None).unwrap().unwrap()
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_store_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_store_recovery");
    group.sample_size(10);
    let path =
        std::env::temp_dir().join(format!("chronos-bench-recovery-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let store = MetadataStore::open(&path).unwrap();
        for i in 0..2_000 {
            store
                .put("job", &format!("job{i:06}"), obj! {"state" => "finished", "i" => i})
                .unwrap();
        }
    }
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("replay_2000_entities", |b| {
        b.iter(|| MetadataStore::open(&path).unwrap().count("job"));
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

fn bench_store_contention(c: &mut Criterion) {
    use chronos_bench::baseline::SingleMutexStore;
    use chronos_bench::contention::run_mixed;

    const OPS_PER_THREAD: u64 = 2_000;
    let mut group = c.benchmark_group("e8_store_contention");
    group.sample_size(10);
    for threads in [1u64, 2, 8] {
        group.throughput(Throughput::Elements(threads * OPS_PER_THREAD));
        group.bench_with_input(
            BenchmarkId::new("single_mutex", threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_mixed(&SingleMutexStore::in_memory(), threads, OPS_PER_THREAD));
            },
        );
        group.bench_with_input(BenchmarkId::new("sharded", threads), &threads, |b, &threads| {
            b.iter(|| run_mixed(&MetadataStore::in_memory(), threads, OPS_PER_THREAD));
        });
    }
    group.finish();
}

fn bench_wal_append(c: &mut Criterion) {
    use chronos_bench::contention::sample_doc;

    let mut group = c.benchmark_group("e8_wal_append");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    let path = std::env::temp_dir().join(format!("chronos-bench-wal-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = MetadataStore::open(&path).unwrap();
    let mut i = 0u64;
    group.bench_function("durable_put", |b| {
        b.iter(|| {
            i += 1;
            store.put("job", "hot", sample_doc(i)).unwrap()
        });
    });
    drop(store);
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(
    benches,
    bench_expansion,
    bench_claim,
    bench_store_recovery,
    bench_store_contention,
    bench_wal_append
);
criterion_main!(benches);
