//! E1 — the demo headline under Criterion: YCSB-A throughput per engine and
//! client thread count, durable configuration.
//!
//! One Criterion iteration = one complete evaluation-client run (load +
//! measured phase), so `throughput` here is elements = operations per
//! iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chronos_bench::{run_docstore, RunConfig};

const RECORDS: i64 = 500;
const OPS: i64 = 2_000;

fn bench_engine_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_ycsb_a_durable");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    for engine in ["wiredtiger", "mmapv1"] {
        for threads in [1i64, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(engine, threads), &threads, |b, &threads| {
                b.iter(|| {
                    run_docstore(&RunConfig {
                        engine,
                        threads,
                        durability: true,
                        record_count: RECORDS,
                        operation_count: OPS,
                        ..RunConfig::default()
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_threads);
criterion_main!(benches);
