//! E4 — document size sensitivity: YCSB-A per engine across field lengths
//! (in-memory; isolates the update path's copy/compress/pad costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chronos_bench::{run_docstore, RunConfig};

const RECORDS: i64 = 250;
const OPS: i64 = 2_000;

fn bench_docsize(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_docsize_inmemory");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    for field_length in [64i64, 256, 1024] {
        for engine in ["wiredtiger", "mmapv1"] {
            group.bench_with_input(
                BenchmarkId::new(engine, field_length),
                &field_length,
                |b, &field_length| {
                    b.iter(|| {
                        run_docstore(&RunConfig {
                            engine,
                            threads: 2,
                            field_length,
                            durability: false,
                            record_count: RECORDS,
                            operation_count: OPS,
                            ..RunConfig::default()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_docsize);
criterion_main!(benches);
