//! E7 — tpcc-lite under Criterion: one iteration = one measured transaction
//! phase (the population is loaded once per engine outside the timing
//! loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chronos_agent::{EvaluationClient, JobContext, TpccClient};
use chronos_util::Id;

const TRANSACTIONS: i64 = 500;

fn bench_tpcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_tpcc_lite");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRANSACTIONS as u64));
    for engine in ["wiredtiger", "mmapv1"] {
        group.bench_with_input(BenchmarkId::from_parameter(engine), &engine, |b, &engine| {
            b.iter(|| {
                let mut client = TpccClient::new();
                let ctx = JobContext::new(
                    Id::generate(),
                    chronos_json::obj! {
                        "engine" => engine,
                        "threads" => 2,
                        "warehouses" => 1,
                        "transaction_count" => TRANSACTIONS,
                    },
                );
                client.set_up(&ctx).unwrap();
                let data = client.execute(&ctx).unwrap();
                client.tear_down(&ctx);
                data
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tpcc);
criterion_main!(benches);
