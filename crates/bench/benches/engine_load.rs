//! E3 — bulk load: the workflow's benchmark-data ingestion step, per engine
//! and compression setting (in-memory, isolating the CPU/storage path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chronos_json::obj;
use chronos_workload::{Operation, WorkloadRunner, WorkloadSpec};
use minidoc::{Database, DbConfig, EngineKind};

const RECORDS: u64 = 2_000;

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_bulk_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDS));
    for (label, engine, compression) in [
        ("wiredtiger_compress", EngineKind::WiredTiger, true),
        ("wiredtiger_raw", EngineKind::WiredTiger, false),
        ("mmapv1", EngineKind::MmapV1, false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let spec = WorkloadSpec { record_count: RECORDS, ..WorkloadSpec::default() };
            let runner = WorkloadRunner::new(spec).unwrap();
            let load: Vec<Operation> = runner.load_partition(0, 1);
            b.iter(|| {
                let db = Database::open(DbConfig::in_memory(engine).with_compression(compression))
                    .unwrap();
                let coll = db.collection("usertable");
                for op in &load {
                    if let Operation::Insert { key, fields } = op {
                        let mut doc = obj! {};
                        for (name, value) in fields {
                            doc.set(name.as_str(), value.as_str());
                        }
                        coll.insert(key, &doc).unwrap();
                    }
                }
                db.stats().stored_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
