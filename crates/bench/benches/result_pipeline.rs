//! E6 — the result pipeline: every job result is "a JSON and a zip file"
//! (paper §2.1), shipped base64-encoded over the REST API. These benches
//! cover each stage of that path on a realistic result document.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use chronos_bench::{run_docstore, RunConfig};
use chronos_util::encode::{base64_decode, base64_encode};
use chronos_zip::{ZipArchive, ZipWriter};

/// A realistic measurement document (a real merged RunSummary).
fn result_document() -> chronos_json::Value {
    let outcome = run_docstore(&RunConfig {
        record_count: 300,
        operation_count: 1_000,
        ..RunConfig::default()
    });
    let _ = outcome;
    // Re-run through the client to get the full document shape.
    use chronos_agent::EvaluationClient;
    let mut client = chronos_agent::DocstoreClient::new();
    let ctx = chronos_agent::JobContext::new(
        chronos_util::Id::generate(),
        RunConfig { record_count: 300, operation_count: 1_000, ..RunConfig::default() }.to_params(),
    );
    client.set_up(&ctx).unwrap();
    let data = client.execute(&ctx).unwrap();
    client.tear_down(&ctx);
    data
}

fn bench_pipeline(c: &mut Criterion) {
    let document = result_document();
    let text = document.to_string();
    let bytes = text.clone().into_bytes();

    let mut group = c.benchmark_group("e6_result_pipeline");
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    group.bench_function("json_serialize", |b| b.iter(|| document.to_string()));
    // The hot-path variants: reuse one buffer across iterations (how the
    // WAL frames records) and stream straight into bytes (how HTTP
    // bodies are built).
    let mut reused = String::with_capacity(text.len());
    group.bench_function("json_serialize_into_reused", |b| {
        b.iter(|| {
            reused.clear();
            document.write_into(&mut reused);
            reused.len()
        })
    });
    let mut reused_bytes: Vec<u8> = Vec::with_capacity(text.len());
    group.bench_function("json_write_to_bytes", |b| {
        b.iter(|| {
            reused_bytes.clear();
            document.write_to(&mut reused_bytes).unwrap();
            reused_bytes.len()
        })
    });
    group.bench_function("json_parse", |b| b.iter(|| chronos_json::parse(&text).unwrap()));
    group.bench_function("json_pretty", |b| b.iter(|| document.to_pretty_string()));
    group.bench_function("zip_pack", |b| {
        b.iter(|| {
            let mut w = ZipWriter::new();
            w.add_file("result.json", &bytes).unwrap();
            w.finish()
        })
    });
    let archive = {
        let mut w = ZipWriter::new();
        w.add_file("result.json", &bytes).unwrap();
        w.finish()
    };
    group.bench_function("zip_unpack", |b| {
        b.iter(|| ZipArchive::parse(&archive).unwrap().read("result.json").unwrap())
    });
    group.bench_function("base64_encode", |b| b.iter(|| base64_encode(&bytes)));
    let encoded = base64_encode(&bytes);
    group.bench_function("base64_decode", |b| b.iter(|| base64_decode(&encoded).unwrap()));
    group.bench_function("pointer_lookup", |b| {
        b.iter(|| {
            document
                .pointer("/operations/read/latency_micros/p99")
                .and_then(chronos_json::Value::as_u64)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
