//! E2 — read-mix sensitivity: YCSB A (update-heavy), B (read-mostly) and
//! C (read-only) per engine at 4 client threads, durable configuration.
//! The engines' gap should shrink as the write fraction goes to zero.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chronos_bench::{run_docstore, RunConfig};

const RECORDS: i64 = 500;

fn bench_readmix(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_readmix_durable");
    group.sample_size(10);
    for workload in ["a", "b", "c"] {
        // Read-heavy mixes run far faster per op; scale ops so each
        // iteration stays measurable.
        let ops: i64 = match workload {
            "a" => 2_000,
            "b" => 8_000,
            _ => 16_000,
        };
        group.throughput(Throughput::Elements(ops as u64));
        for engine in ["wiredtiger", "mmapv1"] {
            group.bench_with_input(
                BenchmarkId::new(format!("ycsb_{workload}"), engine),
                &engine,
                |b, &engine| {
                    b.iter(|| {
                        run_docstore(&RunConfig {
                            engine,
                            threads: 4,
                            workload,
                            durability: true,
                            record_count: RECORDS,
                            operation_count: ops,
                            ..RunConfig::default()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_readmix);
criterion_main!(benches);
