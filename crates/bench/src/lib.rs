//! Shared harness code for the Chronos benchmark suite.
//!
//! Every experiment in `EXPERIMENTS.md` is regenerated either by the
//! `chronos-bench` binary (`cargo run -p chronos-bench --release`), which
//! prints the full tables, or by the Criterion benches
//! (`cargo bench -p chronos-bench`), which measure the same configurations
//! under Criterion's statistics.

use chronos_agent::{DocstoreClient, EvaluationClient, JobContext};
use chronos_json::{obj, Value};
use chronos_util::Id;

pub mod baseline;
pub mod contention;
pub mod data_plane;
pub mod http_scale;
pub mod overload;

/// One measured benchmark configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// `"wiredtiger"` or `"mmapv1"`.
    pub engine: &'static str,
    /// Client threads.
    pub threads: i64,
    /// YCSB core workload letter.
    pub workload: &'static str,
    /// Records loaded.
    pub record_count: i64,
    /// Operations in the measured phase.
    pub operation_count: i64,
    /// Bytes per field (10 fields per document).
    pub field_length: i64,
    /// Disk-backed with synced journal/WAL.
    pub durability: bool,
    /// Block compression (wiredTiger only).
    pub compression: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            engine: "wiredtiger",
            threads: 1,
            workload: "a",
            record_count: 2_000,
            operation_count: 8_000,
            field_length: 100,
            durability: false,
            compression: true,
        }
    }
}

impl RunConfig {
    /// The parameter document handed to the evaluation client.
    pub fn to_params(&self) -> Value {
        obj! {
            "engine" => self.engine,
            "threads" => self.threads,
            "workload" => self.workload,
            "record_count" => self.record_count,
            "operation_count" => self.operation_count,
            "field_length" => self.field_length,
            "durability" => self.durability,
            "compression" => self.compression,
            "seed" => 42,
        }
    }
}

/// The measurements extracted from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Overall throughput.
    pub throughput_ops_per_sec: f64,
    /// Wall time of the measured phase.
    pub wall_millis: u64,
    /// p99 latency (µs) per operation kind, where present.
    pub read_p99_micros: Option<u64>,
    /// p99 update latency.
    pub update_p99_micros: Option<u64>,
    /// Engine-reported stored bytes after the run.
    pub stored_bytes: u64,
    /// Engine-reported logical bytes.
    pub logical_bytes: u64,
    /// Errors during the run.
    pub total_errors: u64,
}

/// Runs one full set-up → warm-up → execute → tear-down cycle of the demo
/// evaluation client and extracts the standard measurements.
pub fn run_docstore(config: &RunConfig) -> RunOutcome {
    let mut client = DocstoreClient::new();
    let ctx = JobContext::new(Id::generate(), config.to_params());
    client.set_up(&ctx).unwrap_or_else(|e| panic!("set_up: {e}"));
    client.warm_up(&ctx).unwrap_or_else(|e| panic!("warm_up: {e}"));
    let data = client.execute(&ctx).unwrap_or_else(|e| panic!("execute: {e}"));
    client.tear_down(&ctx);
    let p99 = |op: &str| {
        data.pointer(&format!("/operations/{op}/latency_micros/p99")).and_then(Value::as_u64)
    };
    RunOutcome {
        throughput_ops_per_sec: data
            .pointer("/throughput_ops_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        wall_millis: data.pointer("/wall_millis").and_then(Value::as_u64).unwrap_or(0),
        read_p99_micros: p99("read"),
        update_p99_micros: p99("update"),
        stored_bytes: data
            .pointer("/engine_stats/stored_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        logical_bytes: data
            .pointer("/engine_stats/logical_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        total_errors: data.pointer("/total_errors").and_then(Value::as_u64).unwrap_or(0),
    }
}

/// Renders a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(cell, width)| format!("{cell:>width$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Formats a number of ops/s compactly.
pub fn fmt_tp(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a byte count compactly.
pub fn fmt_bytes(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{:.1}MiB", v as f64 / (1 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.1}KiB", v as f64 / (1 << 10) as f64)
    } else {
        format!("{v}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_docstore_smoke() {
        let outcome = run_docstore(&RunConfig {
            record_count: 100,
            operation_count: 200,
            ..RunConfig::default()
        });
        assert!(outcome.throughput_ops_per_sec > 0.0);
        assert_eq!(outcome.total_errors, 0);
        assert!(outcome.stored_bytes > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_tp(532.0), "532");
        assert_eq!(fmt_tp(15_300.0), "15.3k");
        assert_eq!(fmt_tp(2_100_000.0), "2.10M");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4 << 20), "4.0MiB");
    }
}
