//! Mixed put/get/list contention harness shared by the E8 experiment in
//! `chronos-bench` and the Criterion control-plane benches.
//!
//! The workload models the control plane under a fleet of agents: mostly
//! document rewrites (heartbeats, log appends, state transitions) with a
//! steady diet of reads and the occasional full listing, spread over a
//! handful of kinds exactly as real traffic spreads over jobs,
//! evaluations, and deployments.

use std::time::Instant;

use chronos_json::{obj, Value};
use rand::{Rng, SeedableRng};

/// Store operations exercised under contention, implemented by both the
/// old single-mutex baseline and the sharded store.
pub trait ContendedStore: Sync {
    /// Insert or replace a document.
    fn put(&self, kind: &str, id: &str, doc: Value);
    /// Point read; returns whether the document existed.
    fn get(&self, kind: &str, id: &str) -> bool;
    /// Full listing; returns the number of documents.
    fn list(&self, kind: &str) -> usize;
}

impl ContendedStore for crate::baseline::SingleMutexStore {
    fn put(&self, kind: &str, id: &str, doc: Value) {
        crate::baseline::SingleMutexStore::put(self, kind, id, doc).unwrap();
    }
    fn get(&self, kind: &str, id: &str) -> bool {
        crate::baseline::SingleMutexStore::get(self, kind, id).is_some()
    }
    fn list(&self, kind: &str) -> usize {
        crate::baseline::SingleMutexStore::list(self, kind).len()
    }
}

impl ContendedStore for chronos_core::store::MetadataStore {
    fn put(&self, kind: &str, id: &str, doc: Value) {
        chronos_core::store::MetadataStore::put(self, kind, id, doc).unwrap();
    }
    fn get(&self, kind: &str, id: &str) -> bool {
        chronos_core::store::MetadataStore::get(self, kind, id).is_some()
    }
    fn list(&self, kind: &str) -> usize {
        chronos_core::store::MetadataStore::list(self, kind).len()
    }
}

/// Kinds the workload spreads over (jobs dominate real traffic, but all
/// kinds see writes).
pub const KINDS: [&str; 4] = ["job", "evaluation", "deployment", "result"];

/// Distinct ids per kind.
pub const IDS_PER_KIND: u64 = 128;

/// A job-shaped document of realistic size.
pub fn sample_doc(i: u64) -> Value {
    obj! {
        "state" => "running",
        "progress" => (i % 100) as i64,
        "attempts" => 1,
        "system_id" => "0123456789abcdefghjkmnpqrstvwxyz",
        "timeline" => "scheduled; claimed by deployment bench-1; heartbeat ok",
        "heartbeat_at" => 1_700_000_000_000i64 + i as i64,
    }
}

/// Outcome of one contended run.
pub struct MixReport {
    /// Operations completed across all threads.
    pub total_ops: u64,
    /// Wall time of the measured phase.
    pub elapsed_secs: f64,
}

impl MixReport {
    /// Aggregate throughput.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// Pre-populates every `(kind, id)` pair so reads hit and listings have a
/// fixed size, then runs `threads` workers, each performing
/// `ops_per_thread` operations: 50% put, 40% get, 10% list.
pub fn run_mixed<S: ContendedStore>(store: &S, threads: u64, ops_per_thread: u64) -> MixReport {
    for (k, kind) in KINDS.iter().enumerate() {
        for i in 0..IDS_PER_KIND {
            store.put(kind, &id_name(i), sample_doc(k as u64 * IDS_PER_KIND + i));
        }
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xE8_000 + t);
                for i in 0..ops_per_thread {
                    let kind = KINDS[rng.gen_range(0..KINDS.len() as u64) as usize];
                    let id = id_name(rng.gen_range(0..IDS_PER_KIND));
                    match rng.gen_range(0..10u64) {
                        0..=4 => store.put(kind, &id, sample_doc(i)),
                        5..=8 => {
                            assert!(store.get(kind, &id), "pre-populated read must hit");
                        }
                        _ => {
                            assert!(store.list(kind) >= IDS_PER_KIND as usize);
                        }
                    }
                }
            });
        }
    });
    MixReport { total_ops: threads * ops_per_thread, elapsed_secs: start.elapsed().as_secs_f64() }
}

fn id_name(i: u64) -> String {
    format!("id{i:05}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_drives_both_stores() {
        let report = run_mixed(&crate::baseline::SingleMutexStore::in_memory(), 2, 200);
        assert_eq!(report.total_ops, 400);
        let report = run_mixed(&chronos_core::store::MetadataStore::in_memory(), 2, 200);
        assert_eq!(report.total_ops, 400);
        assert!(report.ops_per_sec() > 0.0);
    }
}
