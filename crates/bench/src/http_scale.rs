//! E12 harness: keep-alive connection-scaling generator for chronos-http.
//!
//! Simulates a fleet of Chronos Agents holding persistent keep-alive
//! connections to the control plane. `agents` sockets are multiplexed over
//! a small, fixed set of driver threads (the bench must not need one OS
//! thread per agent — that is the server pathology under test), each
//! driver round-robining a closed loop over its sockets: send one `GET`,
//! read one response, move on.
//!
//! Classification mirrors the E11 harness: 2xx responses are goodput and
//! record their latency; typed 429/503 sheds back off per the server's
//! Retry-After hint; a read timeout — the signature of a connection that
//! got accepted but will never be served — counts as an error and forces
//! a reconnect. A healthy core answers every agent *somehow* (result or
//! typed shed) within the timeout; a core that pins one thread per
//! connection starves everything beyond its thread budget.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos_json::{obj, Value};

/// Driver threads multiplexing the agent sockets.
pub const DRIVERS: usize = 8;

/// Read timeout: an agent whose request is not answered (even by a typed
/// shed) within this window counts as starved.
const READ_TIMEOUT: Duration = Duration::from_secs(1);

/// Connect timeout for (re)dialing an agent socket.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Backoff after a shed when the server sent no usable Retry-After hint.
const DEFAULT_SHED_BACKOFF: Duration = Duration::from_millis(5);

/// Cap on how long an agent honors a shed hint. Generous compared to the
/// E11 harness: at thousands of agents the shed replies themselves are a
/// server workload, and a cooperating fleet paces accordingly.
const MAX_SHED_BACKOFF: Duration = Duration::from_secs(2);

/// Pause before redialing after a transport error (avoids connect storms
/// against a core that is already failing to keep up).
const RECONNECT_BACKOFF: Duration = Duration::from_millis(10);

/// One measured point: `agents` keep-alive connections for `duration`.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub agents: usize,
    pub ok: u64,
    pub shed: u64,
    /// Starved or broken requests: read timeouts, EOFs, connect failures.
    pub errors: u64,
    pub reconnects: u64,
    /// Agents that completed at least one 2xx during the window. A core
    /// that answers only a lucky few at full speed has high goodput but
    /// low coverage — it is not sustaining the fleet.
    pub served_agents: usize,
    pub goodput_per_sec: f64,
    /// Latency percentiles over accepted (2xx) responses only.
    pub p50_ms: f64,
    pub p99_ms: f64,
}

impl ScalePoint {
    /// Fraction of answered-or-attempted requests that failed outright.
    pub fn error_rate(&self) -> f64 {
        let total = self.ok + self.shed + self.errors;
        if total == 0 {
            return 1.0;
        }
        self.errors as f64 / total as f64
    }

    /// JSON row for `BENCH_http_scale.json`.
    pub fn to_json(&self) -> Value {
        obj! {
            "agents" => self.agents as i64,
            "ok" => self.ok as i64,
            "shed" => self.shed as i64,
            "errors" => self.errors as i64,
            "reconnects" => self.reconnects as i64,
            "served_agents" => self.served_agents as i64,
            "goodput_per_sec" => self.goodput_per_sec,
            "p50_ms" => self.p50_ms,
            "p99_ms" => self.p99_ms,
        }
    }
}

/// One agent socket owned by a driver thread.
struct AgentConn {
    stream: Option<BufReader<TcpStream>>,
    /// Earliest instant this agent may send again (shed/reconnect backoff).
    not_before: Instant,
    /// Completed at least one 2xx this window.
    served: bool,
    /// Per-socket LCG state for backoff jitter (seeded from the socket's
    /// global index, so runs are reproducible).
    seed: u64,
}

impl AgentConn {
    /// Jitters a shed hint upward into [1.0, 1.5)× — the agent contract
    /// (`max(jittered backoff, server hint)`): the hint is a floor, and
    /// the spread keeps a fleet that was shed together from retrying in
    /// lockstep and being shed together forever.
    fn jittered(&mut self, hint: Duration) -> Duration {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let frac = 1024 + ((self.seed >> 33) % 512) as u32;
        hint.mul_f64(f64::from(frac) / 1024.0)
    }
}

/// What one response told us.
enum Reply {
    Ok { latency: Duration, close: bool },
    Shed { hint: Option<Duration>, close: bool },
    Broken,
}

/// Reads one keep-alive HTTP response off `reader`.
fn read_reply(reader: &mut BufReader<TcpStream>, started: Instant) -> Reply {
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) | Err(_) => return Reply::Broken,
        Ok(_) => {}
    }
    let status: u16 = match status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
        Some(code) => code,
        None => return Reply::Broken,
    };
    let mut content_length = 0usize;
    let mut close = false;
    let mut hint = None;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return Reply::Broken,
            Ok(_) => {}
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-chronos-retry-after-ms") {
            hint = value.parse::<u64>().ok().map(Duration::from_millis);
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return Reply::Broken;
    }
    match status {
        200..=299 => Reply::Ok { latency: started.elapsed(), close },
        429 | 503 => Reply::Shed { hint, close },
        _ => Reply::Broken,
    }
}

/// Runs `agents` closed-loop keep-alive connections against `addr` for
/// `duration`, multiplexed over [`DRIVERS`] driver threads.
pub fn run_scale(addr: SocketAddr, path: &str, agents: usize, duration: Duration) -> ScalePoint {
    let drivers = DRIVERS.min(agents.max(1));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..drivers)
        .map(|driver| {
            // Spread the sockets as evenly as the division allows.
            let mine = agents / drivers + usize::from(driver < agents % drivers);
            let stop = Arc::clone(&stop);
            let request =
                format!("GET {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\n\r\n");
            std::thread::spawn(move || {
                let now = Instant::now();
                let mut conns: Vec<AgentConn> = (0..mine)
                    .map(|i| AgentConn {
                        stream: None,
                        not_before: now,
                        served: false,
                        seed: (driver * agents + i) as u64 | 1,
                    })
                    .collect();
                let mut ok = 0u64;
                let mut shed = 0u64;
                let mut errors = 0u64;
                let mut reconnects = 0u64;
                let mut latencies: Vec<f64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let mut progressed = false;
                    let mut next_due: Option<Instant> = None;
                    for conn in conns.iter_mut() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let now = Instant::now();
                        if now < conn.not_before {
                            next_due = Some(match next_due {
                                Some(due) => due.min(conn.not_before),
                                None => conn.not_before,
                            });
                            continue;
                        }
                        if conn.stream.is_none() {
                            let Ok(stream) = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)
                            else {
                                errors += 1;
                                conn.not_before = now + RECONNECT_BACKOFF;
                                continue;
                            };
                            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                            let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
                            let _ = stream.set_nodelay(true);
                            conn.stream = Some(BufReader::new(stream));
                        }
                        let reader = conn.stream.as_mut().expect("connected above");
                        progressed = true;
                        let sent = Instant::now();
                        if reader.get_mut().write_all(request.as_bytes()).is_err() {
                            errors += 1;
                            conn.stream = None;
                            conn.not_before = sent + RECONNECT_BACKOFF;
                            continue;
                        }
                        match read_reply(reader, sent) {
                            Reply::Ok { latency, close } => {
                                ok += 1;
                                conn.served = true;
                                latencies.push(latency.as_secs_f64() * 1e3);
                                if close {
                                    conn.stream = None;
                                    reconnects += 1;
                                }
                            }
                            Reply::Shed { hint, close } => {
                                shed += 1;
                                let base =
                                    hint.unwrap_or(DEFAULT_SHED_BACKOFF).min(MAX_SHED_BACKOFF);
                                conn.not_before = Instant::now() + conn.jittered(base);
                                if close {
                                    conn.stream = None;
                                    reconnects += 1;
                                }
                            }
                            Reply::Broken => {
                                errors += 1;
                                conn.stream = None;
                                conn.not_before = Instant::now() + RECONNECT_BACKOFF;
                            }
                        }
                    }
                    if !progressed {
                        // Every socket is backing off: sleep until the
                        // earliest one is due instead of rescanning — the
                        // CPU belongs to the server under test.
                        let wait = next_due
                            .map(|due| due.saturating_duration_since(Instant::now()))
                            .unwrap_or(Duration::from_millis(1))
                            .clamp(Duration::from_micros(100), Duration::from_millis(10));
                        std::thread::sleep(wait);
                    }
                }
                let served = conns.iter().filter(|c| c.served).count();
                (ok, shed, errors, reconnects, served, latencies)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut reconnects = 0u64;
    let mut served_agents = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    for handle in handles {
        let (o, s, e, r, served, mut l) = handle.join().expect("driver thread panicked");
        ok += o;
        shed += s;
        errors += e;
        reconnects += r;
        served_agents += served;
        latencies.append(&mut l);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let p50 = crate::overload::percentile_ms(&mut latencies, 50.0);
    let p99 = crate::overload::percentile_ms(&mut latencies, 99.0);
    ScalePoint {
        agents,
        ok,
        shed,
        errors,
        reconnects,
        served_agents,
        goodput_per_sec: ok as f64 / elapsed.max(1e-9),
        p50_ms: p50,
        p99_ms: p99,
    }
}

/// Per-core E12 result: the sweep plus the headline "sustained agents"
/// figure (largest point that kept goodput within 10% of the core's peak,
/// accepted p99 within 2x the low-concurrency baseline, and errors under
/// 1%).
#[derive(Debug)]
pub struct CoreReport {
    pub core: &'static str,
    pub baseline_p99_ms: f64,
    pub points: Vec<ScalePoint>,
    pub sustained_agents: usize,
}

impl CoreReport {
    /// Applies the sustained-agents criterion over a finished sweep.
    pub fn evaluate(
        core: &'static str,
        baseline_p99_ms: f64,
        points: Vec<ScalePoint>,
    ) -> CoreReport {
        let peak = points.iter().map(|p| p.goodput_per_sec).fold(0.0f64, f64::max);
        let sustained_agents = points
            .iter()
            .filter(|p| point_sustained(p, peak, baseline_p99_ms))
            .map(|p| p.agents)
            .max()
            .unwrap_or(0);
        CoreReport { core, baseline_p99_ms, points, sustained_agents }
    }

    /// JSON block for `BENCH_http_scale.json`.
    pub fn to_json(&self) -> Value {
        obj! {
            "core" => self.core,
            "baseline_p99_ms" => self.baseline_p99_ms,
            "sustained_agents" => self.sustained_agents as i64,
            "points" => Value::Array(self.points.iter().map(ScalePoint::to_json).collect()),
        }
    }
}

/// Whether one sweep point meets the sustained criterion: goodput within
/// 10% of the core's peak, accepted p99 within 2x the low-concurrency
/// baseline, under 1% starved requests, and at least 95% of the agents
/// actually served.
pub fn point_sustained(point: &ScalePoint, peak_goodput: f64, baseline_p99_ms: f64) -> bool {
    // The baseline is floored at 1 ms: sub-millisecond tails on a shared
    // host are scheduler noise, not signal — Chronos agents poll at second
    // granularity (paper §2.2), so a millisecond of added tail is well
    // inside "sustained".
    point.goodput_per_sec >= 0.9 * peak_goodput
        && point.p99_ms <= 2.0 * baseline_p99_ms.max(1.0)
        && point.error_rate() <= 0.01
        && point.served_agents as f64 >= 0.95 * point.agents as f64
}

/// Whether a sweep should stop early: the core has collapsed at this point,
/// so larger points would only burn bench time re-proving it.
pub fn point_collapsed(point: &ScalePoint, peak_goodput: f64) -> bool {
    point.goodput_per_sec < 0.5 * peak_goodput || point.error_rate() > 0.10
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(agents: usize, goodput: f64, p99: f64, ok: u64, errors: u64) -> ScalePoint {
        ScalePoint {
            agents,
            ok,
            shed: 0,
            errors,
            reconnects: 0,
            served_agents: agents,
            goodput_per_sec: goodput,
            p50_ms: p99 / 2.0,
            p99_ms: p99,
        }
    }

    #[test]
    fn sustained_criterion_applies_all_four_gates() {
        let baseline = 2.0;
        let peak = 1000.0;
        assert!(point_sustained(&point(64, 950.0, 3.0, 1000, 0), peak, baseline));
        // Goodput collapse.
        assert!(!point_sustained(&point(64, 500.0, 3.0, 1000, 0), peak, baseline));
        // Latency blowout.
        assert!(!point_sustained(&point(64, 950.0, 9.0, 1000, 0), peak, baseline));
        // Starvation errors.
        assert!(!point_sustained(&point(64, 950.0, 3.0, 1000, 50), peak, baseline));
        // High goodput concentrated on a lucky few agents.
        let mut unfair = point(64, 950.0, 3.0, 1000, 0);
        unfair.served_agents = 6;
        assert!(!point_sustained(&unfair, peak, baseline));
    }

    #[test]
    fn collapse_detector_stops_hopeless_sweeps() {
        assert!(point_collapsed(&point(512, 100.0, 1.0, 100, 0), 1000.0));
        assert!(point_collapsed(&point(512, 950.0, 1.0, 100, 20), 1000.0));
        assert!(!point_collapsed(&point(512, 950.0, 1.0, 1000, 5), 1000.0));
    }

    #[test]
    fn error_rate_handles_zero_traffic() {
        assert_eq!(point(8, 0.0, 0.0, 0, 0).error_rate(), 1.0);
    }

    #[test]
    fn report_picks_largest_sustained_point() {
        let report = CoreReport::evaluate(
            "reactor",
            2.0,
            vec![
                point(4, 1000.0, 2.5, 4000, 0),
                point(64, 980.0, 3.0, 3900, 0),
                point(512, 960.0, 3.5, 3800, 0),
                point(2048, 500.0, 30.0, 2000, 100),
            ],
        );
        assert_eq!(report.sustained_agents, 512);
    }
}
