//! The pre-overhaul metadata store, preserved verbatim-in-spirit as the
//! baseline for the control-plane contention benchmarks (experiment E8).
//!
//! This is the design the sharded store replaced: one global mutex over
//! all kinds, deep-cloned documents on every read, and a per-record
//! `format!`-style log append performed *inside* the lock. Keeping it
//! here lets `chronos-bench` measure the overhaul as a ratio on the same
//! machine instead of trusting a historical number.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use chronos_json::{obj, Value};

struct Inner {
    kinds: BTreeMap<String, BTreeMap<String, Value>>,
    log: Option<File>,
}

/// The old single-mutex store: every operation — including log framing
/// and the write syscall — happens while holding the one lock.
pub struct SingleMutexStore {
    inner: Mutex<Inner>,
}

impl SingleMutexStore {
    /// A purely in-memory store.
    pub fn in_memory() -> Self {
        SingleMutexStore { inner: Mutex::new(Inner { kinds: BTreeMap::new(), log: None }) }
    }

    /// A store appending to a fresh log at `path` (no replay; the bench
    /// only needs the steady-state write path).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let log = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(SingleMutexStore { inner: Mutex::new(Inner { kinds: BTreeMap::new(), log: Some(log) }) })
    }

    /// Stores a document, serializing the log record under the lock.
    pub fn put(&self, kind: &str, id: &str, document: Value) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.log.is_some() {
            let entry = obj! {
                "op" => "put",
                "kind" => kind,
                "id" => id,
                "doc" => document.clone(),
            };
            let log = inner.log.as_mut().unwrap();
            writeln!(log, "{entry}")?;
        }
        inner.kinds.entry(kind.to_string()).or_default().insert(id.to_string(), document);
        Ok(())
    }

    /// Fetches a document (deep clone, as the old API did).
    pub fn get(&self, kind: &str, id: &str) -> Option<Value> {
        self.inner.lock().unwrap().kinds.get(kind)?.get(id).cloned()
    }

    /// All documents of a kind, deep-cloned in id order.
    pub fn list(&self, kind: &str) -> Vec<Value> {
        match self.inner.lock().unwrap().kinds.get(kind) {
            Some(map) => map.values().cloned().collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let store = SingleMutexStore::in_memory();
        store.put("k", "a", obj! {"v" => 1}).unwrap();
        store.put("k", "b", obj! {"v" => 2}).unwrap();
        assert_eq!(store.get("k", "a").unwrap().get("v").and_then(Value::as_i64), Some(1));
        assert_eq!(store.list("k").len(), 2);
        assert!(store.get("x", "a").is_none());
    }
}
