//! `chronos-bench` — regenerates every experiment of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p chronos-bench --release            # all experiments
//! cargo run -p chronos-bench --release -- E1 E3   # a subset
//! cargo run -p chronos-bench --release -- --quick # smaller sizes
//! ```

use std::sync::Arc;
use std::time::Instant;

use chronos_bench::{fmt_bytes, fmt_tp, row, run_docstore, RunConfig};
use chronos_core::auth::Role;
use chronos_core::params::{ParamAssignments, ParamDef, ParamType};
use chronos_core::store::MetadataStore;
use chronos_core::ChronosControl;
use chronos_json::Value;

struct Scale {
    records: i64,
    ops: i64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let emit_json = args.iter().any(|a| a == "--json");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let scale = if quick {
        Scale { records: 500, ops: 2_000 }
    } else {
        Scale { records: 2_000, ops: 8_000 }
    };
    let want =
        |id: &str| selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(id));

    println!("chronos-bench: reproducing the Chronos (EDBT 2020) demo evaluation");
    println!(
        "host cores: {}\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    if want("E1") {
        experiment_e1(&scale);
    }
    if want("E2") {
        experiment_e2(&scale);
    }
    if want("E3") {
        experiment_e3(&scale);
    }
    if want("E4") {
        experiment_e4(&scale);
    }
    if want("E5") {
        experiment_e5();
    }
    if want("E6") {
        experiment_e6();
    }
    if want("E7") {
        experiment_e7(&scale);
    }
    if want("E8") {
        experiment_e8(quick, emit_json);
    }
    if want("E9") {
        experiment_e9(quick, emit_json);
    }
    if want("E11") {
        experiment_e11(quick, emit_json);
    }
    if want("E12") {
        experiment_e12(quick, emit_json);
    }
    if want("E13") {
        experiment_e13(quick, emit_json);
    }
    if want("E14") {
        experiment_e14(quick, emit_json);
    }
    if want("E15") {
        experiment_e15(quick, emit_json);
    }
    if want("E16") {
        experiment_e16(quick, emit_json);
    }
}

/// E16 — per-job budget enforcement: what does the agent-side watchdog cost
/// a compliant workload, and how quickly does it contain a runaway one?
/// The overhead half runs a fixed amount of cpu work with and without an
/// armed (never-breaching) watchdog and asserts the slowdown stays ≤2%.
/// The containment half arms tight wall/cpu/rss budgets against the
/// deliberately misbehaving [`chronos_workload::RunawayScenario`] loops and
/// asserts each is cancelled with the right typed dimension — the wall case
/// within one watchdog interval plus scheduling slack. `--json` also writes
/// the numbers to `BENCH_isolation.json`.
fn experiment_e16(quick: bool, emit_json: bool) {
    use std::time::Duration;

    use chronos_agent::{
        current_rss_kib, BudgetWatchdog, JobBudget, JobContext, BUDGET_EXCEEDED_PREFIX,
    };
    use chronos_util::Id;
    use chronos_workload::{RunawayKind, RunawayScenario};

    println!("== E16: budget enforcement overhead and runaway containment ==");
    let interval = Duration::from_millis(25);
    let reps = if quick { 5usize } else { 9 };
    let spin_rounds = if quick { 40u64 } else { 150 };

    // A fixed, compliant unit of cpu work: the same mixing loop the runaway
    // scenarios spin on, but bounded by round count instead of a budget.
    let compliant_work = |rounds: u64| {
        let mut acc = 0x9e3779b97f4a7c15u64;
        for round in 0..rounds {
            for i in 0..1_000_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i ^ round).rotate_left(17);
            }
        }
        std::hint::black_box(acc);
    };

    // Overhead: min-of-reps wall time for the fixed work, bare vs with a
    // watchdog sampling procfs every `interval` against budgets the work
    // can never breach. Min is the low-noise estimator for fixed work.
    let mut bare_secs = f64::MAX;
    let mut watched_secs = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        compliant_work(spin_rounds);
        bare_secs = bare_secs.min(start.elapsed().as_secs_f64());
    }
    for _ in 0..reps {
        let ctx = JobContext::new(Id::generate(), Value::Null);
        let generous = JobBudget {
            cpu_millis: Some(3_600_000),
            wall_millis: Some(3_600_000),
            ..Default::default()
        };
        let start = Instant::now();
        let watchdog = BudgetWatchdog::arm(&ctx, generous, interval);
        compliant_work(spin_rounds);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            watchdog.disarm().is_none(),
            "a compliant workload must never trip a generous budget"
        );
        assert!(!ctx.is_cancelled());
        watched_secs = watched_secs.min(elapsed);
    }
    let overhead = (watched_secs - bare_secs) / bare_secs;
    assert!(
        overhead <= 0.02,
        "watchdog overhead {:.2}% exceeds the 2% bound (bare {bare_secs:.4}s, watched {watched_secs:.4}s)",
        overhead * 100.0
    );

    // Containment: each runaway trips the budgeted dimension, the watchdog
    // cancels the context, and the abuse loop stops long before its safety
    // cap. Only the wall case gets a latency bound — cpu accrual and rss
    // growth rates depend on host load, but wall-clock detection is purely
    // the watchdog's sampling cadence.
    let wall_budget_millis = 120u64;
    let slack = Duration::from_millis(200);
    struct KillCase {
        dimension: &'static str,
        kind: RunawayKind,
        budget: JobBudget,
        bound_latency: bool,
    }
    let kills = [
        KillCase {
            dimension: "wall_millis",
            kind: RunawayKind::SpinCpu,
            budget: JobBudget { wall_millis: Some(wall_budget_millis), ..Default::default() },
            bound_latency: true,
        },
        KillCase {
            dimension: "cpu_millis",
            kind: RunawayKind::SpinCpu,
            budget: JobBudget { cpu_millis: Some(wall_budget_millis), ..Default::default() },
            bound_latency: false,
        },
        KillCase {
            dimension: "max_rss_kib",
            kind: RunawayKind::AllocBomb,
            budget: JobBudget {
                max_rss_kib: current_rss_kib().map(|rss| rss + 40 * 1024),
                ..Default::default()
            },
            bound_latency: false,
        },
    ];

    let widths = [13, 11, 14, 14, 8];
    println!(
        "{}",
        row(
            &[
                "dimension".into(),
                "scenario".into(),
                "elapsed ms".into(),
                "latency ms".into(),
                "typed".into(),
            ],
            &widths
        )
    );
    let mut kill_reports = Vec::new();
    for case in kills {
        if case.dimension == "max_rss_kib" && case.budget.max_rss_kib.is_none() {
            // procfs is restricted (e.g. a locked-down sandbox): absence of
            // counters must never breach, so there is nothing to measure.
            println!("  max_rss_kib: skipped (procfs rss unavailable)");
            continue;
        }
        let ctx = JobContext::new(Id::generate(), Value::Null);
        let scenario = RunawayScenario::new(case.kind);
        let start = Instant::now();
        let watchdog = BudgetWatchdog::arm(&ctx, case.budget, interval);
        let iterations = scenario.run(&|| ctx.is_cancelled());
        let elapsed = start.elapsed();
        let breach = watchdog.disarm().expect("the runaway must breach its budget");
        assert_eq!(breach.dimension, case.dimension, "breach typed to the budgeted dimension");
        assert!(
            breach.reason().starts_with(BUDGET_EXCEEDED_PREFIX),
            "breach reason carries the typed prefix: {}",
            breach.reason()
        );
        assert!(ctx.is_cancelled(), "the breach cancels the job context");
        assert!(ctx.cancel_reason().starts_with(BUDGET_EXCEEDED_PREFIX));
        assert!(
            elapsed < Duration::from_millis(scenario.cap_millis),
            "containment must beat the scenario's own safety cap"
        );
        if case.kind == RunawayKind::AllocBomb {
            assert!(
                (iterations as usize) < scenario.cap_alloc_mib,
                "the rss breach must fire before the allocation cap"
            );
        }
        let latency = elapsed.saturating_sub(Duration::from_millis(wall_budget_millis));
        if case.bound_latency {
            assert!(
                latency <= interval + slack,
                "wall kill latency {latency:?} exceeds interval {interval:?} + slack {slack:?}"
            );
        }
        println!(
            "{}",
            row(
                &[
                    case.dimension.into(),
                    case.kind.as_str().into(),
                    format!("{:.1}", elapsed.as_secs_f64() * 1e3),
                    if case.bound_latency {
                        format!("{:.1}", latency.as_secs_f64() * 1e3)
                    } else {
                        "-".into()
                    },
                    "ok".into(),
                ],
                &widths
            )
        );
        kill_reports.push(chronos_json::obj! {
            "dimension" => case.dimension,
            "scenario" => case.kind.as_str(),
            "elapsed_millis" => elapsed.as_secs_f64() * 1e3,
            "kill_latency_millis" => latency.as_secs_f64() * 1e3,
            "latency_bounded" => case.bound_latency,
        });
    }
    println!(
        "shape: an armed watchdog costs a compliant workload <=2% \
         (measured {:.2}%), and runaways die typed within the sampling cadence\n",
        overhead * 100.0
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E16",
            "description" => "per-job budget enforcement: watchdog overhead on compliant work and kill latency on runaway work",
            "watchdog_interval_millis" => interval.as_millis() as i64,
            "overhead" => chronos_json::obj! {
                "reps" => reps as i64,
                "spin_rounds" => spin_rounds as i64,
                "bare_secs" => bare_secs,
                "watched_secs" => watched_secs,
                "overhead_fraction" => overhead,
                "bound_fraction" => 0.02,
            },
            "wall_budget_millis" => wall_budget_millis as i64,
            "kills" => Value::from(kill_reports),
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
        };
        let path = "BENCH_isolation.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E15 — adaptive parameter-space scheduling: successive halving over a
/// seeded synthetic response surface vs exhausting the grid. Asserts the
/// adaptive run converges on the best configuration it sampled with at most
/// 30% of the grid's jobs, and that replaying the same seed reproduces the
/// pruning decisions bit-for-bit. `--json` also writes the numbers to
/// `BENCH_adaptive.json` for regression tracking.
fn experiment_e15(quick: bool, emit_json: bool) {
    use std::collections::HashMap;

    use chronos_core::{AdaptiveConfig, Strategy};
    use chronos_workload::ResponseSurface;

    println!("== E15: adaptive parameter-space scheduling (successive halving) ==");
    let axis: i64 = if quick { 11 } else { 23 };
    let total = (axis * axis) as u64;
    let seeds = [11u64, 23, 47];

    struct AdaptiveRun {
        jobs: u64,
        best_point: u64,
        best_throughput: f64,
        decisions: Vec<Value>,
        claim_secs: f64,
        scores: HashMap<u64, f64>,
    }

    // One full adaptive evaluation against the seeded surface: claim until
    // the source is exhausted, finishing each job with the surface's result
    // document so the rung advance scores through the columnar kernels.
    let run = |seed: u64| -> AdaptiveRun {
        let surface = ResponseSurface::new(seed, 2);
        let control = ChronosControl::in_memory();
        let owner = control.create_user("bench", "pw", Role::Member).unwrap();
        let system = control
            .register_system(
                "sut",
                "",
                vec![
                    ParamDef::new(
                        "x",
                        "",
                        ParamType::Interval { min: 0, max: axis - 1, step: 1 },
                        Value::from(0),
                    )
                    .unwrap(),
                    ParamDef::new(
                        "y",
                        "",
                        ParamType::Interval { min: 0, max: axis - 1, step: 1 },
                        Value::from(0),
                    )
                    .unwrap(),
                ],
                vec![],
            )
            .unwrap();
        let deployment = control.create_deployment(system.id, "bench", "1").unwrap();
        let project = control.create_project("bench", "E15", owner.id).unwrap();
        let experiment = control
            .create_experiment_with_strategy(
                project.id,
                system.id,
                "surface sweep",
                "",
                ParamAssignments::new().sweep_all("x").sweep_all("y"),
                Strategy::Adaptive(AdaptiveConfig { seed, ..Default::default() }),
            )
            .unwrap();
        let evaluation = control.create_evaluation(experiment.id).unwrap();

        let start = Instant::now();
        let mut jobs = 0u64;
        let mut scores: HashMap<u64, f64> = HashMap::new();
        while let Some(job) = control.claim_next_job(deployment.id, None).unwrap() {
            jobs += 1;
            let x = job.parameters.get("x").and_then(Value::as_i64).unwrap();
            let y = job.parameters.get("y").and_then(Value::as_i64).unwrap();
            let coords = [x as f64 / (axis - 1) as f64, y as f64 / (axis - 1) as f64];
            scores.insert(job.point_index.unwrap(), surface.throughput(&coords));
            control
                .finish_job(
                    job.id,
                    surface.result_document(&coords),
                    vec![],
                    Some(job.attempts),
                    None,
                )
                .unwrap();
        }
        let claim_secs = start.elapsed().as_secs_f64();

        let status = control.evaluation_status(evaluation.id).unwrap();
        assert!(status.is_settled(), "adaptive source must drain to settled");
        assert_eq!(status.remaining, Some(0));
        let evaluation = control.get_evaluation(evaluation.id).unwrap();
        let frontier = evaluation.source.unwrap().frontier.unwrap();
        assert_eq!(frontier.candidates.len(), 1, "exactly one survivor");
        let best_point = frontier.candidates[0];
        AdaptiveRun {
            jobs,
            best_point,
            best_throughput: scores[&best_point],
            decisions: frontier.decisions,
            claim_secs,
            scores,
        }
    };

    let widths = [6, 11, 14, 9, 12, 8];
    println!(
        "{}",
        row(
            &[
                "seed".into(),
                "grid jobs".into(),
                "adaptive jobs".into(),
                "budget".into(),
                "regret".into(),
                "replay".into(),
            ],
            &widths
        )
    );
    let mut reports = Vec::new();
    for seed in seeds {
        let outcome = run(seed);

        // The surface is noiseless, so successive halving can never prune
        // its best sampled configuration: the survivor must be the argmax
        // of everything the run measured.
        let sampled_best = outcome.scores.values().fold(f64::MIN, |best, &score| best.max(score));
        assert_eq!(
            outcome.best_throughput, sampled_best,
            "seed {seed}: survivor is not the best sampled configuration"
        );
        let budget = outcome.jobs as f64 / total as f64;
        assert!(budget <= 0.30, "seed {seed}: adaptive used {budget:.2} of the grid (limit 0.30)");

        // Global regret: how far the survivor's throughput sits below the
        // best point anywhere on the full grid.
        let surface = ResponseSurface::new(seed, 2);
        let mut grid_best = f64::MIN;
        for ix in 0..axis {
            for iy in 0..axis {
                let t = surface
                    .throughput(&[ix as f64 / (axis - 1) as f64, iy as f64 / (axis - 1) as f64]);
                grid_best = grid_best.max(t);
            }
        }
        let regret = (grid_best - outcome.best_throughput) / grid_best;

        // Determinism: replaying the seed reproduces every pruning decision.
        let replay = run(seed);
        assert_eq!(replay.decisions, outcome.decisions, "seed {seed}: replay diverged");
        assert_eq!(replay.best_point, outcome.best_point);
        assert_eq!(replay.jobs, outcome.jobs);

        println!(
            "{}",
            row(
                &[
                    seed.to_string(),
                    total.to_string(),
                    outcome.jobs.to_string(),
                    format!("{:.1}%", budget * 100.0),
                    format!("{:.2}%", regret * 100.0),
                    "ok".into(),
                ],
                &widths
            )
        );
        reports.push(chronos_json::obj! {
            "seed" => seed as i64,
            "grid_jobs" => total as i64,
            "adaptive_jobs" => outcome.jobs as i64,
            "budget_fraction" => budget,
            "global_regret" => regret,
            "best_point_index" => outcome.best_point as i64,
            "best_throughput_ops_per_sec" => outcome.best_throughput,
            "rung_decisions" => outcome.decisions.len() as i64,
            "claim_loop_secs" => outcome.claim_secs,
        });
    }
    println!(
        "shape: successive halving reaches each surface's best sampled point \
         with <=30% of the grid's jobs, and seeds replay to identical decisions\n"
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E15",
            "description" => "adaptive successive-halving scheduling vs full grid on a seeded response surface",
            "space" => chronos_json::obj! {
                "axes" => 2,
                "axis_cardinality" => axis,
                "total_points" => total as i64,
            },
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
            "runs" => Value::from(reports),
        };
        let path = "BENCH_adaptive.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E13 — result-analytics aggregation throughput: the parse-every-JSON-row
/// baseline (what the chart/summary endpoints did before the columnar
/// store) vs decoding the columnar table and running vectorized kernels.
/// Both paths compute the same chart aggregation and p99, and must agree
/// bit-for-bit. `--json` also writes the numbers to `BENCH_analytics.json`.
fn experiment_e13(quick: bool, emit_json: bool) {
    use chronos_analytics::{percentile_sorted, ResultTable};
    use chronos_core::analysis::{
        chart_data_from_points, chart_data_from_table, ResultPoint, STANDARD_METRIC_PATHS,
    };
    use chronos_core::charts::ChartSpec;
    use chronos_util::Id;

    println!("== E13: result analytics (JSON row scan vs columnar kernels) ==");
    let rows = if quick { 5_000usize } else { 50_000 };
    let reps = if quick { 3 } else { 5 };

    // Synthetic evaluation: a 2-engine x 4-thread sweep, `rows` uploads
    // with the realistic nested result shape. Deterministic splitmix64
    // noise so runs are reproducible.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let engines = ["wiredtiger", "mmapv1"];
    let thread_counts = [1i64, 2, 4, 8];
    let mut serialized: Vec<(u128, String, String)> = Vec::with_capacity(rows);
    let mut table = ResultTable::new();
    for i in 0..rows {
        let engine = engines[i % engines.len()];
        let threads = thread_counts[(i / engines.len()) % thread_counts.len()];
        let noise = (next() % 1_000) as f64 / 10.0;
        let params = chronos_json::obj! {"engine" => engine, "threads" => threads};
        let data = chronos_json::obj! {
            "throughput_ops_per_sec" => 1_000.0 * threads as f64 + noise,
            "wall_millis" => 2_000 + (next() % 500) as i64,
            "total_ops" => 100_000i64,
            "total_errors" => (next() % 3) as i64,
            "operations" => chronos_json::obj! {
                "read" => chronos_json::obj! {
                    "latency_micros" => chronos_json::obj! {"p99" => 400 + (next() % 200) as i64},
                },
                "update" => chronos_json::obj! {
                    "latency_micros" => chronos_json::obj! {"p99" => 900 + (next() % 300) as i64},
                },
            },
        };
        let id = i as u128 + 1;
        serialized.push((id, params.to_string(), data.to_string()));
        table.append(id, &params, &data, &STANDARD_METRIC_PATHS);
    }
    let encoded = table.encode();
    let json_bytes: usize = serialized.iter().map(|(_, p, d)| p.len() + d.len()).sum();
    let ids: Vec<u128> = (1..=rows as u128).collect();
    let spec = ChartSpec {
        kind: "line".into(),
        title: "Throughput".into(),
        x_param: "threads".into(),
        series_param: Some("engine".into()),
        value_path: "/throughput_ops_per_sec".into(),
        y_label: "ops/s".into(),
    };

    // Baseline: parse every stored JSON row, then aggregate row-at-a-time.
    let start = Instant::now();
    let mut json_chart = None;
    let mut json_p99 = 0.0;
    for _ in 0..reps {
        let points: Vec<ResultPoint> = serialized
            .iter()
            .map(|(id, p, d)| ResultPoint {
                job_id: Id::from_u128(*id),
                parameters: chronos_json::parse(p).unwrap(),
                data: chronos_json::parse(d).unwrap(),
            })
            .collect();
        let chart = chart_data_from_points(&points, &spec).unwrap();
        let mut values: Vec<f64> = points
            .iter()
            .filter_map(|pt| pt.data.pointer(&spec.value_path).and_then(Value::as_f64))
            .collect();
        values.sort_by(f64::total_cmp);
        json_p99 = percentile_sorted(&values, 0.99).unwrap();
        json_chart = Some(chart);
    }
    let json_secs = start.elapsed().as_secs_f64();

    // Columnar: decode the table, gather, run the vectorized kernels.
    let start = Instant::now();
    let mut col_chart = None;
    let mut col_p99 = 0.0;
    for _ in 0..reps {
        let table = ResultTable::decode(&encoded).unwrap();
        let order = table.gather(ids.iter().copied());
        let chart = chart_data_from_table(&table, &order, &spec);
        let cells = table.data_column(&spec.value_path).unwrap().materialize();
        let mut values: Vec<f64> = order.iter().filter_map(|&r| cells[r].as_f64()).collect();
        values.sort_by(f64::total_cmp);
        col_p99 = percentile_sorted(&values, 0.99).unwrap();
        col_chart = Some(chart);
    }
    let col_secs = start.elapsed().as_secs_f64();

    assert_eq!(json_chart, col_chart, "aggregation paths must agree bit-for-bit");
    assert_eq!(json_p99, col_p99, "percentile paths must agree bit-for-bit");

    let json_rps = (rows * reps) as f64 / json_secs.max(1e-9);
    let col_rps = (rows * reps) as f64 / col_secs.max(1e-9);
    let speedup = col_rps / json_rps.max(1e-9);
    let widths = [26, 14, 14, 10];
    println!(
        "{}",
        row(&["path".into(), "rows/sec".into(), "stored bytes".into(), "speedup".into()], &widths)
    );
    println!(
        "{}",
        row(
            &[
                "JSON row scan".into(),
                fmt_tp(json_rps),
                fmt_bytes(json_bytes as u64),
                "1.0x".into()
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "columnar kernels".into(),
                fmt_tp(col_rps),
                fmt_bytes(encoded.len() as u64),
                format!("{speedup:.1}x"),
            ],
            &widths
        )
    );
    println!(
        "shape: one table decode replaces {rows} JSON parses per request; \
         compression = {:.1}x, aggregation speedup = {speedup:.1}x\n",
        json_bytes as f64 / encoded.len().max(1) as f64
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E13",
            "description" => "result-analytics aggregation: JSON row scan vs columnar table + vectorized kernels",
            "workload" => chronos_json::obj! {
                "rows" => rows as i64,
                "reps" => reps as i64,
                "engines" => engines.len() as i64,
                "thread_counts" => thread_counts.len() as i64,
                "chart" => "throughput by threads, series = engine",
                "percentile" => 0.99,
            },
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
            "json_rows_per_sec" => json_rps,
            "columnar_rows_per_sec" => col_rps,
            "speedup" => speedup,
            "json_bytes" => json_bytes as i64,
            "columnar_bytes" => encoded.len() as i64,
            "compression_ratio" => json_bytes as f64 / encoded.len().max(1) as f64,
        };
        let path = "BENCH_analytics.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E12 — connection scaling: goodput and accepted-request p99 vs concurrent
/// keep-alive agent connections, epoll reactor core vs the thread-per-
/// connection baseline at equal worker counts. `--json` also writes both
/// sweeps to `BENCH_http_scale.json` for regression tracking.
fn experiment_e12(quick: bool, emit_json: bool) {
    use chronos_bench::http_scale::{
        point_collapsed, point_sustained, run_scale, CoreReport, ScalePoint, DRIVERS,
    };
    use chronos_http::{Response, Server};
    use std::time::Duration;

    println!("== E12: keep-alive connection scaling (reactor vs threaded core) ==");

    const WORKERS: usize = 4;
    let sweep: Vec<usize> = if quick { vec![4, 64] } else { vec![4, 64, 512, 2048, 8192] };
    let duration = if quick { Duration::from_millis(1500) } else { Duration::from_secs(4) };
    let max_agents = *sweep.last().unwrap();
    // Both sides of the bench hold one fd per agent; make sure the process
    // limit does not silently cap the sweep.
    let nofile = chronos_http::raise_nofile_limit().unwrap_or(0);
    if (nofile as usize) < 2 * max_agents + 64 {
        println!("warning: RLIMIT_NOFILE {nofile} may truncate the {max_agents}-agent point");
    }
    // The open-connection cap must not be the variable under test: raise it
    // identically on both cores so the difference is purely the core.
    let inflight_cap = 2 * max_agents + 64;
    let path = "/api/v1/ping";
    let handler = |_req: chronos_http::Request| {
        // Roughly 100-200 µs of real CPU per request — a cheap stats read,
        // not a no-op. This keeps the *server* the bottleneck, so goodput
        // measures serving capacity rather than bench-driver scheduling,
        // and latency percentiles measure queueing rather than noise.
        let mut acc = 0x243f_6a88_85a3_08d3u64;
        for i in 0..500_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        Response::json(&chronos_json::obj! { "ok" => true })
    };
    let start_core = |core: chronos_http::CoreKind| {
        // A short queue keeps an *accepted* request's wait bounded by a
        // couple of service times; the long Retry-After hint paces a large
        // shed fleet so shed replies do not become the dominant workload.
        let builder = Server::new()
            .workers(WORKERS)
            .queue_depth(2)
            .max_inflight(inflight_cap)
            .retry_after(Duration::from_secs(1));
        match core {
            chronos_http::CoreKind::Reactor => builder.reactor(),
            chronos_http::CoreKind::Threaded => builder.threaded(),
        }
        .serve("127.0.0.1:0", handler)
        .expect("bind E12 server")
    };

    let widths = [10, 8, 8, 12, 10, 10, 10, 12];
    println!(
        "{}",
        row(
            &[
                "core".into(),
                "agents".into(),
                "served".into(),
                "goodput/s".into(),
                "p99 ms".into(),
                "shed".into(),
                "errors".into(),
                "reconnects".into(),
            ],
            &widths
        )
    );
    let print_point = |core: &str, point: &ScalePoint| {
        println!(
            "{}",
            row(
                &[
                    core.into(),
                    point.agents.to_string(),
                    point.served_agents.to_string(),
                    format!("{:.0}", point.goodput_per_sec),
                    format!("{:.2}", point.p99_ms),
                    point.shed.to_string(),
                    point.errors.to_string(),
                    point.reconnects.to_string(),
                ],
                &widths
            )
        );
    };

    let mut reports: Vec<CoreReport> = Vec::new();
    for core in [chronos_http::CoreKind::Threaded, chronos_http::CoreKind::Reactor] {
        let name = match core {
            chronos_http::CoreKind::Threaded => "threaded",
            chronos_http::CoreKind::Reactor => "reactor",
        };
        let server = start_core(core);
        // Warm up (lazy init, fd caches) before measuring anything.
        let _ = run_scale(server.addr(), path, 1, Duration::from_millis(200));
        let mut points: Vec<ScalePoint> = Vec::new();
        for &agents in &sweep {
            // Larger fleets get longer windows: with thousands of agents
            // pacing themselves on shed backoff, each agent needs several
            // attempts inside the window for coverage to be measurable.
            let window = duration * (1 + (agents / 2048) as u32);
            let point = run_scale(server.addr(), path, agents, window);
            print_point(name, &point);
            let peak = points
                .iter()
                .chain(std::iter::once(&point))
                .map(|p| p.goodput_per_sec)
                .fold(0.0f64, f64::max);
            let collapsed = point_collapsed(&point, peak);
            points.push(point);
            if collapsed {
                println!("{name}: collapsed at {agents} agents; skipping larger points");
                break;
            }
        }
        drop(server);
        // The smallest sweep point (as many agents as workers) is the
        // low-concurrency baseline: the p99 budget for every larger point
        // is twice its tail.
        let baseline_p99 = points.first().map(|p| p.p99_ms).unwrap_or(0.0);
        println!(
            "{name} low-concurrency baseline ({} agents): p99 {baseline_p99:.2} ms",
            points.first().map(|p| p.agents).unwrap_or(0)
        );
        reports.push(CoreReport::evaluate(name, baseline_p99, points));
    }

    let threaded = &reports[0];
    let reactor = &reports[1];
    let ratio = reactor.sustained_agents as f64 / threaded.sustained_agents.max(1) as f64;
    let reactor_peak = reactor.points.iter().map(|p| p.goodput_per_sec).fold(0.0f64, f64::max);
    let best = reactor
        .points
        .iter()
        .filter(|p| point_sustained(p, reactor_peak, reactor.baseline_p99_ms))
        .max_by_key(|p| p.agents);
    println!(
        "shape: with {WORKERS} workers and {DRIVERS} driver threads the reactor sustains \
         {} keep-alive agents vs {} threaded ({ratio:.0}x){}\n",
        reactor.sustained_agents,
        threaded.sustained_agents,
        best.map(|p| format!(
            "; at that point goodput {:.0}/s, accepted p99 {:.2} ms (budget 2x baseline = {:.2} ms)",
            p.goodput_per_sec,
            p.p99_ms,
            2.0 * reactor.baseline_p99_ms.max(1.0)
        ))
        .unwrap_or_default(),
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E12",
            "description" => "keep-alive connection scaling: epoll reactor core vs thread-per-connection baseline at equal workers",
            "workload" => chronos_json::obj! {
                "endpoint" => path,
                "workers" => WORKERS as i64,
                "max_inflight" => inflight_cap as i64,
                "driver_threads" => DRIVERS as i64,
                "duration_ms" => duration.as_millis() as i64,
                "read_timeout_ms" => 1000i64,
                "keep_alive" => true,
            },
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
            "sustained_ratio" => ratio,
            "threaded" => threaded.to_json(),
            "reactor" => reactor.to_json(),
        };
        let path = "BENCH_http_scale.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E11 — overload protection: goodput and accepted-request p99 vs offered
/// load, bounded admission (shed typed 429s) vs the unbounded legacy
/// configuration. `--json` also writes both curves to
/// `BENCH_overload.json` for regression tracking.
fn experiment_e11(quick: bool, emit_json: bool) {
    use chronos_bench::overload::{run_load, LoadPoint};
    use chronos_http::Server;
    use chronos_server::ChronosServer;
    use std::time::Duration;

    println!("== E11: overload protection (bounded admission vs unbounded) ==");

    // A control plane whose /api/v1/stats walks a real installation, so
    // each request costs actual store work rather than a no-op.
    let evaluations = if quick { 60 } else { 120 };
    let control = Arc::new(ChronosControl::in_memory());
    let owner = control.create_user("bench", "pw", Role::Member).unwrap();
    let token = control.login("bench", "pw").unwrap();
    let system = control
        .register_system(
            "sut",
            "",
            vec![ParamDef::new(
                "a",
                "",
                ParamType::Interval { min: 1, max: 20, step: 1 },
                Value::from(1),
            )
            .unwrap()],
            vec![],
        )
        .unwrap();
    let project = control.create_project("bench", "", owner.id).unwrap();
    let experiment = control
        .create_experiment(
            project.id,
            system.id,
            "load",
            "",
            ParamAssignments::new().sweep_all("a"),
        )
        .unwrap();
    for _ in 0..evaluations {
        control.create_evaluation(experiment.id).unwrap();
    }

    // The smallest honest envelope: one worker, a one-slot queue,
    // in-flight cap 2. Only one handler ever runs (queued work waits off
    // the CPU), so an accepted request's latency stays within the 2x
    // budget on any host — including a single-core CI box — while the
    // uncapped configuration lets queueing stretch every response. The
    // single queue slot also absorbs the reconnect race of a lone
    // back-to-back client, keeping the unloaded baseline shed-free.
    const WORKERS: usize = 1;
    const QUEUE: usize = 1;
    let saturation = WORKERS + QUEUE;
    let duration = if quick { Duration::from_millis(400) } else { Duration::from_millis(1500) };
    let loads: Vec<usize> = if quick {
        vec![2 * saturation, 4 * saturation]
    } else {
        vec![saturation, 2 * saturation, 4 * saturation]
    };
    let path = "/api/v1/stats";

    let bounded_server = ChronosServer::start_with(
        Arc::clone(&control),
        "127.0.0.1:0",
        Server::new().workers(WORKERS).queue_depth(QUEUE).retry_after(Duration::from_millis(50)),
    )
    .unwrap();
    // Warm up (lazy init, fd caches) before measuring: the unloaded p99
    // is the budget denominator, so its tail must not carry cold-start
    // noise. Measure it over a longer window than the load points.
    let _ = run_load(bounded_server.addr(), path, &token, 1, Duration::from_millis(150));
    let unloaded =
        run_load(bounded_server.addr(), path, &token, 1, duration.max(Duration::from_millis(800)));
    println!(
        "unloaded baseline: p50 {:.2} ms, p99 {:.2} ms ({:.0} req/s)",
        unloaded.p50_ms, unloaded.p99_ms, unloaded.goodput_per_sec
    );

    let widths = [18, 10, 12, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "config".into(),
                "clients".into(),
                "goodput/s".into(),
                "p99 ms".into(),
                "shed".into(),
                "errors".into()
            ],
            &widths
        )
    );
    let print_point = |config: &str, point: &LoadPoint| {
        println!(
            "{}",
            row(
                &[
                    config.into(),
                    point.clients.to_string(),
                    format!("{:.0}", point.goodput_per_sec),
                    format!("{:.2}", point.p99_ms),
                    point.shed.to_string(),
                    point.errors.to_string(),
                ],
                &widths
            )
        );
    };

    let mut bounded_points: Vec<LoadPoint> = Vec::new();
    for &clients in &loads {
        let point = run_load(bounded_server.addr(), path, &token, clients, duration);
        print_point("bounded", &point);
        bounded_points.push(point);
    }
    drop(bounded_server);

    let unbounded_server = ChronosServer::start_with(
        Arc::clone(&control),
        "127.0.0.1:0",
        Server::new().workers(WORKERS).unbounded(),
    )
    .unwrap();
    let mut unbounded_points: Vec<LoadPoint> = Vec::new();
    for &clients in &loads {
        let point = run_load(unbounded_server.addr(), path, &token, clients, duration);
        print_point("unbounded", &point);
        unbounded_points.push(point);
    }
    drop(unbounded_server);

    let bounded_max = bounded_points.last().unwrap();
    let unbounded_max = unbounded_points.last().unwrap();
    let budget = 2.0 * unloaded.p99_ms;
    println!(
        "shape: at {}x saturation bounded keeps accepted p99 at {:.2} ms \
         (budget 2x unloaded = {:.2} ms) while shedding {} typed 429s; \
         unbounded degrades to {:.2} ms ({:.1}x unloaded)\n",
        loads.last().unwrap() / saturation,
        bounded_max.p99_ms,
        budget,
        bounded_max.shed,
        unbounded_max.p99_ms,
        unbounded_max.p99_ms / unloaded.p99_ms.max(1e-9),
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E11",
            "description" => "overload protection: goodput and accepted-request p99 vs offered load, bounded admission vs unbounded",
            "workload" => chronos_json::obj! {
                "endpoint" => path,
                "evaluations" => evaluations as i64,
                "jobs_per_evaluation" => 20,
                "workers" => WORKERS as i64,
                "queue_depth" => QUEUE as i64,
                "saturation_clients" => saturation as i64,
                "duration_ms" => duration.as_millis() as i64,
                "connection_per_request" => true,
            },
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
            "unloaded" => unloaded.to_json(),
            "bounded" => Value::Array(bounded_points.iter().map(LoadPoint::to_json).collect()),
            "unbounded" => Value::Array(unbounded_points.iter().map(LoadPoint::to_json).collect()),
        };
        let path = "BENCH_overload.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E1 — the demo headline: YCSB-A throughput vs client threads per engine,
/// durable configuration.
fn experiment_e1(scale: &Scale) {
    println!("== E1: YCSB-A throughput vs client threads (durable writes) ==");
    let widths = [10, 8, 12, 12, 14];
    println!(
        "{}",
        row(
            &[
                "engine".into(),
                "threads".into(),
                "ops/s".into(),
                "upd p99 µs".into(),
                "read p99 µs".into()
            ],
            &widths
        )
    );
    let mut series: Vec<(String, f64)> = Vec::new();
    for engine in ["wiredtiger", "mmapv1"] {
        for threads in [1i64, 2, 4, 8] {
            let outcome = run_docstore(&RunConfig {
                engine,
                threads,
                durability: true,
                record_count: scale.records,
                operation_count: scale.ops,
                ..RunConfig::default()
            });
            series.push((format!("{engine}/{threads}"), outcome.throughput_ops_per_sec));
            println!(
                "{}",
                row(
                    &[
                        engine.into(),
                        threads.to_string(),
                        fmt_tp(outcome.throughput_ops_per_sec),
                        outcome.update_p99_micros.map(|v| v.to_string()).unwrap_or("-".into()),
                        outcome.read_p99_micros.map(|v| v.to_string()).unwrap_or("-".into()),
                    ],
                    &widths
                )
            );
        }
    }
    let get = |k: &str| series.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0.0);
    println!(
        "shape: wiredtiger 1->8 threads scales {:.1}x; mmapv1 scales {:.1}x; \
         wiredtiger/mmapv1 at 8 threads = {:.1}x\n",
        get("wiredtiger/8") / get("wiredtiger/1").max(1.0),
        get("mmapv1/8") / get("mmapv1/1").max(1.0),
        get("wiredtiger/8") / get("mmapv1/8").max(1.0),
    );
}

/// E2 — read-heavy mixes: the engines converge as writes (and their locks)
/// leave the picture.
fn experiment_e2(scale: &Scale) {
    println!("== E2: read-mix sensitivity (durable, 4 threads) ==");
    let widths = [10, 10, 12];
    println!("{}", row(&["workload".into(), "engine".into(), "ops/s".into()], &widths));
    let mut by_workload: Vec<(&str, f64, f64)> = Vec::new();
    for workload in ["a", "b", "c"] {
        let mut pair = (0.0, 0.0);
        // Read-heavy mixes are far faster per op; give them more operations
        // so the measured phase stays well above timer resolution.
        let ops = match workload {
            "a" => scale.ops,
            "b" => scale.ops * 4,
            _ => scale.ops * 16,
        };
        for engine in ["wiredtiger", "mmapv1"] {
            let outcome = run_docstore(&RunConfig {
                engine,
                threads: 4,
                workload,
                durability: true,
                record_count: scale.records,
                operation_count: ops,
                ..RunConfig::default()
            });
            if engine == "wiredtiger" {
                pair.0 = outcome.throughput_ops_per_sec;
            } else {
                pair.1 = outcome.throughput_ops_per_sec;
            }
            println!(
                "{}",
                row(
                    &[workload.into(), engine.into(), fmt_tp(outcome.throughput_ops_per_sec)],
                    &widths
                )
            );
        }
        by_workload.push((workload, pair.0, pair.1));
    }
    for (workload, wt, mm) in &by_workload {
        println!("shape: workload {}: wiredtiger/mmapv1 = {:.1}x", workload, wt / mm.max(1.0));
    }
    println!();
}

/// E3 — bulk load (the workflow's data-ingestion step) and the storage
/// footprint after loading, including the compression ablation.
fn experiment_e3(scale: &Scale) {
    println!("== E3: bulk load and storage footprint ==");
    let widths = [22, 12, 12, 12];
    println!(
        "{}",
        row(
            &["configuration".into(), "load ops/s".into(), "stored".into(), "amplif.".into()],
            &widths
        )
    );
    for (label, engine, compression) in [
        ("wiredtiger+compress", "wiredtiger", true),
        ("wiredtiger-nocompress", "wiredtiger", false),
        ("mmapv1", "mmapv1", false),
    ] {
        // Load-only run: measure via an insert-only "workload" by loading
        // `records` and running zero operations.
        let start = Instant::now();
        let outcome = run_docstore(&RunConfig {
            engine,
            compression,
            threads: 1,
            record_count: scale.records * 4,
            operation_count: 1, // execute phase negligible
            durability: false,
            ..RunConfig::default()
        });
        let load_secs = start.elapsed().as_secs_f64();
        let load_rate = (scale.records * 4) as f64 / load_secs;
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    fmt_tp(load_rate),
                    fmt_bytes(outcome.stored_bytes),
                    format!(
                        "{:.2}x",
                        outcome.stored_bytes as f64 / outcome.logical_bytes.max(1) as f64
                    ),
                ],
                &widths
            )
        );
    }
    println!(
        "shape: compression shrinks wiredtiger's footprint well below mmapv1's padded extents\n"
    );
}

/// E4 — document size sensitivity (field_length sweep), in-memory to
/// isolate the CPU/storage path from fsync.
fn experiment_e4(scale: &Scale) {
    println!("== E4: document size sensitivity (YCSB-A, 2 threads, in-memory) ==");
    let widths = [10, 12, 12, 12];
    println!(
        "{}",
        row(&["field len".into(), "engine".into(), "ops/s".into(), "stored".into()], &widths)
    );
    for field_length in [64i64, 256, 1024] {
        for engine in ["wiredtiger", "mmapv1"] {
            let outcome = run_docstore(&RunConfig {
                engine,
                threads: 2,
                field_length,
                record_count: scale.records / 2,
                operation_count: scale.ops,
                durability: false,
                ..RunConfig::default()
            });
            println!(
                "{}",
                row(
                    &[
                        field_length.to_string(),
                        engine.into(),
                        fmt_tp(outcome.throughput_ops_per_sec),
                        fmt_bytes(outcome.stored_bytes),
                    ],
                    &widths
                )
            );
        }
    }
    println!(
        "shape: mmapv1's power-of-2 padding amplifies storage as documents grow; \
              wiredtiger pays compression CPU but stores far less\n"
    );
}

/// E5 — control plane: evaluation-space expansion, claim throughput,
/// store recovery.
fn experiment_e5() {
    println!("== E5: Chronos Control plane ==");
    let control = ChronosControl::in_memory();
    let owner = control.create_user("bench", "pw", Role::Member).unwrap();
    let system = control
        .register_system(
            "sut",
            "",
            vec![
                ParamDef::new(
                    "a",
                    "",
                    ParamType::Interval { min: 1, max: 20, step: 1 },
                    Value::from(1),
                )
                .unwrap(),
                ParamDef::new(
                    "b",
                    "",
                    ParamType::Interval { min: 1, max: 50, step: 1 },
                    Value::from(1),
                )
                .unwrap(),
            ],
            vec![],
        )
        .unwrap();
    let deployment = control.create_deployment(system.id, "bench", "1").unwrap();
    let project = control.create_project("bench", "", owner.id).unwrap();
    let experiment = control
        .create_experiment(
            project.id,
            system.id,
            "expansion",
            "",
            ParamAssignments::new().sweep_all("a").sweep_all("b"),
        )
        .unwrap();

    let start = Instant::now();
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    let planning = start.elapsed();
    let planned = evaluation.source.as_ref().map(|s| s.total_points).unwrap_or(0);
    println!(
        "evaluation planning: {} points in {:.2} ms (jobs materialize lazily on claim)",
        planned,
        planning.as_secs_f64() * 1e3,
    );

    let start = Instant::now();
    let mut claimed = 0;
    while control.claim_next_job(deployment.id, None).unwrap().is_some() {
        claimed += 1;
    }
    let claims = start.elapsed();
    println!(
        "job claims (incl. lazy materialization): {} in {:.1} ms ({:.0} claims/s)",
        claimed,
        claims.as_secs_f64() * 1e3,
        claimed as f64 / claims.as_secs_f64()
    );

    // Recovery: rebuild a durable store holding all those jobs.
    let path = std::env::temp_dir().join(format!("chronos-bench-store-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let store = MetadataStore::open(&path).unwrap();
        let durable =
            ChronosControl::new(store, Arc::new(chronos_util::SystemClock), Default::default());
        let owner = durable.create_user("bench", "pw", Role::Member).unwrap();
        let system = durable.register_system("sut", "", vec![], vec![]).unwrap();
        let deployment = durable.create_deployment(system.id, "bench", "1").unwrap();
        let project = durable.create_project("bench", "", owner.id).unwrap();
        let experiment = durable
            .create_experiment(project.id, system.id, "x", "", ParamAssignments::new())
            .unwrap();
        for _ in 0..200 {
            durable.create_evaluation(experiment.id).unwrap();
        }
        // Materialize every planned point so recovery replays job documents.
        while durable.claim_next_job(deployment.id, None).unwrap().is_some() {}
    }
    let start = Instant::now();
    let store = MetadataStore::open(&path).unwrap();
    let recovery = start.elapsed();
    println!(
        "store recovery: {} jobs replayed in {:.1} ms",
        store.count("job"),
        recovery.as_secs_f64() * 1e3
    );
    let _ = std::fs::remove_file(&path);
    println!();
}

/// E6 — the result pipeline: JSON encode/parse, zip pack/unpack, base64.
fn experiment_e6() {
    println!("== E6: result pipeline (JSON + zip, per paper §2.1) ==");
    // A realistic result document: a merged RunSummary.
    let outcome = run_docstore(&RunConfig {
        record_count: 500,
        operation_count: 2_000,
        ..RunConfig::default()
    });
    let _ = outcome;
    let mut client = chronos_agent::DocstoreClient::new();
    let ctx = chronos_agent::JobContext::new(
        chronos_util::Id::generate(),
        RunConfig { record_count: 500, operation_count: 2_000, ..RunConfig::default() }.to_params(),
    );
    use chronos_agent::EvaluationClient;
    client.set_up(&ctx).unwrap();
    let data = client.execute(&ctx).unwrap();
    client.tear_down(&ctx);

    let text = data.to_string();
    println!("result document: {} bytes of JSON", text.len());
    let bench = |label: &str, mut f: Box<dyn FnMut()>| {
        let iters = 2_000;
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = start.elapsed().as_secs_f64() / iters as f64;
        println!("  {label:<28} {:.1} µs/op", per * 1e6);
    };
    let text2 = text.clone();
    bench(
        "json serialize",
        Box::new(move || {
            let _ = data.to_string();
        }),
    );
    bench(
        "json parse",
        Box::new(move || {
            let _ = chronos_json::parse(&text2).unwrap();
        }),
    );
    let payload: Vec<u8> = text.clone().into_bytes();
    let payload2 = payload.clone();
    bench(
        "zip pack (1 entry)",
        Box::new(move || {
            let mut w = chronos_zip::ZipWriter::new();
            w.add_file("result.json", &payload).unwrap();
            let _ = w.finish();
        }),
    );
    let archive = {
        let mut w = chronos_zip::ZipWriter::new();
        w.add_file("result.json", &payload2).unwrap();
        w.finish()
    };
    bench(
        "zip parse+extract",
        Box::new(move || {
            let a = chronos_zip::ZipArchive::parse(&archive).unwrap();
            let _ = a.read("result.json").unwrap();
        }),
    );
    let bytes = text.into_bytes();
    let encoded = chronos_util::encode::base64_encode(&bytes);
    bench(
        "base64 encode",
        Box::new(move || {
            let _ = chronos_util::encode::base64_encode(&bytes);
        }),
    );
    bench(
        "base64 decode",
        Box::new(move || {
            let _ = chronos_util::encode::base64_decode(&encoded).unwrap();
        }),
    );
    println!();
}

/// E8 — metadata store under contention: the old single-mutex store vs the
/// sharded group-commit store, 8 threads of mixed put/get/list, both
/// appending to a real log file. `--json` also writes the numbers to
/// `BENCH_control_plane.json` for regression tracking.
fn experiment_e8(quick: bool, emit_json: bool) {
    use chronos_bench::baseline::SingleMutexStore;
    use chronos_bench::contention::{run_mixed, MixReport};

    println!("== E8: metadata store contention (mixed 50% put / 40% get / 10% list) ==");
    let ops_per_thread: u64 = if quick { 5_000 } else { 20_000 };
    let tmp = |name: &str| {
        std::env::temp_dir().join(format!("chronos-bench-e8-{}-{name}.log", std::process::id()))
    };
    let run_baseline = |threads: u64| -> MixReport {
        let path = tmp("baseline");
        let _ = std::fs::remove_file(&path);
        let store = SingleMutexStore::open(&path).unwrap();
        let report = run_mixed(&store, threads, ops_per_thread);
        drop(store);
        let _ = std::fs::remove_file(&path);
        report
    };
    let run_sharded = |threads: u64| -> MixReport {
        let path = tmp("sharded");
        let _ = std::fs::remove_file(&path);
        let store = MetadataStore::open(&path).unwrap();
        let report = run_mixed(&store, threads, ops_per_thread);
        drop(store);
        let _ = std::fs::remove_file(&path);
        report
    };

    let widths = [10, 14, 14, 10];
    println!(
        "{}",
        row(&["threads".into(), "baseline".into(), "sharded".into(), "speedup".into()], &widths)
    );
    let mut results: Vec<(u64, f64, f64)> = Vec::new();
    for threads in [1u64, 8] {
        let baseline = run_baseline(threads);
        let sharded = run_sharded(threads);
        results.push((threads, baseline.ops_per_sec(), sharded.ops_per_sec()));
        println!(
            "{}",
            row(
                &[
                    threads.to_string(),
                    fmt_tp(baseline.ops_per_sec()),
                    fmt_tp(sharded.ops_per_sec()),
                    format!("{:.1}x", sharded.ops_per_sec() / baseline.ops_per_sec().max(1.0)),
                ],
                &widths
            )
        );
    }
    let contended = results.iter().find(|(t, _, _)| *t == 8).copied().unwrap();
    println!(
        "shape: sharding + group commit turn contention into batching; \
         8-thread speedup = {:.1}x\n",
        contended.2 / contended.1.max(1.0)
    );

    if emit_json {
        let runs: Vec<Value> = results
            .iter()
            .map(|(threads, baseline, sharded)| {
                chronos_json::obj! {
                    "threads" => *threads as i64,
                    "baseline_ops_per_sec" => *baseline,
                    "sharded_ops_per_sec" => *sharded,
                    "speedup" => *sharded / baseline.max(1.0),
                }
            })
            .collect();
        let doc = chronos_json::obj! {
            "experiment" => "E8",
            "description" => "metadata store contention: single-mutex baseline vs sharded group-commit store",
            "workload" => chronos_json::obj! {
                "mix" => "50% put / 40% get / 10% list",
                "kinds" => chronos_bench::contention::KINDS.len() as i64,
                "ids_per_kind" => chronos_bench::contention::IDS_PER_KIND as i64,
                "ops_per_thread" => ops_per_thread as i64,
                "durable_log" => true,
            },
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
            "runs" => Value::Array(runs),
        };
        let path = "BENCH_control_plane.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E9 — data-plane read path: the decode-everything baseline (what
/// `find`/`scan` did before the overhaul) vs engine cursors + predicate
/// pushdown over the encoded bytes, per engine. `--json` also writes the
/// numbers to `BENCH_data_plane.json` for regression tracking.
fn experiment_e9(quick: bool, emit_json: bool) {
    use chronos_bench::data_plane::{
        self, load, run_finds_decode, run_finds_pushdown, run_scans_cursor, run_scans_decode,
    };

    println!("== E9: data-plane read path (scans + non-indexed find) ==");
    let records = if quick { 2_000 } else { 20_000 };
    let scans = if quick { 500 } else { 2_000 };
    let finds = if quick { 30 } else { 100 };
    let widths = [10, 26, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "engine".into(),
                "workload".into(),
                "baseline".into(),
                "new path".into(),
                "speedup".into()
            ],
            &widths
        )
    );
    let mut results: Vec<Value> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for engine in ["wiredtiger", "mmapv1"] {
        let db = load(engine, records, 100);
        let coll = db.collection("usertable");
        let legs = [
            (
                "scan (YCSB-E, len 50)",
                "scans_per_sec",
                run_scans_decode(&coll, scans),
                run_scans_cursor(&coll, scans),
            ),
            (
                "find (non-indexed, ~1%)",
                "finds_per_sec",
                run_finds_decode(&coll, finds),
                run_finds_pushdown(&coll, finds),
            ),
        ];
        for (label, unit, baseline, new_path) in legs {
            assert_eq!(baseline.rows, new_path.rows, "paths must agree on {engine}/{label}");
            let speedup = new_path.ops_per_sec() / baseline.ops_per_sec().max(1e-9);
            speedups.push(speedup);
            println!(
                "{}",
                row(
                    &[
                        engine.into(),
                        label.into(),
                        fmt_tp(baseline.ops_per_sec()),
                        fmt_tp(new_path.ops_per_sec()),
                        format!("{speedup:.1}x"),
                    ],
                    &widths
                )
            );
            results.push(chronos_json::obj! {
                "engine" => engine,
                "workload" => label,
                "unit" => unit,
                "rows_touched" => baseline.rows as i64,
                "baseline_ops_per_sec" => baseline.ops_per_sec(),
                "new_ops_per_sec" => new_path.ops_per_sec(),
                "speedup" => speedup,
            });
        }
    }
    let worst = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "shape: cursors skip per-row decode, pushdown decodes only matches; \
         worst-case speedup = {worst:.1}x\n"
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E9",
            "description" => "data-plane read path: decode-everything baseline vs engine cursors + predicate pushdown",
            "workload" => chronos_json::obj! {
                "records" => records as i64,
                "scan_length" => data_plane::SCAN_LEN as i64,
                "scans" => scans as i64,
                "find_queries" => finds as i64,
                "find_selectivity" => 1.0 / data_plane::GROUPS as f64,
            },
            "host_cores" => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64,
            "runs" => Value::Array(results),
            "worst_case_speedup" => worst,
        };
        let path = "BENCH_data_plane.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }
}

/// E7 — tpcc-lite: the paper's future-work OLTP-Bench direction. Per-engine
/// new-orders/minute and per-transaction-type p99 latency, durable mode.
fn experiment_e7(scale: &Scale) {
    use chronos_agent::{EvaluationClient, JobContext, TpccClient};
    println!("== E7: tpcc-lite transactions (durable, 4 terminals) ==");
    let widths = [10, 14, 14, 16];
    println!(
        "{}",
        row(
            &["engine".into(), "tx/s".into(), "neworders/min".into(), "payment p99 µs".into()],
            &widths
        )
    );
    for engine in ["wiredtiger", "mmapv1"] {
        let mut client = TpccClient::new();
        let ctx = JobContext::new(
            chronos_util::Id::generate(),
            chronos_json::obj! {
                "engine" => engine,
                "threads" => 4,
                "warehouses" => 2,
                "transaction_count" => scale.ops / 4,
                "durability" => true,
            },
        );
        client.set_up(&ctx).unwrap();
        let data = client.execute(&ctx).unwrap();
        client.tear_down(&ctx);
        println!(
            "{}",
            row(
                &[
                    engine.into(),
                    fmt_tp(
                        data.pointer("/throughput_ops_per_sec")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0)
                    ),
                    fmt_tp(
                        data.pointer("/new_orders_per_minute")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0)
                    ),
                    data.pointer("/operations/payment/latency_micros/p99")
                        .and_then(Value::as_u64)
                        .map(|v| v.to_string())
                        .unwrap_or("-".into()),
                ],
                &widths
            )
        );
    }
    println!("shape: transactional read-modify-write mixes amplify the engines' write-path gap\n");
}

/// E14 — replicated control plane: a 3-node WAL-shipping cluster runs a
/// real evaluation, the leader is killed mid-flight, and the bench
/// measures (a) failover time against the 2-lease-period budget, (b) the
/// exactly-once ledger across the leader death, and (c) follower read
/// scaling vs a single node at equal worker counts. `--json` also writes
/// the numbers to `BENCH_cluster.json` for regression tracking.
fn experiment_e14(quick: bool, emit_json: bool) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    use chronos_agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient};
    use chronos_bench::overload::run_load;
    use chronos_core::cluster::election_jitter;
    use chronos_core::model::JobState;
    use chronos_core::scheduler::SchedulerConfig;
    use chronos_http::Server;
    use chronos_json::arr;
    use chronos_server::{ChronosServer, ClusterOptions};
    use chronos_util::SystemClock;

    println!("== E14: replicated control plane (failover, exactly-once, read scaling) ==");

    let lease = Duration::from_millis(600);
    // Node ids seed the deterministic election jitter, and this triple is
    // picked so that at the terms a failover lands on (2, then 3 on a
    // retry) every possible surviving pair has (a) its first-to-stand
    // jitter past ~0.2 lease — the voter's own lease on the dead leader
    // has expired, so the vote is granted — (b) at most ~0.54 lease, so
    // detection + election fits the asserted two-lease budget, and (c)
    // the pair split by ≥ 0.29 lease, so the slower survivor sees the
    // winner's heartbeat instead of standing too and splitting the vote.
    let node_ids = ["ctl-b", "ctl-i", "cp-d"];
    let mut servers: Vec<ChronosServer> = node_ids
        .iter()
        .map(|id| {
            let control = Arc::new(ChronosControl::new(
                MetadataStore::in_memory(),
                Arc::new(SystemClock),
                SchedulerConfig {
                    heartbeat_timeout_millis: 2_500,
                    max_attempts: 12,
                    auto_reschedule: true,
                },
            ));
            ChronosServer::start_cluster(
                control,
                "127.0.0.1:0",
                Server::new(),
                ClusterOptions::new(*id).with_lease(lease),
            )
            .expect("bind cluster node")
        })
        .collect();
    let urls: Vec<String> = servers.iter().map(ChronosServer::base_url).collect();
    for (i, server) in servers.iter().enumerate() {
        server.set_cluster_peers(
            urls.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, u)| u.clone()).collect(),
        );
    }

    let wait_for_leader = |servers: &[ChronosServer]| -> usize {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(i) = servers.iter().position(|s| s.cluster().unwrap().is_leader()) {
                return i;
            }
            assert!(Instant::now() < deadline, "no leader elected within 10s");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let wait_replicated = |servers: &[ChronosServer], offset: u64| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while servers.iter().any(|s| s.control().replication_offset() < offset) {
            assert!(Instant::now() < deadline, "replication never caught up to {offset}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // ----- setup: a real evaluation on the leader, replicated everywhere --
    let leader = wait_for_leader(&servers);
    let control = Arc::clone(servers[leader].control());
    let admin = control.create_user("bench", "bench-pw", Role::Admin).unwrap();
    let system = control
        .register_system_from_definition(&chronos_json::obj! {
            "name" => "minidoc",
            "description" => "embedded document store with two storage engines",
            "parameters" => arr![
                chronos_json::obj! {
                    "name" => "engine", "description" => "storage engine",
                    "type" => "checkbox", "options" => arr!["wiredtiger", "mmapv1"],
                    "default" => "wiredtiger",
                },
                chronos_json::obj! {
                    "name" => "threads", "description" => "client threads",
                    "type" => "interval", "min" => 1, "max" => 8, "step" => 1, "default" => 1,
                },
                chronos_json::obj! {
                    "name" => "workload", "description" => "YCSB core workload",
                    "type" => "checkbox", "options" => arr!["a"], "default" => "a",
                },
                chronos_json::obj! {
                    "name" => "record_count", "description" => "records to load",
                    "type" => "value", "default" => 60,
                },
                chronos_json::obj! {
                    "name" => "operation_count", "description" => "operations to run",
                    "type" => "value", "default" => 120,
                },
            ],
        })
        .unwrap();
    let deployment = control.create_deployment(system.id, "bench-cluster", "0.1.0").unwrap();
    let project = control.create_project("cluster bench", "E14", admin.id).unwrap();
    let experiment = control
        .create_experiment(
            project.id,
            system.id,
            "failover sweep",
            "",
            ParamAssignments::new()
                .sweep_all("engine")
                .sweep("threads", vec![Value::from(1), Value::from(2)]),
        )
        .unwrap();
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    let job_count = control.evaluation_status(evaluation.id).unwrap().total();
    wait_replicated(&servers, control.replication_offset());

    // ----- (c) read scaling: same worker count, one node vs the cluster --
    // Status GETs are the hot read path; sessions are node-local, so each
    // node serves its own token. "Single node" aims every worker at the
    // leader; "cluster" spreads the same workers over all three nodes,
    // where the followers answer from their replicas under the staleness
    // guard. Equal total workers, identical (replicated) data.
    let read_workers = 6usize;
    let read_duration = if quick { Duration::from_millis(800) } else { Duration::from_secs(2) };
    let tokens: Vec<String> =
        servers.iter().map(|s| s.control().login("bench", "bench-pw").unwrap()).collect();
    let warm = Duration::from_millis(150);
    let _ = run_load(servers[leader].addr(), "/api/v1/systems", &tokens[leader], 1, warm);
    let single = run_load(
        servers[leader].addr(),
        "/api/v1/systems",
        &tokens[leader],
        read_workers,
        read_duration,
    );
    let per_node = read_workers / servers.len();
    let cluster_points: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .iter()
            .zip(&tokens)
            .map(|(server, token)| {
                let (addr, token) = (server.addr(), token.clone());
                scope.spawn(move || {
                    run_load(addr, "/api/v1/systems", &token, per_node, read_duration)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let cluster_gets: f64 = cluster_points.iter().map(|p| p.goodput_per_sec).sum();
    let scaling = cluster_gets / single.goodput_per_sec.max(1.0);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Read capacity scales with serving nodes only when the host has the
    // cores to run them: with every node sharing one core the measurement
    // is CPU-bound and the ratio pins near 1x, so the 2x floor is only
    // asserted on hosts with at least 4 cores.
    let scaling_enforced = cores >= 4;
    if scaling_enforced {
        assert!(
            scaling >= 2.0,
            "follower reads must at least double single-node capacity: got {scaling:.2}x"
        );
    }

    // ----- (a)+(b): kill the leader mid-evaluation ------------------------
    let done = Arc::new(AtomicBool::new(false));
    let agents: Vec<_> = (0..2)
        .map(|i| {
            let start = urls[(leader + 1 + i) % urls.len()].clone();
            let urls = urls.clone();
            let done = Arc::clone(&done);
            let deployment_id = deployment.id;
            std::thread::Builder::new()
                .name(format!("e14-agent-{i}"))
                .spawn(move || {
                    let client = ControlClient::login(&start, "bench", "bench-pw")
                        .expect("agent login")
                        .with_seed_nodes(&urls);
                    let mut config = AgentConfig::new(deployment_id);
                    config.heartbeat_interval = Duration::from_millis(100);
                    config.poll_interval = Duration::from_millis(25);
                    let mut agent = ChronosAgent::new(client, config, DocstoreClient::new());
                    let mut completed = 0u64;
                    while !done.load(Ordering::SeqCst) {
                        match agent.run_once() {
                            Ok(true) => completed += 1,
                            Ok(false) | Err(_) => std::thread::sleep(Duration::from_millis(25)),
                        }
                    }
                    completed
                })
                .unwrap()
        })
        .collect();

    // Let the evaluation get under way, then kill the leader.
    let phase_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let finished = control
            .list_jobs(evaluation.id)
            .unwrap()
            .iter()
            .filter(|j| j.state == JobState::Finished)
            .count();
        if finished >= 1 {
            break;
        }
        assert!(Instant::now() < phase_deadline, "no job finished before the kill");
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut dead = servers.remove(leader);
    let dead_term = dead.cluster().unwrap().term();
    // The clock starts when the kill starts: shutdown() drains in-flight
    // connections, and that drain is part of the outage.
    let killed_at = Instant::now();
    dead.shutdown();

    let budget = lease * 2;
    let survivor_jitter: Vec<Duration> = servers
        .iter()
        .map(|s| election_jitter(s.cluster().unwrap().node_id(), dead_term + 1, lease))
        .collect();
    let new_leader = loop {
        if let Some(i) = servers.iter().position(|s| s.cluster().unwrap().is_leader()) {
            break i;
        }
        assert!(
            Instant::now() < killed_at + budget * 4,
            "no new leader long after the {budget:?} budget"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    let failover = killed_at.elapsed();
    assert!(
        failover <= budget,
        "failover took {failover:?}, beyond two lease periods ({budget:?}); \
         survivor jitters {survivor_jitter:?}"
    );

    // The evaluation must finish on the new leader, exactly once.
    let control = Arc::clone(servers[new_leader].control());
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        let jobs = control.list_jobs(evaluation.id).unwrap();
        if jobs.iter().all(|j| j.state == JobState::Finished)
            && control.count_results() == job_count
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    done.store(true, Ordering::SeqCst);
    let completed: u64 = agents.into_iter().map(|h| h.join().unwrap()).sum();
    let jobs = control.list_jobs(evaluation.id).unwrap();
    let finished = jobs.iter().filter(|j| j.state == JobState::Finished).count();
    let results = control.count_results();
    assert_eq!(jobs.len(), job_count, "jobs vanished across the failover");
    assert_eq!(finished, job_count, "evaluation did not finish on the new leader");
    assert!(jobs.iter().all(|j| j.result_id.is_some()), "a finished job has no result");
    assert_eq!(results, job_count, "duplicate or lost results across the failover");
    assert!(completed >= 1, "no agent ever completed a job");

    let widths = [26, 14, 14];
    println!("{}", row(&["measure".into(), "value".into(), "bound".into()], &widths));
    println!(
        "{}",
        row(
            &[
                "failover".into(),
                format!("{} ms", failover.as_millis()),
                format!("<= {} ms", budget.as_millis()),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["results / jobs".into(), format!("{results} / {job_count}"), "exactly once".into()],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "read scaling".into(),
                format!("{scaling:.2}x"),
                if scaling_enforced {
                    ">= 2.00x".into()
                } else {
                    format!("({cores} cores: reported only)")
                },
            ],
            &widths
        )
    );
    println!(
        "shape: leases bound detection, deterministic jitter bounds the election, and the \
         replicated claim/result keys keep every job exactly-once through the kill\n"
    );

    if emit_json {
        let doc = chronos_json::obj! {
            "experiment" => "E14",
            "description" => "replicated control plane: failover, exactly-once ledger, follower read scaling",
            "cluster" => chronos_json::obj! {
                "nodes" => node_ids.len() as i64,
                "lease_millis" => lease.as_millis() as i64,
                "fenced_term" => dead_term as i64,
            },
            "failover" => chronos_json::obj! {
                "millis" => failover.as_millis() as i64,
                "budget_millis" => budget.as_millis() as i64,
                "within_two_leases" => failover <= budget,
                "new_term" => servers[new_leader].cluster().unwrap().term() as i64,
            },
            "exactly_once" => chronos_json::obj! {
                "jobs" => job_count as i64,
                "finished" => finished as i64,
                "results" => results as i64,
                "agent_completions" => completed as i64,
            },
            "reads" => chronos_json::obj! {
                "workers" => read_workers as i64,
                "single_node_gets_per_sec" => single.goodput_per_sec,
                "cluster_gets_per_sec" => cluster_gets,
                "scaling" => scaling,
                "floor" => 2.0,
                "floor_enforced" => scaling_enforced,
            },
            "host_cores" => cores as i64,
        };
        let path = "BENCH_cluster.json";
        std::fs::write(path, doc.to_pretty_string() + "\n").unwrap();
        println!("wrote {path}\n");
    }

    for mut server in servers {
        server.shutdown();
    }
}
