//! E9 — the data-plane read path: decode-everything baseline vs the
//! overhauled path (engine cursors + predicate pushdown on encoded bytes).
//!
//! The baseline runners reproduce the pre-overhaul behaviour through the
//! public API: `Collection::scan` materializes every document it returns,
//! and the old non-indexed `find` was exactly "scan in batches, decode each
//! document, test the filter on the materialized value" with a
//! `key + '\0'` sentinel to resume. The new runners use the streaming
//! cursor (raw `Arc`-shared bytes, no decode) and `Collection::find`'s
//! pushdown (filters evaluated on the encoded bytes; only matches decode).

use std::time::Instant;

use chronos_json::obj;
use minidoc::{Collection, Database, DbConfig, EngineKind, Filter};

/// Documents per YCSB-E-style scan.
pub const SCAN_LEN: usize = 50;
/// Distinct `group` values; an equality filter on `group` therefore
/// matches ~1% of the collection.
pub const GROUPS: i64 = 100;

/// One measured workload leg.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Operations executed (scans or find queries).
    pub ops: u64,
    /// Rows the operations touched/returned.
    pub rows: u64,
    /// Wall time.
    pub secs: f64,
}

impl Report {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs.max(1e-9)
    }
}

/// Loads `records` YCSB-style documents into an in-memory database.
pub fn load(engine: &str, records: usize, field_length: usize) -> Database {
    let kind = EngineKind::parse(engine).expect("engine name");
    let db = Database::open(DbConfig::in_memory(kind)).unwrap();
    let coll = db.collection("usertable");
    let payload = "deadbeef".repeat(field_length.div_ceil(8));
    for i in 0..records {
        coll.insert(
            &key_for(i),
            &obj! {
                "group" => (i as i64) % GROUPS,
                "flag" => i % 7 == 0,
                "name" => format!("user-{i}"),
                "payload" => payload.as_str(),
            },
        )
        .unwrap();
    }
    db
}

fn key_for(i: usize) -> String {
    format!("user{i:08}")
}

/// xorshift64 for deterministic scan start keys.
fn next_rand(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Baseline scans: every returned document fully decoded.
pub fn run_scans_decode(coll: &Collection, scans: usize) -> Report {
    let records = coll.count() as usize;
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut rows = 0u64;
    let start = Instant::now();
    for _ in 0..scans {
        let first = (next_rand(&mut state) as usize) % records.max(1);
        rows += coll.scan(&key_for(first), SCAN_LEN).unwrap().len() as u64;
    }
    Report { ops: scans as u64, rows, secs: start.elapsed().as_secs_f64() }
}

/// Cursor scans: the same key ranges streamed as raw records, no decode.
pub fn run_scans_cursor(coll: &Collection, scans: usize) -> Report {
    let records = coll.count() as usize;
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut rows = 0u64;
    let start = Instant::now();
    for _ in 0..scans {
        let first = (next_rand(&mut state) as usize) % records.max(1);
        rows += coll.cursor(&key_for(first)).unwrap().take(SCAN_LEN).count() as u64;
    }
    Report { ops: scans as u64, rows, secs: start.elapsed().as_secs_f64() }
}

/// The pre-overhaul non-indexed `find`: batched scan with sentinel resume
/// keys, decoding every document and filtering the materialized values.
pub fn find_decode_all(coll: &Collection, filter: &Filter) -> Vec<String> {
    const BATCH: usize = 1024;
    let mut out = Vec::new();
    let mut start = String::new();
    loop {
        let batch = coll.scan(&start, BATCH).unwrap();
        let full = batch.len() == BATCH;
        let resume = batch.last().map(|(k, _)| format!("{k}\0"));
        for (key, document) in batch {
            if filter.matches(&document) {
                out.push(key);
            }
        }
        match resume {
            Some(next) if full => start = next,
            _ => return out,
        }
    }
}

/// Baseline find throughput over a rotating set of ~1%-selective filters.
pub fn run_finds_decode(coll: &Collection, finds: usize) -> Report {
    let mut rows = 0u64;
    let start = Instant::now();
    for i in 0..finds {
        let filter = Filter::eq("group", (i as i64) % GROUPS);
        rows += find_decode_all(coll, &filter).len() as u64;
    }
    Report { ops: finds as u64, rows, secs: start.elapsed().as_secs_f64() }
}

/// Pushdown find throughput: same filters through `Collection::find`
/// (no index on `group`, so this is the full-scan pushdown path).
pub fn run_finds_pushdown(coll: &Collection, finds: usize) -> Report {
    let mut rows = 0u64;
    let start = Instant::now();
    for i in 0..finds {
        let filter = Filter::eq("group", (i as i64) % GROUPS);
        rows += coll.find(&filter).unwrap().len() as u64;
    }
    Report { ops: finds as u64, rows, secs: start.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_new_paths_agree() {
        for engine in ["wiredtiger", "mmapv1"] {
            let db = load(engine, 300, 64);
            let coll = db.collection("usertable");
            let filter = Filter::eq("group", 3);
            let old: Vec<String> = find_decode_all(&coll, &filter);
            let new: Vec<String> =
                coll.find(&filter).unwrap().into_iter().map(|(k, _)| k).collect();
            assert_eq!(old, new, "engine {engine}");
            assert_eq!(old.len(), 3);

            let decoded = run_scans_decode(&coll, 20);
            let streamed = run_scans_cursor(&coll, 20);
            assert_eq!(decoded.rows, streamed.rows, "engine {engine}");
        }
    }
}
