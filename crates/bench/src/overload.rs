//! E11 harness: closed-loop overload generator for the control plane.
//!
//! Drives a running Chronos Control server with `clients` concurrent
//! threads, each performing connection-per-request GETs (`Connection:
//! close`) so every request passes through admission control instead of
//! pinning a keep-alive worker. Accepted (2xx) responses record their
//! latency; typed `429 overloaded` / `503 draining` sheds and transport
//! errors are counted separately, so the report separates *goodput* from
//! *offered load*.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos_json::{obj, Value};

/// Socket timeout for one benchmark request (never hit in a healthy run;
/// converts a wedged server into counted errors instead of a stuck bench).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Backoff after a shed when the server sent no usable Retry-After hint.
const DEFAULT_SHED_BACKOFF: Duration = Duration::from_millis(5);

/// Cap on how long a client honors a shed hint (keeps the bench moving).
const MAX_SHED_BACKOFF: Duration = Duration::from_millis(100);

/// The outcome of one closed-loop request.
enum Outcome {
    /// 2xx: latency of the full connect→response cycle.
    Ok(Duration),
    /// Typed shed (429 or 503) with the server's Retry-After hint.
    Shed(Option<Duration>),
    /// Transport failure or unexpected status.
    Error,
}

/// One measured load point: `clients` closed-loop threads for `duration`.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    pub clients: usize,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    /// Accepted responses per second (goodput).
    pub goodput_per_sec: f64,
    /// Latency percentiles over accepted responses only.
    pub p50_ms: f64,
    pub p99_ms: f64,
}

impl LoadPoint {
    /// JSON row for `BENCH_overload.json`.
    pub fn to_json(&self) -> Value {
        obj! {
            "clients" => self.clients as i64,
            "ok" => self.ok as i64,
            "shed" => self.shed as i64,
            "errors" => self.errors as i64,
            "goodput_per_sec" => self.goodput_per_sec,
            "p50_ms" => self.p50_ms,
            "p99_ms" => self.p99_ms,
        }
    }
}

/// The `p`-th percentile (0..=100) of an unsorted latency sample, in ms.
pub fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Performs one `GET path` with `Connection: close`, classifying the
/// response by status line.
fn one_request(addr: SocketAddr, path: &str, token: &str) -> Outcome {
    let started = Instant::now();
    let Ok(stream) = TcpStream::connect_timeout(&addr, REQUEST_TIMEOUT) else {
        return Outcome::Error;
    };
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_write_timeout(Some(REQUEST_TIMEOUT));
    let mut stream = stream;
    let request = format!(
        "GET {path} HTTP/1.1\r\nHost: bench\r\nX-Chronos-Token: {token}\r\nConnection: close\r\n\r\n"
    );
    if stream.write_all(request.as_bytes()).is_err() {
        return Outcome::Error;
    }
    // The server closes after the response (Connection: close), so read
    // to EOF and parse the status line.
    let mut body = Vec::new();
    if stream.read_to_end(&mut body).is_err() || body.is_empty() {
        return Outcome::Error;
    }
    let head = String::from_utf8_lossy(&body[..body.len().min(512)]).into_owned();
    let status = head.split_whitespace().nth(1).and_then(|s| s.parse::<u16>().ok()).unwrap_or(0);
    match status {
        200..=299 => Outcome::Ok(started.elapsed()),
        429 | 503 => Outcome::Shed(retry_after_ms(&head)),
        _ => Outcome::Error,
    }
}

/// Parses the millisecond-precision Retry-After hint out of a shed
/// response head.
fn retry_after_ms(head: &str) -> Option<Duration> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if !name.eq_ignore_ascii_case("x-chronos-retry-after-ms") {
            return None;
        }
        value.trim().parse::<u64>().ok().map(Duration::from_millis)
    })
}

/// Runs `clients` closed-loop threads against `addr` for `duration`,
/// each looping `GET path` back-to-back, and aggregates the point.
pub fn run_load(
    addr: SocketAddr,
    path: &str,
    token: &str,
    clients: usize,
    duration: Duration,
) -> LoadPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let path = path.to_string();
            let token = token.to_string();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                let mut errors = 0u64;
                let mut latencies: Vec<f64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match one_request(addr, &path, &token) {
                        Outcome::Ok(elapsed) => {
                            ok += 1;
                            latencies.push(elapsed.as_secs_f64() * 1e3);
                        }
                        Outcome::Shed(hint) => {
                            shed += 1;
                            // A cooperating client honors Retry-After
                            // instead of hammering the accept thread.
                            let backoff =
                                hint.unwrap_or(DEFAULT_SHED_BACKOFF).min(MAX_SHED_BACKOFF);
                            std::thread::sleep(backoff);
                        }
                        Outcome::Error => errors += 1,
                    }
                }
                (ok, shed, errors, latencies)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for handle in handles {
        let (o, s, e, mut l) = handle.join().expect("load thread panicked");
        ok += o;
        shed += s;
        errors += e;
        latencies.append(&mut l);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let p50 = percentile_ms(&mut latencies, 50.0);
    let p99 = percentile_ms(&mut latencies, 99.0);
    LoadPoint {
        clients,
        ok,
        shed,
        errors,
        goodput_per_sec: ok as f64 / elapsed.max(1e-9),
        p50_ms: p50,
        p99_ms: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile_ms(&mut [], 99.0), 0.0);
        let mut one = [7.0];
        assert_eq!(percentile_ms(&mut one, 50.0), 7.0);
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_ms(&mut v, 99.0), 99.0);
        assert_eq!(percentile_ms(&mut v, 50.0), 51.0);
    }
}
