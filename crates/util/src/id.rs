//! Sortable unique identifiers.
//!
//! Chronos Control assigns every entity (project, experiment, evaluation,
//! job, system, deployment, result) an [`Id`]. Ids are ULID-like: a 48-bit
//! millisecond timestamp followed by 80 bits of randomness, rendered in
//! Crockford Base32. Lexicographic order of the rendered form equals
//! creation order, which keeps job listings and timelines naturally sorted
//! without a secondary sort key.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Crockford Base32 alphabet (no I, L, O, U).
const ALPHABET: &[u8; 32] = b"0123456789ABCDEFGHJKMNPQRSTVWXYZ";

/// A 128-bit, time-ordered, globally unique identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(u128);

/// Monotonic counter mixed into the random part so that ids generated within
/// the same millisecond on the same process still sort in creation order.
static SEQ: AtomicU64 = AtomicU64::new(0);

impl Id {
    /// Generates a fresh id using the system clock and thread-local RNG.
    pub fn generate() -> Self {
        let millis =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        Self::from_parts(millis, rand::random::<u64>())
    }

    /// Builds an id from an explicit timestamp and entropy value. The
    /// process-wide sequence counter is folded in to preserve ordering for
    /// ids minted within the same millisecond.
    pub fn from_parts(unix_millis: u64, entropy: u64) -> Self {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed) & 0xFFFF;
        let ts = (unix_millis as u128 & 0xFFFF_FFFF_FFFF) << 80;
        let mid = (seq as u128) << 64;
        Id(ts | mid | entropy as u128)
    }

    /// The millisecond timestamp embedded in this id.
    pub fn timestamp_millis(&self) -> u64 {
        (self.0 >> 80) as u64
    }

    /// Raw 128-bit value.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// Rebuilds an id from its raw 128-bit value.
    pub fn from_u128(raw: u128) -> Self {
        Id(raw)
    }

    /// Renders the canonical 26-character Crockford Base32 form.
    pub fn to_base32(&self) -> String {
        let mut out = [0u8; 26];
        let mut v = self.0;
        for slot in out.iter_mut().rev() {
            *slot = ALPHABET[(v & 0x1F) as usize];
            v >>= 5;
        }
        // 26 * 5 = 130 bits; the top 2 bits are always zero for a 128-bit
        // value, so the first character is in '0'..='7'.
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Parses the canonical form produced by [`Id::to_base32`].
    pub fn parse_base32(s: &str) -> Result<Self, IdParseError> {
        if s.len() != 26 {
            return Err(IdParseError::BadLength(s.len()));
        }
        let mut v: u128 = 0;
        for (i, c) in s.bytes().enumerate() {
            let digit = decode_char(c).ok_or(IdParseError::BadChar(i, c as char))?;
            if i == 0 && digit > 7 {
                return Err(IdParseError::Overflow);
            }
            v = (v << 5) | digit as u128;
        }
        Ok(Id(v))
    }
}

fn decode_char(c: u8) -> Option<u8> {
    let c = c.to_ascii_uppercase();
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'A'..=b'H' => Some(c - b'A' + 10),
        b'J' | b'K' => Some(c - b'J' + 18),
        b'M' | b'N' => Some(c - b'M' + 20),
        b'P'..=b'T' => Some(c - b'P' + 22),
        b'V'..=b'Z' => Some(c - b'V' + 27),
        _ => None,
    }
}

/// Errors produced when parsing the textual id form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdParseError {
    /// The input was not exactly 26 characters.
    BadLength(usize),
    /// The input contained a character outside the Crockford alphabet.
    BadChar(usize, char),
    /// The encoded value exceeds 128 bits.
    Overflow,
}

impl fmt::Display for IdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdParseError::BadLength(n) => write!(f, "id must be 26 chars, got {n}"),
            IdParseError::BadChar(i, c) => write!(f, "invalid id character {c:?} at {i}"),
            IdParseError::Overflow => write!(f, "id value exceeds 128 bits"),
        }
    }
}

impl std::error::Error for IdParseError {}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_base32())
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.to_base32())
    }
}

impl FromStr for Id {
    type Err = IdParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Id::parse_base32(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_base32() {
        for _ in 0..100 {
            let id = Id::generate();
            let text = id.to_base32();
            assert_eq!(Id::parse_base32(&text).unwrap(), id);
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(Id::generate()));
        }
    }

    #[test]
    fn ids_sort_by_time() {
        let early = Id::from_parts(1_000, 0xFFFF_FFFF_FFFF_FFFF);
        let late = Id::from_parts(2_000, 0);
        assert!(early < late);
        assert!(early.to_base32() < late.to_base32());
    }

    #[test]
    fn same_millisecond_ids_sort_by_sequence() {
        let a = Id::from_parts(1_000, 42);
        let b = Id::from_parts(1_000, 42);
        assert!(a < b, "sequence counter must break ties");
    }

    #[test]
    fn timestamp_extraction() {
        let id = Id::from_parts(123_456_789, 7);
        assert_eq!(id.timestamp_millis(), 123_456_789);
    }

    #[test]
    fn parse_rejects_bad_length() {
        assert_eq!(Id::parse_base32("ABC"), Err(IdParseError::BadLength(3)));
    }

    #[test]
    fn parse_rejects_bad_char() {
        let mut s = Id::generate().to_base32();
        s.replace_range(3..4, "U"); // 'U' is not in the Crockford alphabet
        assert!(matches!(Id::parse_base32(&s), Err(IdParseError::BadChar(3, 'U'))));
    }

    #[test]
    fn parse_rejects_overflow() {
        let s = "Z".repeat(26);
        assert_eq!(Id::parse_base32(&s), Err(IdParseError::Overflow));
    }

    #[test]
    fn parse_is_case_insensitive() {
        let id = Id::generate();
        let lower = id.to_base32().to_ascii_lowercase();
        assert_eq!(Id::parse_base32(&lower).unwrap(), id);
    }

    #[test]
    fn display_matches_base32() {
        let id = Id::generate();
        assert_eq!(format!("{id}"), id.to_base32());
        assert_eq!(format!("{id:?}"), format!("Id({})", id.to_base32()));
    }

    #[test]
    fn raw_u128_roundtrip() {
        let id = Id::generate();
        assert_eq!(Id::from_u128(id.as_u128()), id);
    }
}
