//! Clock abstraction.
//!
//! Chronos Control tracks wall-clock timestamps on every timeline event and
//! uses elapsed time for agent lease expiry and job timeouts. To make the
//! reliability machinery (requirement *(iii)* of the paper) testable without
//! sleeping, all time flows through the [`Clock`] trait: production code uses
//! [`SystemClock`], tests drive a [`MockClock`] forward explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A source of the current time, in milliseconds since the Unix epoch.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since the Unix epoch.
    fn now_millis(&self) -> u64;

    /// Convenience: elapsed milliseconds since `earlier` (saturating).
    fn since_millis(&self, earlier: u64) -> u64 {
        self.now_millis().saturating_sub(earlier)
    }
}

/// The real system clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
    }
}

/// A manually driven clock for deterministic tests.
///
/// Cloning a `MockClock` yields a handle onto the same underlying instant, so
/// a scheduler and the test driving it observe the same time.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    now: Arc<AtomicU64>,
}

impl MockClock {
    /// Creates a clock reading `start_millis`.
    pub fn new(start_millis: u64) -> Self {
        MockClock { now: Arc::new(AtomicU64::new(start_millis)) }
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.now.fetch_add(delta.as_millis() as u64, Ordering::SeqCst);
    }

    /// Advances the clock by `millis` milliseconds.
    pub fn advance_millis(&self, millis: u64) {
        self.now.fetch_add(millis, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, millis: u64) {
        self.now.store(millis, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_millis(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Renders a Unix-millisecond timestamp as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
///
/// Chronos timelines and archives need human-readable timestamps; this is a
/// minimal proleptic-Gregorian formatter (no external chrono dependency).
pub fn format_timestamp(unix_millis: u64) -> String {
    let millis = unix_millis % 1000;
    let total_secs = unix_millis / 1000;
    let (secs_of_day, days) = (total_secs % 86_400, total_secs / 86_400);
    let (hour, min, sec) = (secs_of_day / 3600, (secs_of_day / 60) % 60, secs_of_day % 60);
    let (year, month, day) = civil_from_days(days as i64);
    format!("{year:04}-{month:02}-{day:02}T{hour:02}:{min:02}:{sec:02}.{millis:03}Z")
}

/// Converts days since 1970-01-01 to (year, month, day).
/// Algorithm from Howard Hinnant's `civil_from_days`.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000, "clock should be past 2020");
    }

    #[test]
    fn mock_clock_advances() {
        let c = MockClock::new(100);
        assert_eq!(c.now_millis(), 100);
        c.advance_millis(50);
        assert_eq!(c.now_millis(), 150);
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now_millis(), 1_150);
        c.set(7);
        assert_eq!(c.now_millis(), 7);
    }

    #[test]
    fn mock_clock_clones_share_state() {
        let a = MockClock::new(0);
        let b = a.clone();
        a.advance_millis(42);
        assert_eq!(b.now_millis(), 42);
    }

    #[test]
    fn since_is_saturating() {
        let c = MockClock::new(10);
        assert_eq!(c.since_millis(100), 0);
        assert_eq!(c.since_millis(4), 6);
    }

    #[test]
    fn formats_epoch() {
        assert_eq!(format_timestamp(0), "1970-01-01T00:00:00.000Z");
    }

    #[test]
    fn formats_known_date() {
        // 2020-03-30T12:34:56.789Z — first day of EDBT 2020.
        assert_eq!(format_timestamp(1_585_571_696_789), "2020-03-30T12:34:56.789Z");
    }

    #[test]
    fn formats_leap_day() {
        // 2020-02-29T00:00:00.000Z
        assert_eq!(format_timestamp(1_582_934_400_000), "2020-02-29T00:00:00.000Z");
    }
}
