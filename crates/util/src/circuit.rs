//! A small circuit breaker for client→server endpoints.
//!
//! When Chronos Control is struggling, the worst thing its own agent fleet
//! can do is keep hammering it with retries. Each agent therefore guards
//! every control-plane endpoint with a [`CircuitBreaker`]: after a run of
//! consecutive hard failures (5xx or connect errors) the circuit *opens* and
//! calls fail fast locally without touching the network; after a cooldown a
//! single *half-open* probe is let through, and its outcome decides whether
//! the circuit closes again or re-opens for another cooldown.
//!
//! The cooldown is jittered from a per-breaker seed so a fleet of agents
//! that tripped on the same outage does not send its probes in lockstep —
//! same rationale as the decorrelated-jitter retry schedule in [`crate::retry`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::{Clock, SystemClock};

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Calls flow normally.
    Closed,
    /// Calls fail fast until the cooldown elapses.
    Open,
    /// One probe call is in flight; everyone else still fails fast.
    HalfOpen,
}

struct Inner {
    state: CircuitState,
    consecutive_failures: u32,
    /// Clock millis at which an open circuit admits its half-open probe.
    open_until: u64,
    rng: StdRng,
}

/// A consecutive-failure circuit breaker with seeded half-open probes.
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
    threshold: u32,
    cooldown: Duration,
    clock: Arc<dyn Clock>,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and stays
    /// open for roughly `cooldown` (plus up to 50% seeded jitter).
    pub fn new(threshold: u32, cooldown: Duration, seed: u64) -> Self {
        CircuitBreaker {
            inner: Mutex::new(Inner {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                open_until: 0,
                rng: StdRng::seed_from_u64(seed),
            }),
            threshold: threshold.max(1),
            cooldown,
            clock: Arc::new(SystemClock),
        }
    }

    /// Substitutes the time source (tests drive a
    /// [`MockClock`](crate::MockClock) instead of sleeping).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Whether a call may proceed right now. An open circuit whose cooldown
    /// has elapsed admits exactly one caller as the half-open probe; every
    /// other caller keeps failing fast until that probe reports back.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::Closed => true,
            CircuitState::HalfOpen => false,
            CircuitState::Open => {
                if self.clock.now_millis() >= inner.open_until {
                    inner.state = CircuitState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the circuit and clears the failure
    /// run.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.state = CircuitState::Closed;
        inner.consecutive_failures = 0;
    }

    /// Records a hard failure (5xx or connect error). Opens the circuit when
    /// the consecutive-failure run reaches the threshold, or immediately if
    /// this was the half-open probe.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        if inner.state == CircuitState::HalfOpen || inner.consecutive_failures >= self.threshold {
            let base = self.cooldown.as_millis() as u64;
            let jitter = if base >= 2 { inner.rng.gen_range(0..base / 2 + 1) } else { 0 };
            inner.open_until = self.clock.now_millis() + base + jitter;
            inner.state = CircuitState::Open;
        }
    }

    /// Current state (transitions lazily: an open circuit past its cooldown
    /// still reads `Open` until a caller claims the probe slot).
    pub fn state(&self) -> CircuitState {
        self.inner.lock().state
    }

    /// How long until an open circuit admits its probe (zero if it already
    /// would, `None` when closed or half-open).
    pub fn retry_in(&self) -> Option<Duration> {
        let inner = self.inner.lock();
        match inner.state {
            CircuitState::Open => Some(Duration::from_millis(
                inner.open_until.saturating_sub(self.clock.now_millis()),
            )),
            _ => None,
        }
    }
}

/// A lazily populated set of per-endpoint breakers sharing one policy.
///
/// Each endpoint gets its own breaker (a failing archive endpoint must not
/// fail-fast heartbeats) with a seed derived from the set's seed and the
/// endpoint name, keeping probe jitter deterministic per (seed, endpoint).
pub struct BreakerSet {
    threshold: u32,
    cooldown: Duration,
    seed: u64,
    clock: Arc<dyn Clock>,
    breakers: Mutex<HashMap<&'static str, Arc<CircuitBreaker>>>,
}

impl BreakerSet {
    /// A set whose breakers open after `threshold` consecutive failures for
    /// roughly `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration, seed: u64) -> Self {
        BreakerSet {
            threshold,
            cooldown,
            seed,
            clock: Arc::new(SystemClock),
            breakers: Mutex::new(HashMap::new()),
        }
    }

    /// Substitutes the time source for every breaker created afterwards.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The breaker guarding `endpoint`, created on first use.
    pub fn get(&self, endpoint: &'static str) -> Arc<CircuitBreaker> {
        let mut breakers = self.breakers.lock();
        Arc::clone(breakers.entry(endpoint).or_insert_with(|| {
            let mut seed = self.seed;
            for b in endpoint.bytes() {
                // FNV-1a style fold so each endpoint's jitter stream differs.
                seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            Arc::new(
                CircuitBreaker::new(self.threshold, self.cooldown, seed)
                    .with_clock(Arc::clone(&self.clock)),
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    fn breaker(clock: &MockClock) -> CircuitBreaker {
        CircuitBreaker::new(3, Duration::from_millis(1000), 7).with_clock(Arc::new(clock.clone()))
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let clock = MockClock::new(0);
        let b = breaker(&clock);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.try_acquire(), "open circuit must fail fast");
        assert!(b.retry_in().is_some());
    }

    #[test]
    fn success_resets_the_failure_run() {
        let clock = MockClock::new(0);
        let b = breaker(&clock);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Closed, "run was broken by a success");
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let clock = MockClock::new(0);
        let b = breaker(&clock);
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(!b.try_acquire());
        // Cooldown is 1000ms + up to 500ms jitter: advance past the worst case.
        clock.advance_millis(1501);
        assert!(b.try_acquire(), "first caller after cooldown is the probe");
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert!(!b.try_acquire(), "only one probe may be in flight");
        b.record_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let clock = MockClock::new(0);
        let b = breaker(&clock);
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance_millis(1501);
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Open, "failed probe must re-open");
        assert!(!b.try_acquire());
    }

    #[test]
    fn cooldown_jitter_is_seeded_and_bounded() {
        let clock = MockClock::new(0);
        let deadline = |seed: u64| {
            let b = CircuitBreaker::new(1, Duration::from_millis(1000), seed)
                .with_clock(Arc::new(clock.clone()));
            b.record_failure();
            b.retry_in().unwrap()
        };
        let a = deadline(1);
        assert_eq!(a, deadline(1), "same seed, same probe time");
        assert!(a >= Duration::from_millis(1000) && a <= Duration::from_millis(1500));
        // Different seeds should decorrelate (not guaranteed for every pair,
        // but these two differ).
        assert_ne!(deadline(2), deadline(3));
    }

    #[test]
    fn breaker_set_isolates_endpoints() {
        let clock = MockClock::new(0);
        let set =
            BreakerSet::new(1, Duration::from_millis(1000), 42).with_clock(Arc::new(clock.clone()));
        set.get("claim").record_failure();
        assert!(!set.get("claim").try_acquire(), "claim circuit tripped");
        assert!(set.get("heartbeat").try_acquire(), "heartbeat circuit is independent");
        // Same endpoint resolves to the same breaker instance.
        assert!(Arc::ptr_eq(&set.get("claim"), &set.get("claim")));
    }
}
