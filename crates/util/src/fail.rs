//! Deterministic fault injection (failpoints).
//!
//! Chronos' failure handling — WAL recovery, lease expiry, idempotent
//! retries — is only trustworthy if it is *exercised*. This module provides a
//! process-global registry of named fault sites. Production code marks an I/O
//! boundary with [`fail_eval!`]:
//!
//! ```ignore
//! if let Some(inj) = chronos_util::fail_eval!("core.store.wal.append") {
//!     // translate `inj` into this layer's error type
//! }
//! ```
//!
//! Tests (or the `CHRONOS_FAILPOINTS` environment variable) arm sites with a
//! [`Policy`]: fail the first N hits, fail every Nth hit, fail with a seeded
//! probability, panic, delay, or tear a write after `keep` bytes. The seeded
//! probability policies draw from a per-site xoshiro256++ stream derived from
//! a global seed ([`set_seed`] / `CHRONOS_FAIL_SEED`), so a failing chaos run
//! can be replayed by re-exporting the printed seed.
//!
//! When the `failpoints` cargo feature is **off** (the default), the
//! [`fail_eval!`] macro expands to `Option::None` without ever referencing
//! the site name, so release builds carry zero overhead — not even the site
//! string literals survive in the binary (`scripts/check.sh --chaos` verifies
//! this by grepping the release binary).

/// A fault selected for injection at an armed site.
///
/// Defined unconditionally so call sites type-check whether or not the
/// `failpoints` feature is enabled. `Delay` and `Panic` policies are executed
/// inside [`eval`] itself and never surface here; sites only need to handle
/// the two actionable variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injected {
    /// Fail the operation with the given message (site wraps it in its own
    /// error type). The message embeds the site name and hit index so chaos
    /// logs are self-describing.
    Error(String),
    /// Perform a torn write: persist only the first `keep` bytes of the
    /// payload, then fail the operation as if the process died mid-write.
    Torn {
        /// Number of leading payload bytes to actually write.
        keep: usize,
    },
}

/// Evaluates a failpoint site: the real registry when `failpoints` is on, a
/// literal `Option::None` (site name dropped at compile time) when off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_eval {
    ($name:expr) => {
        $crate::fail::eval($name)
    };
}

/// Evaluates a failpoint site: the real registry when `failpoints` is on, a
/// literal `Option::None` (site name dropped at compile time) when off.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_eval {
    ($name:expr) => {
        Option::<$crate::fail::Injected>::None
    };
}

#[cfg(feature = "failpoints")]
pub use registry::{arm, arm_from_spec, disarm, eval, hits, reset, seed, set_seed, Policy};

#[cfg(feature = "failpoints")]
mod registry {
    use super::Injected;
    use parking_lot::Mutex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::OnceLock;
    use std::time::Duration;

    /// What an armed site does on each hit.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Policy {
        /// Never inject (counting only).
        Off,
        /// Inject an error on the first `n` hits, then pass through.
        ErrorTimes(u64),
        /// Inject an error on every `n`th hit (hits n, 2n, ...).
        ErrorEveryNth(u64),
        /// Inject an error with probability `p` per hit, drawn from a
        /// per-site stream seeded by the global seed — deterministic per
        /// (seed, site, hit index).
        ErrorProb(f64),
        /// Panic at the site (models a hard crash in-process).
        Panic,
        /// Sleep for the given duration, then pass through.
        Delay(Duration),
        /// Tear the next write after `keep` bytes, once, then disarm.
        Torn {
            /// Number of leading payload bytes the site should persist.
            keep: usize,
        },
    }

    struct Site {
        policy: Policy,
        hits: u64,
        rng: StdRng,
    }

    struct Registry {
        sites: HashMap<String, Site>,
        seed: u64,
    }

    /// Fast path: number of currently armed sites. `eval` returns
    /// immediately without locking while this is zero and the env spec has
    /// already been applied.
    static ARMED: AtomicUsize = AtomicUsize::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let seed = std::env::var("CHRONOS_FAIL_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            SEED.store(seed, Ordering::Relaxed);
            let mut reg = Registry { sites: HashMap::new(), seed };
            if let Ok(spec) = std::env::var("CHRONOS_FAILPOINTS") {
                apply_spec(&mut reg, &spec);
            }
            Mutex::new(reg)
        })
    }

    /// FNV-1a over the site name: gives each site an independent RNG stream
    /// from the same global seed, so one site's hit count never perturbs
    /// another site's schedule.
    fn site_hash(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn site_rng(seed: u64, name: &str) -> StdRng {
        StdRng::seed_from_u64(seed ^ site_hash(name))
    }

    fn apply_spec(reg: &mut Registry, spec: &str) {
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((name, policy)) = entry.split_once('=') else {
                panic!("CHRONOS_FAILPOINTS: entry without '=': {entry:?}");
            };
            let policy = parse_policy(policy.trim())
                .unwrap_or_else(|| panic!("CHRONOS_FAILPOINTS: bad policy in {entry:?}"));
            arm_locked(reg, name.trim(), policy);
        }
    }

    /// Parses one policy from the env grammar: `off`, `panic`,
    /// `error` / `error(N)`, `every(N)`, `prob(P)`, `delay(MS)`, `torn(K)`.
    fn parse_policy(s: &str) -> Option<Policy> {
        fn arg(s: &str, head: &str) -> Option<String> {
            s.strip_prefix(head)?.strip_prefix('(')?.strip_suffix(')').map(str::to_owned)
        }
        match s {
            "off" => return Some(Policy::Off),
            "panic" => return Some(Policy::Panic),
            "error" => return Some(Policy::ErrorTimes(u64::MAX)),
            _ => {}
        }
        if let Some(a) = arg(s, "error") {
            return a.parse().ok().map(Policy::ErrorTimes);
        }
        if let Some(a) = arg(s, "every") {
            return a.parse().ok().filter(|n| *n > 0).map(Policy::ErrorEveryNth);
        }
        if let Some(a) = arg(s, "prob") {
            return a.parse().ok().filter(|p| (0.0..=1.0).contains(p)).map(Policy::ErrorProb);
        }
        if let Some(a) = arg(s, "delay") {
            return a.parse().ok().map(|ms| Policy::Delay(Duration::from_millis(ms)));
        }
        if let Some(a) = arg(s, "torn") {
            return a.parse().ok().map(|keep| Policy::Torn { keep });
        }
        None
    }

    fn arm_locked(reg: &mut Registry, name: &str, policy: Policy) {
        let rng = site_rng(reg.seed, name);
        let prev = reg.sites.insert(name.to_string(), Site { policy, hits: 0, rng });
        if prev.is_none() {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Arms `name` with `policy`, resetting its hit counter and RNG stream.
    pub fn arm(name: &str, policy: Policy) {
        arm_locked(&mut registry().lock(), name, policy);
    }

    /// Arms sites from an env-grammar spec string, e.g.
    /// `"core.store.wal.append=torn(5);agent.upload=prob(0.2)"`.
    pub fn arm_from_spec(spec: &str) {
        apply_spec(&mut registry().lock(), spec);
    }

    /// Disarms `name` (removes it from the registry entirely).
    pub fn disarm(name: &str) {
        if registry().lock().sites.remove(name).is_some() {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Disarms every site and resets hit counters. Call between tests — the
    /// registry is process-global.
    pub fn reset() {
        let mut reg = registry().lock();
        let n = reg.sites.len();
        reg.sites.clear();
        ARMED.fetch_sub(n, Ordering::SeqCst);
    }

    /// Sets the global seed for probabilistic policies. Re-seeds the streams
    /// of already-armed sites so `set_seed` + `arm` order doesn't matter.
    pub fn set_seed(seed: u64) {
        let mut reg = registry().lock();
        reg.seed = seed;
        SEED.store(seed, Ordering::Relaxed);
        let names: Vec<String> = reg.sites.keys().cloned().collect();
        for name in names {
            let rng = site_rng(seed, &name);
            if let Some(site) = reg.sites.get_mut(&name) {
                site.rng = rng;
                site.hits = 0;
            }
        }
    }

    /// The global seed currently in effect (for replay banners).
    pub fn seed() -> u64 {
        let _ = registry();
        SEED.load(Ordering::Relaxed)
    }

    /// Number of times `name` has been evaluated since it was armed.
    pub fn hits(name: &str) -> u64 {
        registry().lock().sites.get(name).map_or(0, |s| s.hits)
    }

    /// Evaluates the site: returns the fault to inject, if any. `Delay`
    /// sleeps and `Panic` panics right here; callers only see
    /// [`Injected::Error`] and [`Injected::Torn`].
    pub fn eval(name: &str) -> Option<Injected> {
        if ARMED.load(Ordering::SeqCst) == 0 {
            // Still force env-spec parsing on the very first call.
            let _ = registry();
            if ARMED.load(Ordering::SeqCst) == 0 {
                return None;
            }
        }
        enum Action {
            Pass,
            Inject(Injected),
            Panic,
            Delay(Duration),
        }
        let action = {
            let mut reg = registry().lock();
            let site = reg.sites.get_mut(name)?;
            site.hits += 1;
            let hit = site.hits;
            let err = || Injected::Error(format!("failpoint {name}: injected error (hit {hit})"));
            match &site.policy {
                Policy::Off => Action::Pass,
                Policy::ErrorTimes(n) => {
                    if hit <= *n {
                        Action::Inject(err())
                    } else {
                        Action::Pass
                    }
                }
                Policy::ErrorEveryNth(n) => {
                    if hit % n == 0 {
                        Action::Inject(err())
                    } else {
                        Action::Pass
                    }
                }
                Policy::ErrorProb(p) => {
                    let p = *p;
                    if site.rng.gen_bool(p) {
                        Action::Inject(err())
                    } else {
                        Action::Pass
                    }
                }
                Policy::Panic => Action::Panic,
                Policy::Delay(d) => Action::Delay(*d),
                Policy::Torn { keep } => {
                    let keep = *keep;
                    // One-shot: a torn write models a crash; repeating it on
                    // the retry path would just be `error`.
                    site.policy = Policy::Off;
                    Action::Inject(Injected::Torn { keep })
                }
            }
        };
        match action {
            Action::Pass => None,
            Action::Inject(inj) => Some(inj),
            Action::Panic => panic!("failpoint {name}: injected panic"),
            Action::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Mutex as StdMutex;

        // The registry is process-global; serialize tests that touch it.
        static LOCK: StdMutex<()> = StdMutex::new(());

        fn guard() -> std::sync::MutexGuard<'static, ()> {
            let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            reset();
            g
        }

        #[test]
        fn unarmed_site_is_none() {
            let _g = guard();
            assert_eq!(eval("nope"), None);
        }

        #[test]
        fn error_times_fires_then_clears() {
            let _g = guard();
            arm("t.a", Policy::ErrorTimes(2));
            assert!(matches!(eval("t.a"), Some(Injected::Error(_))));
            assert!(matches!(eval("t.a"), Some(Injected::Error(_))));
            assert_eq!(eval("t.a"), None);
            assert_eq!(hits("t.a"), 3);
            reset();
        }

        #[test]
        fn every_nth_fires_periodically() {
            let _g = guard();
            arm("t.b", Policy::ErrorEveryNth(3));
            let fired: Vec<bool> = (0..9).map(|_| eval("t.b").is_some()).collect();
            assert_eq!(fired, [false, false, true, false, false, true, false, false, true]);
            reset();
        }

        #[test]
        fn torn_is_one_shot() {
            let _g = guard();
            arm("t.c", Policy::Torn { keep: 7 });
            assert_eq!(eval("t.c"), Some(Injected::Torn { keep: 7 }));
            assert_eq!(eval("t.c"), None);
            reset();
        }

        #[test]
        fn prob_schedule_is_deterministic_per_seed() {
            let _g = guard();
            set_seed(42);
            arm("t.d", Policy::ErrorProb(0.5));
            let a: Vec<bool> = (0..64).map(|_| eval("t.d").is_some()).collect();
            set_seed(42);
            arm("t.d", Policy::ErrorProb(0.5));
            let b: Vec<bool> = (0..64).map(|_| eval("t.d").is_some()).collect();
            assert_eq!(a, b);
            assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
            set_seed(43);
            arm("t.d", Policy::ErrorProb(0.5));
            let c: Vec<bool> = (0..64).map(|_| eval("t.d").is_some()).collect();
            assert_ne!(a, c);
            reset();
        }

        #[test]
        fn sites_have_independent_streams() {
            let _g = guard();
            set_seed(7);
            arm("t.e1", Policy::ErrorProb(0.5));
            arm("t.e2", Policy::ErrorProb(0.5));
            let solo: Vec<bool> = (0..32).map(|_| eval("t.e1").is_some()).collect();
            set_seed(7);
            arm("t.e1", Policy::ErrorProb(0.5));
            arm("t.e2", Policy::ErrorProb(0.5));
            // Interleave hits on t.e2; t.e1's schedule must not change.
            let interleaved: Vec<bool> = (0..32)
                .map(|_| {
                    let _ = eval("t.e2");
                    eval("t.e1").is_some()
                })
                .collect();
            assert_eq!(solo, interleaved);
            reset();
        }

        #[test]
        fn spec_grammar_parses() {
            let _g = guard();
            arm_from_spec("a=error(2); b = torn(5) ;c=every(4);d=prob(0.25);e=delay(1);f=off");
            assert!(matches!(eval("a"), Some(Injected::Error(_))));
            assert_eq!(eval("b"), Some(Injected::Torn { keep: 5 }));
            assert_eq!(eval("f"), None);
            assert_eq!(eval("c"), None); // hit 1 of every(4)
            let before = std::time::Instant::now();
            assert_eq!(eval("e"), None);
            assert!(before.elapsed() >= Duration::from_millis(1));
            reset();
        }

        #[test]
        #[should_panic(expected = "injected panic")]
        fn panic_policy_panics() {
            let _g = guard();
            arm("t.p", Policy::Panic);
            let _ = eval("t.p");
        }

        #[test]
        fn macro_routes_to_registry() {
            let _g = guard();
            arm("t.m", Policy::ErrorTimes(1));
            assert!(matches!(crate::fail_eval!("t.m"), Some(Injected::Error(_))));
            assert_eq!(crate::fail_eval!("t.m"), None);
            reset();
        }
    }
}

/// With the feature off the macro must expand to a plain `None` — this
/// compile-and-run check is part of the zero-overhead guarantee verified by
/// `scripts/check.sh --chaos`.
#[cfg(all(test, not(feature = "failpoints")))]
mod off_tests {
    #[test]
    fn fail_eval_is_compile_time_none() {
        let injected = crate::fail_eval!("core.store.wal.append");
        assert!(injected.is_none());
    }
}
