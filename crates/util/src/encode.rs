//! Binary codecs: CRC-32 (IEEE), hexadecimal, Base64 and percent-encoding
//! helpers.
//!
//! These back the ZIP substrate (CRC-32 of every archive entry), HTTP basic
//! authentication (Base64 credentials) and result fingerprinting (hex
//! digests in archive manifests).

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum ZIP
/// stores per entry.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

static CRC_TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();

fn crc_table() -> &'static [u32; 256] {
    CRC_TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &b in data {
            self.state = table[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Returns the final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Lower-case hexadecimal rendering of `data`.
pub fn hex_encode(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xF) as usize] as char);
    }
    out
}

/// Parses a hexadecimal string (case-insensitive, even length).
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard Base64 encoding with padding (RFC 4648).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64[((n >> 18) & 0x3F) as usize] as char);
        out.push(B64[((n >> 12) & 0x3F) as usize] as char);
        out.push(if chunk.len() > 1 { B64[((n >> 6) & 0x3F) as usize] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[(n & 0x3F) as usize] as char } else { '=' });
    }
    out
}

/// Standard Base64 decoding with padding (RFC 4648). Rejects malformed input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(4) {
        return None;
    }
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = if last { chunk.iter().rev().take_while(|&&c| c == b'=').count() } else { 0 };
        if pad > 2 {
            return None;
        }
        let mut n: u32 = 0;
        for (j, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if !last || j < 4 - pad {
                    return None; // '=' only allowed as trailing padding
                }
                0
            } else {
                val(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

/// SHA-256 (FIPS 180-4). Used for password hashing (salted + iterated) and
/// archive content fingerprints.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data = b"hello chronos world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0u8, 1, 15, 16, 127, 128, 255];
        let enc = hex_encode(&data);
        assert_eq!(enc, "00010f10 7f80ff".replace(' ', ""));
        assert_eq!(hex_decode(&enc).unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_decode_known_vectors() {
        assert_eq!(base64_decode("").unwrap(), b"");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn base64_rejects_bad_input() {
        assert!(base64_decode("A").is_none()); // bad length
        assert!(base64_decode("Zg=A").is_none()); // padding in the middle
        assert!(base64_decode("Zm9v!bad").is_none()); // bad alphabet
        assert!(base64_decode("====").is_none()); // too much padding
    }

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            hex_encode(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex_encode(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex_encode(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_padding_boundaries() {
        // Lengths around the 55/56/64-byte padding edge cases must not panic
        // and must differ.
        let digests: Vec<_> = (53..=66).map(|n| sha256(&vec![b'x'; n])).collect();
        for pair in digests.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn base64_roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }
}
