//! Shared utilities for the Chronos evaluation toolkit.
//!
//! This crate collects the small, dependency-free building blocks every other
//! Chronos crate needs:
//!
//! * [`id`] — sortable, globally unique identifiers (ULID-like) for entities
//!   such as projects, experiments, evaluations and jobs.
//! * [`clock`] — a [`Clock`](clock::Clock) abstraction with a real
//!   implementation and a manually driven [`MockClock`](clock::MockClock) so
//!   schedulers and lease expiry can be tested deterministically.
//! * [`encode`] — CRC-32, hexadecimal and Base64 codecs used by the ZIP
//!   substrate and by HTTP basic authentication.
//! * [`pool`] — a fixed-size worker thread pool used by the HTTP server and
//!   by parallel agents.
//! * [`retry`] — bounded exponential backoff used by agents talking to
//!   Chronos Control.
//! * [`circuit`] — per-endpoint circuit breakers so a struggling control
//!   plane is not hammered by its own agent fleet.
//! * [`fail`] — deterministic fault injection: named failpoint sites armed
//!   from tests or `CHRONOS_FAILPOINTS`, compiled out unless the
//!   `failpoints` feature is enabled.

pub mod circuit;
pub mod clock;
pub mod encode;
pub mod fail;
pub mod id;
pub mod pool;
pub mod retry;

pub use clock::{Clock, MockClock, SystemClock};
pub use id::Id;
pub use pool::ThreadPool;
