//! A fixed-size worker thread pool.
//!
//! Used by the Chronos HTTP server to serve concurrent connections and by
//! evaluation clients to drive multi-threaded benchmark workloads (the demo's
//! swept parameter *is* the client thread count, so the pool is on the hot
//! path of experiment E1).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted closures.
///
/// Dropping the pool closes the queue and joins all workers, so every
/// submitted job is either executed or (if a worker panicked) accounted for
/// in [`ThreadPool::panics`].
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Creates a pool with `size` workers. `size` is clamped to at least 1.
    pub fn new(size: usize) -> Self {
        Self::with_name(size, "chronos-worker")
    }

    /// Creates a pool whose worker threads carry `name` (visible in
    /// backtraces and profilers).
    pub fn with_name(size: usize, name: &str) -> Self {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicUsize::new(0));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock();
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    panics.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => break, // channel closed: shut down
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool { sender: Some(sender), workers, panics }
    }

    /// Submits a job for execution. Returns `false` if the pool is shutting
    /// down and the job was not accepted.
    pub fn execute<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        match &self.sender {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs that panicked instead of completing.
    pub fn panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Runs `f` on `threads` scoped threads, passing each its index, and returns
/// the per-thread results in index order. This is the fork/join primitive the
/// benchmark clients use for the "number of client threads" parameter.
pub fn scoped_indexed<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|i| scope.spawn(move || f(i))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_size_is_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("boom"));
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1, "worker must survive a panic");
    }

    #[test]
    fn panics_are_counted() {
        let pool = ThreadPool::new(2);
        for _ in 0..3 {
            pool.execute(|| panic!("boom"));
        }
        // Drain by dropping (joins all workers first).
        let panics = {
            let p = pool;
            // Wait for jobs by dropping; capture counter handle first.
            let counter = Arc::clone(&p.panics);
            drop(p);
            counter.load(Ordering::Relaxed)
        };
        assert_eq!(panics, 3);
    }

    #[test]
    fn scoped_indexed_returns_in_order() {
        let results = scoped_indexed(8, |i| i * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn scoped_indexed_clamps_to_one() {
        assert_eq!(scoped_indexed(0, |i| i), vec![0]);
    }
}
