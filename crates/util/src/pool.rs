//! A fixed-size worker thread pool.
//!
//! Used by the Chronos HTTP server to serve concurrent connections and by
//! evaluation clients to drive multi-threaded benchmark workloads (the demo's
//! swept parameter *is* the client thread count, so the pool is on the hot
//! path of experiment E1).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Everything the queue's one lock protects.
struct QueueState {
    jobs: VecDeque<Job>,
    /// Workers currently parked waiting for a job. A parked worker *is*
    /// dispatch capacity: a bounded queue admits `capacity + idle` jobs, so
    /// "queue depth 0" means "shed only when no worker can pick the job up",
    /// not "shed unless a worker happens to be mid-`recv` at this instant"
    /// (the previous `Mutex<mpsc::Receiver>` design parked only one worker
    /// in the channel at a time, so a rendezvous queue shed spuriously while
    /// the other workers sat idle waiting for the receiver lock).
    idle: usize,
    closed: bool,
}

/// A deque + condvar job queue shared by every worker.
struct JobQueue {
    state: StdMutex<QueueState>,
    /// Wakes workers: a job was pushed or the queue closed.
    job_ready: Condvar,
    /// Wakes blocked submitters and the startup barrier: a worker parked.
    space_free: Condvar,
    /// Max jobs buffered beyond the idle workers; `None` = unbounded.
    capacity: Option<usize>,
}

impl JobQueue {
    fn has_room(&self, state: &QueueState) -> bool {
        match self.capacity {
            None => true,
            Some(cap) => state.jobs.len() < cap + state.idle,
        }
    }

    /// Enqueues `job`; with `block`, waits for room on a full bounded queue.
    /// Returns `false` (dropping the job) if the queue is closed, or — in
    /// non-blocking mode — full.
    fn push(&self, job: Job, block: bool) -> bool {
        let mut state = self.state.lock().unwrap();
        while !state.closed && !self.has_room(&state) {
            if !block {
                return false;
            }
            state = self.space_free.wait(state).unwrap();
        }
        if state.closed {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.job_ready.notify_one();
        true
    }

    /// Worker side: parks until a job or shutdown. After close, remaining
    /// queued jobs are still drained before workers exit.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        state.idle += 1;
        // Parking grew the admission window by one.
        self.space_free.notify_all();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.idle -= 1;
                return Some(job);
            }
            if state.closed {
                state.idle -= 1;
                return None;
            }
            state = self.job_ready.wait(state).unwrap();
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.job_ready.notify_all();
        self.space_free.notify_all();
    }
}

/// A fixed-size pool of worker threads executing submitted closures.
///
/// Dropping the pool closes the queue and joins all workers, so every
/// submitted job is either executed or (if a worker panicked) accounted for
/// in [`ThreadPool::panics`].
pub struct ThreadPool {
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Creates a pool with `size` workers and an unbounded queue. `size` is
    /// clamped to at least 1.
    pub fn new(size: usize) -> Self {
        Self::with_name(size, "chronos-worker")
    }

    /// Creates a pool whose worker threads carry `name` (visible in
    /// backtraces and profilers).
    pub fn with_name(size: usize, name: &str) -> Self {
        Self::build(size, None, name)
    }

    /// Creates a pool with `size` workers and a bounded queue holding at most
    /// `queue` jobs beyond the ones workers are already running. Submissions
    /// past that bound fail fast via [`ThreadPool::try_execute`] instead of
    /// piling up — the primitive behind the HTTP server's admission control.
    pub fn bounded(size: usize, queue: usize) -> Self {
        Self::bounded_with_name(size, queue, "chronos-worker")
    }

    /// [`ThreadPool::bounded`] with named worker threads.
    pub fn bounded_with_name(size: usize, queue: usize, name: &str) -> Self {
        Self::build(size, Some(queue), name)
    }

    fn build(size: usize, queue: Option<usize>, name: &str) -> Self {
        let size = size.max(1);
        let queue = Arc::new(JobQueue {
            state: StdMutex::new(QueueState { jobs: VecDeque::new(), idle: 0, closed: false }),
            job_ready: Condvar::new(),
            space_free: Condvar::new(),
            capacity: queue,
        });
        let panics = Arc::new(AtomicUsize::new(0));
        let workers = (0..size)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        // Startup barrier: don't hand the pool out until every worker is
        // parked, so a rendezvous (depth-0) pool accepts work from the very
        // first submission instead of shedding until the OS schedules the
        // worker threads.
        {
            let mut state = queue.state.lock().unwrap();
            while state.idle < size {
                state = queue.space_free.wait(state).unwrap();
            }
        }
        ThreadPool { queue, workers, panics }
    }

    /// Submits a job for execution, blocking if a bounded queue is full.
    /// Returns `false` if the pool is shutting down and the job was not
    /// accepted.
    pub fn execute<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        self.queue.push(Box::new(job), true)
    }

    /// Submits a job without blocking. Returns `false` — dropping the job —
    /// if a bounded queue is full or the pool is shutting down. A bounded
    /// queue is full when the job could neither be picked up by an idle
    /// worker nor buffered in a free queue slot. On an unbounded pool this
    /// is identical to [`ThreadPool::execute`].
    pub fn try_execute<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        self.queue.push(Box::new(job), false)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// The bounded queue depth, or `None` for an unbounded pool.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue.capacity
    }

    /// Number of jobs that panicked instead of completing.
    pub fn panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Runs `f` on `threads` scoped threads, passing each its index, and returns
/// the per-thread results in index order. This is the fork/join primitive the
/// benchmark clients use for the "number of client threads" parameter.
pub fn scoped_indexed<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|i| scope.spawn(move || f(i))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_size_is_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("boom"));
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1, "worker must survive a panic");
    }

    #[test]
    fn panics_are_counted() {
        let pool = ThreadPool::new(2);
        for _ in 0..3 {
            pool.execute(|| panic!("boom"));
        }
        // Drain by dropping (joins all workers first).
        let panics = {
            let p = pool;
            // Wait for jobs by dropping; capture counter handle first.
            let counter = Arc::clone(&p.panics);
            drop(p);
            counter.load(Ordering::Relaxed)
        };
        assert_eq!(panics, 3);
    }

    #[test]
    fn bounded_try_execute_sheds_when_full() {
        // One worker parked on a gate, queue depth 2: the first submission is
        // picked up by the worker, two more sit in the queue, the fourth must
        // be rejected without blocking.
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock();
        let pool = ThreadPool::bounded(1, 2);
        assert_eq!(pool.queue_capacity(), Some(2));
        let blocker = Arc::clone(&gate);
        assert!(pool.try_execute(move || {
            drop(blocker.lock());
        }));
        // Give the worker a moment to pick the blocking job off the queue.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(pool.try_execute(|| {}));
        assert!(pool.try_execute(|| {}));
        assert!(!pool.try_execute(|| {}), "fourth job must be shed, queue is full");
        drop(guard);
        drop(pool);
    }

    #[test]
    fn bounded_pool_executes_admitted_jobs() {
        let pool = ThreadPool::bounded(4, 64);
        let counter = Arc::new(AtomicU64::new(0));
        let mut admitted = 0u64;
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            if pool.try_execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }) {
                admitted += 1;
            }
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::Relaxed), admitted, "no admitted job may be lost");
        assert!(admitted >= 64, "at least the queue depth must have been admitted");
    }

    #[test]
    fn rendezvous_queue_admits_one_job_per_idle_worker() {
        // Depth 0 must mean "shed when no worker can take the job", not
        // "shed unless a worker is mid-recv at this exact instant": four
        // idle workers accept four back-to-back jobs with zero buffer, and
        // only the fifth is shed. Regression for spurious 429s the reactor
        // core hit dispatching keep-alive requests microseconds apart.
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock();
        let pool = ThreadPool::bounded(4, 0);
        let started = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let blocker = Arc::clone(&gate);
            let started = Arc::clone(&started);
            assert!(
                pool.try_execute(move || {
                    started.fetch_add(1, Ordering::Relaxed);
                    drop(blocker.lock());
                }),
                "an idle worker must count as dispatch capacity"
            );
        }
        assert!(!pool.try_execute(|| {}), "fifth job exceeds workers + queue, must be shed");
        drop(guard);
        drop(pool);
        assert_eq!(started.load(Ordering::Relaxed), 4, "every admitted job must run");
    }

    #[test]
    fn unbounded_try_execute_never_sheds() {
        let pool = ThreadPool::new(1);
        for _ in 0..100 {
            assert!(pool.try_execute(|| {}));
        }
        assert_eq!(pool.queue_capacity(), None);
    }

    #[test]
    fn scoped_indexed_returns_in_order() {
        let results = scoped_indexed(8, |i| i * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn scoped_indexed_clamps_to_one() {
        assert_eq!(scoped_indexed(0, |i| i), vec![0]);
    }
}
