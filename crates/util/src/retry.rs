//! Bounded retry with exponential backoff.
//!
//! Chronos Agents run unattended for days (requirement *(iii)*: long-running
//! evaluations need reliability), so every call to Chronos Control goes
//! through a retry policy instead of failing the whole evaluation on a
//! transient network hiccup.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// An exponential backoff policy with an attempt cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Multiplier applied after each retry (as a percentage, 200 = double).
    pub factor_percent: u32,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Maximum number of attempts (including the first).
    pub max_attempts: u32,
    /// When set, [`run`](Backoff::run) sleeps per a decorrelated-jitter
    /// schedule seeded here instead of the fixed exponential ladder, so a
    /// fleet of agents retrying the same outage doesn't synchronize into a
    /// thundering herd. `None` (the default) keeps delays exact.
    pub jitter_seed: Option<u64>,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(50),
            factor_percent: 200,
            max_delay: Duration::from_secs(5),
            max_attempts: 5,
            jitter_seed: None,
        }
    }
}

impl Backoff {
    /// A policy that never retries.
    pub fn none() -> Self {
        Backoff { max_attempts: 1, ..Backoff::default() }
    }

    /// Switches `run` to decorrelated jitter (`delay = uniform(initial,
    /// min(max_delay, 3 * previous))`) drawn from a PRNG seeded with `seed`.
    /// The schedule is deterministic for a given seed, which tests rely on.
    pub fn with_decorrelated_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay to apply after attempt `attempt` (0-based) fails, or `None`
    /// if no further attempt should be made.
    pub fn delay_after(&self, attempt: u32) -> Option<Duration> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        let mut delay = self.initial;
        for _ in 0..attempt {
            let next_ms = delay.as_millis() as u64 * self.factor_percent as u64 / 100;
            delay = Duration::from_millis(next_ms);
            if delay >= self.max_delay {
                return Some(self.max_delay);
            }
        }
        Some(delay.min(self.max_delay))
    }

    /// The decorrelated-jitter delay sequence for `seed` (AWS-style:
    /// each delay is uniform in `[initial, min(max_delay, 3 * previous)]`).
    /// The iterator is unbounded; `run` cuts it off at `max_attempts`.
    pub fn jittered_delays(&self, seed: u64) -> JitterSchedule {
        JitterSchedule {
            rng: StdRng::seed_from_u64(seed),
            initial_ms: (self.initial.as_millis() as u64).max(1),
            cap_ms: (self.max_delay.as_millis() as u64).max(1),
            prev_ms: (self.initial.as_millis() as u64).max(1),
        }
    }

    /// Runs `op` until it succeeds or the policy is exhausted, sleeping
    /// between attempts. Returns the last error on exhaustion.
    pub fn run<T, E, F>(&self, op: F) -> Result<T, E>
    where
        F: FnMut(u32) -> Result<T, E>,
    {
        self.run_hinted(op, |_| None)
    }

    /// Like [`run`](Backoff::run), but lets the caller extract a server-sent
    /// retry hint (`Retry-After`) from each error. When a hint is present the
    /// sleep is `max(hint, scheduled delay)`: the hint can only stretch a
    /// delay, never shrink it below the jitter, so a fleet told "come back in
    /// 2s" still fans out instead of stampeding at t+2s exactly. Hints are
    /// clamped to [`MAX_RETRY_HINT`] so a misconfigured server cannot park a
    /// client for hours.
    pub fn run_hinted<T, E, F, H>(&self, mut op: F, hint: H) -> Result<T, E>
    where
        F: FnMut(u32) -> Result<T, E>,
        H: Fn(&E) -> Option<Duration>,
    {
        let mut jitter = self.jitter_seed.map(|seed| self.jittered_delays(seed));
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let delay = if attempt + 1 >= self.max_attempts {
                        None
                    } else {
                        match &mut jitter {
                            Some(schedule) => schedule.next(),
                            None => self.delay_after(attempt),
                        }
                    };
                    match delay {
                        Some(delay) => {
                            std::thread::sleep(effective_delay(delay, hint(&e)));
                            attempt += 1;
                        }
                        None => return Err(e),
                    }
                }
            }
        }
    }
}

/// Upper bound honored for server-sent retry hints (see
/// [`Backoff::run_hinted`]).
pub const MAX_RETRY_HINT: Duration = Duration::from_secs(30);

/// The sleep actually taken for a scheduled `delay` and an optional
/// server-sent `hint`: `max(delay, min(hint, MAX_RETRY_HINT))`.
pub fn effective_delay(delay: Duration, hint: Option<Duration>) -> Duration {
    match hint {
        Some(h) => delay.max(h.min(MAX_RETRY_HINT)),
        None => delay,
    }
}

/// Iterator over a decorrelated-jitter delay sequence
/// (see [`Backoff::jittered_delays`]).
#[derive(Debug, Clone)]
pub struct JitterSchedule {
    rng: StdRng,
    initial_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
}

impl Iterator for JitterSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let hi = self.prev_ms.saturating_mul(3).clamp(self.initial_ms, self.cap_ms);
        let ms = if hi <= self.initial_ms {
            self.initial_ms
        } else {
            self.rng.gen_range(self.initial_ms..=hi)
        };
        self.prev_ms = ms;
        Some(Duration::from_millis(ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let b = Backoff {
            initial: Duration::from_millis(100),
            factor_percent: 200,
            max_delay: Duration::from_millis(350),
            max_attempts: 10,
            ..Backoff::default()
        };
        assert_eq!(b.delay_after(0), Some(Duration::from_millis(100)));
        assert_eq!(b.delay_after(1), Some(Duration::from_millis(200)));
        assert_eq!(b.delay_after(2), Some(Duration::from_millis(350))); // capped
        assert_eq!(b.delay_after(3), Some(Duration::from_millis(350)));
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let b = Backoff { max_attempts: 3, ..Backoff::default() };
        assert!(b.delay_after(2).is_none());
        assert!(b.delay_after(5).is_none());
    }

    #[test]
    fn none_never_retries() {
        let b = Backoff::none();
        assert!(b.delay_after(0).is_none());
    }

    #[test]
    fn run_retries_until_success() {
        let b = Backoff {
            initial: Duration::from_millis(1),
            factor_percent: 100,
            max_delay: Duration::from_millis(1),
            max_attempts: 5,
            ..Backoff::default()
        };
        let mut calls = 0;
        let result: Result<u32, &str> = b.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_returns_last_error_when_exhausted() {
        let b = Backoff {
            initial: Duration::from_millis(1),
            factor_percent: 100,
            max_delay: Duration::from_millis(1),
            max_attempts: 3,
            ..Backoff::default()
        };
        let result: Result<(), u32> = b.run(Err);
        assert_eq!(result, Err(2));
    }

    #[test]
    fn run_hinted_stretches_delay_to_the_hint() {
        let b = Backoff {
            initial: Duration::from_millis(1),
            factor_percent: 100,
            max_delay: Duration::from_millis(1),
            max_attempts: 3,
            ..Backoff::default()
        };
        let hint = Duration::from_millis(60);
        let started = std::time::Instant::now();
        let result: Result<(), u32> = b.run_hinted(Err, |_| Some(hint));
        assert_eq!(result, Err(2));
        // Two sleeps, each stretched from 1ms to the 60ms hint.
        assert!(started.elapsed() >= hint * 2, "hint must stretch the scheduled delay");
    }

    #[test]
    fn run_hinted_never_shrinks_below_the_schedule() {
        let b = Backoff {
            initial: Duration::from_millis(40),
            factor_percent: 100,
            max_delay: Duration::from_millis(40),
            max_attempts: 2,
            ..Backoff::default()
        };
        let started = std::time::Instant::now();
        // A 1ms hint must not shrink the scheduled 40ms delay.
        let result: Result<(), u32> = b.run_hinted(Err, |_| Some(Duration::from_millis(1)));
        assert_eq!(result, Err(1));
        assert!(started.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn effective_delay_takes_max_and_clamps() {
        let base = Duration::from_millis(100);
        assert_eq!(effective_delay(base, None), base);
        assert_eq!(effective_delay(base, Some(Duration::from_millis(1))), base);
        assert_eq!(
            effective_delay(base, Some(Duration::from_millis(250))),
            Duration::from_millis(250)
        );
        // An absurd hint is clamped so a misconfigured server cannot park
        // the client for a day.
        assert_eq!(effective_delay(base, Some(Duration::from_secs(86_400))), MAX_RETRY_HINT);
    }

    #[test]
    fn jittered_delays_are_deterministic_and_bounded() {
        let b = Backoff {
            initial: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            ..Backoff::default()
        };
        let a: Vec<Duration> = b.jittered_delays(42).take(50).collect();
        let again: Vec<Duration> = b.jittered_delays(42).take(50).collect();
        assert_eq!(a, again);
        for d in &a {
            assert!(*d >= b.initial && *d <= b.max_delay, "delay out of bounds: {d:?}");
        }
        let other: Vec<Duration> = b.jittered_delays(43).take(50).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn jittered_delays_decorrelate_from_the_ladder() {
        // With a wide range, 20 draws all landing exactly on the exponential
        // ladder would mean the jitter isn't jittering.
        let b = Backoff {
            initial: Duration::from_millis(10),
            max_delay: Duration::from_millis(10_000),
            ..Backoff::default()
        };
        let ladder: Vec<Option<Duration>> = (0..20).map(|i| b.delay_after(i)).collect();
        let jittered: Vec<Option<Duration>> = b.jittered_delays(7).take(20).map(Some).collect();
        assert_ne!(ladder, jittered);
    }

    #[test]
    fn run_with_jitter_still_counts_attempts() {
        let b = Backoff {
            initial: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            max_attempts: 4,
            ..Backoff::default()
        }
        .with_decorrelated_jitter(9);
        let mut calls = 0;
        let result: Result<(), u32> = b.run(|attempt| {
            calls += 1;
            Err(attempt)
        });
        assert_eq!(result, Err(3));
        assert_eq!(calls, 4);
    }
}
