//! Bounded retry with exponential backoff.
//!
//! Chronos Agents run unattended for days (requirement *(iii)*: long-running
//! evaluations need reliability), so every call to Chronos Control goes
//! through a retry policy instead of failing the whole evaluation on a
//! transient network hiccup.

use std::time::Duration;

/// An exponential backoff policy with an attempt cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Multiplier applied after each retry (as a percentage, 200 = double).
    pub factor_percent: u32,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Maximum number of attempts (including the first).
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(50),
            factor_percent: 200,
            max_delay: Duration::from_secs(5),
            max_attempts: 5,
        }
    }
}

impl Backoff {
    /// A policy that never retries.
    pub fn none() -> Self {
        Backoff { max_attempts: 1, ..Backoff::default() }
    }

    /// The delay to apply after attempt `attempt` (0-based) fails, or `None`
    /// if no further attempt should be made.
    pub fn delay_after(&self, attempt: u32) -> Option<Duration> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        let mut delay = self.initial;
        for _ in 0..attempt {
            let next_ms = delay.as_millis() as u64 * self.factor_percent as u64 / 100;
            delay = Duration::from_millis(next_ms);
            if delay >= self.max_delay {
                return Some(self.max_delay);
            }
        }
        Some(delay.min(self.max_delay))
    }

    /// Runs `op` until it succeeds or the policy is exhausted, sleeping
    /// between attempts. Returns the last error on exhaustion.
    pub fn run<T, E, F>(&self, mut op: F) -> Result<T, E>
    where
        F: FnMut(u32) -> Result<T, E>,
    {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => match self.delay_after(attempt) {
                    Some(delay) => {
                        std::thread::sleep(delay);
                        attempt += 1;
                    }
                    None => return Err(e),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let b = Backoff {
            initial: Duration::from_millis(100),
            factor_percent: 200,
            max_delay: Duration::from_millis(350),
            max_attempts: 10,
        };
        assert_eq!(b.delay_after(0), Some(Duration::from_millis(100)));
        assert_eq!(b.delay_after(1), Some(Duration::from_millis(200)));
        assert_eq!(b.delay_after(2), Some(Duration::from_millis(350))); // capped
        assert_eq!(b.delay_after(3), Some(Duration::from_millis(350)));
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let b = Backoff { max_attempts: 3, ..Backoff::default() };
        assert!(b.delay_after(2).is_none());
        assert!(b.delay_after(5).is_none());
    }

    #[test]
    fn none_never_retries() {
        let b = Backoff::none();
        assert!(b.delay_after(0).is_none());
    }

    #[test]
    fn run_retries_until_success() {
        let b = Backoff {
            initial: Duration::from_millis(1),
            factor_percent: 100,
            max_delay: Duration::from_millis(1),
            max_attempts: 5,
        };
        let mut calls = 0;
        let result: Result<u32, &str> = b.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_returns_last_error_when_exhausted() {
        let b = Backoff {
            initial: Duration::from_millis(1),
            factor_percent: 100,
            max_delay: Duration::from_millis(1),
            max_attempts: 3,
        };
        let result: Result<(), u32> = b.run(Err);
        assert_eq!(result, Err(2));
    }
}
