//! The frozen legacy API: `/api/v0`.
//!
//! The paper (§2.2) makes API versioning a feature: "This allows new
//! clients to simultaneously use the newly developed features while other
//! clients still use older versions of the REST API." `v0` is the
//! demonstration of that contract — a small read-only subset with the
//! *original* field names (`status` instead of `state`, `percent` instead
//! of `progress`) that keeps working unchanged next to `v1`. Its wire
//! shapes are frozen in [`chronos_api::v0`].

use std::sync::Arc;

use chronos_api::{v0, ApiVersion, WireEncode};
use chronos_core::{ChronosControl, CoreError};
use chronos_http::{Response, Router, ServerMetrics};
use chronos_util::Id;

use crate::{deadline_guard, error_response};

/// Mounts the frozen v0 routes. The wire shapes are frozen; the deadline
/// check only adds a new (never-before-seen) 504 refusal, which legacy
/// clients that do not send `X-Chronos-Deadline-Ms` can never trigger.
pub fn mount(router: &mut Router, control: Arc<ChronosControl>, metrics: Arc<ServerMetrics>) {
    router.get("/api/v0/version", |_req, _p| Response::json(&ApiVersion::V0.version_body()));

    // v0 predates sessions: job status polling is unauthenticated (ids are
    // unguessable 128-bit tokens), mirroring early Chronos deployments.
    let control_ = Arc::clone(&control);
    router.get("/api/v0/jobs/:id", move |_req, p| {
        let result = (|| {
            let id = p
                .get("id")
                .and_then(|s| Id::parse_base32(s).ok())
                .ok_or_else(|| CoreError::Invalid("invalid job id".into()))?;
            let job = control_.get_job(id)?;
            // The v0 wire shape, kept bit-for-bit stable.
            let status = v0::JobStatusV0 {
                id: job.id,
                status: job.state,
                percent: job.progress,
                evaluation: job.evaluation_id,
            };
            Ok(Response::json(&status.to_value()))
        })();
        result.unwrap_or_else(error_response)
    });

    let control_ = Arc::clone(&control);
    router.get("/api/v0/evaluations/:id/status", move |req, p| {
        // Status aggregates every job of the evaluation.
        if let Some(busy) = deadline_guard(req, &metrics) {
            return busy;
        }
        let result = (|| {
            let id = p
                .get("id")
                .and_then(|s| Id::parse_base32(s).ok())
                .ok_or_else(|| CoreError::Invalid("invalid evaluation id".into()))?;
            let status = control_.evaluation_status(id)?;
            let body = v0::EvaluationStatusV0 {
                id,
                // v0 predates lazy evaluations: unmaterialized points are
                // still open work, so they fold into `open`.
                open: status.scheduled + status.running + status.remaining.unwrap_or(0),
                // v0 also predates quarantine: a quarantined job is settled
                // work, so it folds into `closed` like any other failure.
                closed: status.finished + status.aborted + status.failed + status.quarantined,
                percent: status.progress_percent(),
            };
            Ok(Response::json(&body.to_value()))
        })();
        result.unwrap_or_else(error_response)
    });
}
