//! # chronos-server — the Chronos Control REST API
//!
//! Exposes [`chronos_core::ChronosControl`] over HTTP, exactly in the role
//! of the original's Apache+PHP web service: "a RESTful web service for
//! clients benchmarking the SuEs" that is also "used [...] for the
//! integration of the Chronos toolkit into existing evaluation workflows"
//! (paper §2.2).
//!
//! The API is versioned (`/api/v1` plus a frozen `/api/v0` compatibility
//! subset), token-authenticated (`X-Chronos-Token`), and serves every
//! workflow of the paper: system registration, deployments, projects,
//! experiments, evaluations, the agent protocol (claim / heartbeat / log /
//! result / fail), abort/reschedule, archives, analysis and chart renders.
//!
//! ```no_run
//! use std::sync::Arc;
//! use chronos_core::ChronosControl;
//! use chronos_server::ChronosServer;
//!
//! let control = Arc::new(ChronosControl::in_memory());
//! let server = ChronosServer::start(control, "127.0.0.1:0").unwrap();
//! println!("Chronos Control listening on {}", server.base_url());
//! ```

mod api_v0;
mod api_v1;
mod ui;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chronos_core::ChronosControl;
use chronos_http::{Response, Router, Server, ServerHandle, Status};

/// How often the background sweeper checks for heartbeat timeouts.
const SWEEP_INTERVAL: Duration = Duration::from_millis(500);

/// A running Chronos Control server (HTTP listener + failure sweeper).
pub struct ChronosServer {
    http: Option<ServerHandle>,
    control: Arc<ChronosControl>,
    stop: Arc<AtomicBool>,
    sweeper: Option<std::thread::JoinHandle<()>>,
}

impl ChronosServer {
    /// Binds `addr` and starts serving the versioned API. A background
    /// thread runs the failure-detection sweep (requirement *(iii)*).
    pub fn start(control: Arc<ChronosControl>, addr: &str) -> std::io::Result<ChronosServer> {
        let router = build_router(Arc::clone(&control));
        let http = Server::new().serve(addr, move |request| router.dispatch(&request))?;
        let stop = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let control = Arc::clone(&control);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("chronos-sweeper".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _ = control.check_timeouts();
                        std::thread::sleep(SWEEP_INTERVAL);
                    }
                })
                .expect("failed to spawn sweeper")
        };
        Ok(ChronosServer { http: Some(http), control, stop, sweeper: Some(sweeper) })
    }

    /// Base URL, e.g. `http://127.0.0.1:43211`.
    pub fn base_url(&self) -> String {
        self.http.as_ref().expect("server running").base_url()
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.as_ref().expect("server running").addr()
    }

    /// The control instance behind the server.
    pub fn control(&self) -> &Arc<ChronosControl> {
        &self.control
    }

    /// Stops the HTTP listener and the sweeper. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

impl Drop for ChronosServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the full routing table (v1 + frozen v0).
pub fn build_router(control: Arc<ChronosControl>) -> Router {
    let mut router = Router::new();
    api_v1::mount(&mut router, Arc::clone(&control));
    api_v0::mount(&mut router, Arc::clone(&control));
    ui::mount(&mut router, control);
    router.get("/api", |_req, _params| {
        use chronos_api::WireEncode;
        Response::json(&chronos_api::ApiIndex::default().to_value())
    });
    router
}

/// Maps a [`chronos_core::CoreError`] to the wire error envelope.
pub(crate) fn error_response(error: chronos_core::CoreError) -> Response {
    use chronos_api::{ErrorEnvelope, WireEncode};
    use chronos_core::CoreError;
    let status = match &error {
        CoreError::NotFound { .. } => Status::NOT_FOUND,
        CoreError::Invalid(_) => Status::BAD_REQUEST,
        CoreError::Conflict(_) | CoreError::LeaseLost(_) => Status::CONFLICT,
        CoreError::Forbidden(_) => Status::FORBIDDEN,
        CoreError::Storage(_) | CoreError::Archive(_) => Status::INTERNAL_ERROR,
    };
    if let CoreError::LeaseLost(message) = &error {
        // A distinguishable shape: agents must tell "lease lost, stop the
        // run" apart from ordinary 409 conflicts.
        return Response::json_status(status, &ErrorEnvelope::lease_lost(message).to_value());
    }
    Response::json_status(status, &ErrorEnvelope::status(status.0, error.to_string()).to_value())
}
