//! # chronos-server — the Chronos Control REST API
//!
//! Exposes [`chronos_core::ChronosControl`] over HTTP, exactly in the role
//! of the original's Apache+PHP web service: "a RESTful web service for
//! clients benchmarking the SuEs" that is also "used [...] for the
//! integration of the Chronos toolkit into existing evaluation workflows"
//! (paper §2.2).
//!
//! The API is versioned (`/api/v1` plus a frozen `/api/v0` compatibility
//! subset), token-authenticated (`X-Chronos-Token`), and serves every
//! workflow of the paper: system registration, deployments, projects,
//! experiments, evaluations, the agent protocol (claim / heartbeat / log /
//! result / fail), abort/reschedule, archives, analysis and chart renders.
//!
//! ## Overload protection and graceful degradation
//!
//! The HTTP front end runs with bounded admission by default: a fixed
//! worker pool, a bounded accept queue, and an in-flight connection cap.
//! Excess load is shed cheaply from the accept thread with typed
//! `429 {"error":{"code":"overloaded"}}` envelopes carrying `Retry-After`.
//! Callers can bound their wait with the `X-Chronos-Deadline-Ms` header;
//! an exhausted budget is answered with `504 deadline_exceeded` before
//! any expensive work runs. `/healthz` (liveness) and `/readyz`
//! (readiness: store healthy and not draining) expose the state to
//! orchestrators, and [`ChronosServer::drain`] performs a two-phase
//! graceful shutdown that finishes in-flight requests.
//!
//! ```no_run
//! use std::sync::Arc;
//! use chronos_core::ChronosControl;
//! use chronos_server::ChronosServer;
//!
//! let control = Arc::new(ChronosControl::in_memory());
//! let server = ChronosServer::start(control, "127.0.0.1:0").unwrap();
//! println!("Chronos Control listening on {}", server.base_url());
//! ```

mod api_v0;
mod api_v1;
mod cluster;
mod ui;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos_core::cluster::{ClusterConfig, ClusterState};
use chronos_core::ChronosControl;
use chronos_http::{Request, Response, Router, Server, ServerHandle, ServerMetrics, Status};
use chronos_json::obj;

pub use cluster::{ClusterOptions, CODE_BAD_SEGMENT, CODE_OFFSET_GAP, CODE_STALE_TERM};

/// How often the background sweeper checks for heartbeat timeouts.
const SWEEP_INTERVAL: Duration = Duration::from_millis(500);

/// A running Chronos Control server (HTTP listener + failure sweeper,
/// plus the replication/election driver in cluster mode).
pub struct ChronosServer {
    http: Option<ServerHandle>,
    control: Arc<ChronosControl>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    sweeper: Option<std::thread::JoinHandle<()>>,
    cluster: Option<Arc<ClusterState>>,
    cluster_runtime: Option<Arc<cluster::ClusterRuntime>>,
    cluster_driver: Option<std::thread::JoinHandle<()>>,
}

impl ChronosServer {
    /// Binds `addr` and starts serving the versioned API with the default
    /// (bounded) admission configuration. A background thread runs the
    /// failure-detection sweep (requirement *(iii)*).
    pub fn start(control: Arc<ChronosControl>, addr: &str) -> std::io::Result<ChronosServer> {
        Self::start_with(control, addr, Server::new())
    }

    /// Like [`ChronosServer::start`], but with a caller-configured HTTP
    /// front end (worker count, admission queue depth, in-flight cap, or
    /// an unbounded legacy configuration). Used by the overload experiment
    /// and robustness tests to pin the admission envelope.
    pub fn start_with(
        control: Arc<ChronosControl>,
        addr: &str,
        http: Server,
    ) -> std::io::Result<ChronosServer> {
        Self::start_inner(control, addr, http, None)
    }

    /// Starts a **cluster-mode** node: the ordinary API plus the peer
    /// endpoints (`/api/v1/cluster/*`), the role guard (non-leaders refuse
    /// writes with a typed `not_leader` envelope and serve reads only
    /// within the staleness bound), and the replication/election driver.
    ///
    /// The node boots as a follower knowing no peers; call
    /// [`ChronosServer::set_cluster_peers`] once every node has bound its
    /// listener (cluster tests bind on port 0, so addresses exist only
    /// after all nodes start). Elections begin after that.
    pub fn start_cluster(
        control: Arc<ChronosControl>,
        addr: &str,
        http: Server,
        options: ClusterOptions,
    ) -> std::io::Result<ChronosServer> {
        Self::start_inner(control, addr, http, Some(options))
    }

    fn start_inner(
        control: Arc<ChronosControl>,
        addr: &str,
        http: Server,
        options: Option<ClusterOptions>,
    ) -> std::io::Result<ChronosServer> {
        let metrics = ServerMetrics::shared();
        let draining = Arc::new(AtomicBool::new(false));
        let state = options.map(|o| {
            Arc::new(ClusterState::new(ClusterConfig {
                node_id: o.node_id,
                lease: o.lease,
                staleness_bound: o.staleness_bound,
            }))
        });
        if state.is_none() {
            // A single-node server is trivially its own leader: the gauges
            // read the same whether or not cluster mode is on.
            metrics.cluster_role.set(2);
        }
        let router = router_with_cluster(
            Arc::clone(&control),
            Arc::clone(&metrics),
            Arc::clone(&draining),
            state.clone(),
        );
        let guard_metrics = Arc::clone(&metrics);
        let guard_state = state.clone();
        let http = http.with_metrics(Arc::clone(&metrics)).serve(addr, move |request| {
            // First line of deadline defense: a request whose budget ran
            // out while queued is answered before the router runs at all.
            if request.deadline_expired() {
                guard_metrics.deadline_exceeded.inc();
                return deadline_response("deadline expired before the handler ran");
            }
            // Second line, cluster mode: role-aware routing. A follower
            // refuses writes (and stale reads) before the router runs.
            if let Some(state) = &guard_state {
                if let Some(refusal) = cluster::guard(&request, state) {
                    return refusal;
                }
            }
            router.dispatch(&request)
        })?;
        if let Some(state) = &state {
            state.set_advertise(&http.base_url());
        }
        let stop = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let control = Arc::clone(&control);
            let stop = Arc::clone(&stop);
            let state = state.clone();
            std::thread::Builder::new()
                .name("chronos-sweeper".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        // In cluster mode only the leader sweeps: followers
                        // rescheduling jobs locally would diverge from the
                        // replicated log (all writes must flow through the
                        // leader's WAL).
                        if state.as_ref().is_none_or(|s| s.is_leader()) {
                            let _ = control.check_timeouts();
                        }
                        std::thread::sleep(SWEEP_INTERVAL);
                    }
                })
                .expect("failed to spawn sweeper")
        };
        let (cluster_runtime, cluster_driver) = match &state {
            Some(state) => {
                let runtime = Arc::new(cluster::ClusterRuntime::new(
                    Arc::clone(state),
                    Arc::clone(&control),
                    Arc::clone(&metrics),
                ));
                let driver = {
                    let runtime = Arc::clone(&runtime);
                    std::thread::Builder::new()
                        .name("chronos-cluster".into())
                        .spawn(move || runtime.run())
                        .expect("failed to spawn cluster driver")
                };
                (Some(runtime), Some(driver))
            }
            None => (None, None),
        };
        Ok(ChronosServer {
            http: Some(http),
            control,
            stop,
            draining,
            metrics,
            sweeper: Some(sweeper),
            cluster: state,
            cluster_runtime,
            cluster_driver,
        })
    }

    /// Cluster mode: announces the other nodes' base URLs. Replication and
    /// elections only involve configured peers, so call this on every node
    /// once all listeners are bound.
    pub fn set_cluster_peers(&self, peers: Vec<String>) {
        if let Some(runtime) = &self.cluster_runtime {
            runtime.set_peers(peers);
        }
    }

    /// The cluster state of this node (`None` outside cluster mode).
    pub fn cluster(&self) -> Option<&Arc<ClusterState>> {
        self.cluster.as_ref()
    }

    /// Base URL, e.g. `http://127.0.0.1:43211`.
    pub fn base_url(&self) -> String {
        self.http.as_ref().expect("server running").base_url()
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.as_ref().expect("server running").addr()
    }

    /// The control instance behind the server.
    pub fn control(&self) -> &Arc<ChronosControl> {
        &self.control
    }

    /// Live counters for the HTTP front end (accepted, shed, in-flight…).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Whether a drain has begun (readiness is reported false from then on).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Worker-pool panics observed so far (0 on a healthy server).
    pub fn pool_panics(&self) -> usize {
        self.http.as_ref().map(|h| h.pool_panics()).unwrap_or(0)
    }

    /// Two-phase graceful drain: flips `/readyz` to unready, stops
    /// accepting new connections (they are refused with a typed
    /// `503 draining` envelope), lets every in-flight request finish with
    /// `Connection: close`, and joins the worker pool. Returns `true` if
    /// all in-flight work completed within the drain window. The sweeper
    /// keeps running until [`ChronosServer::shutdown`].
    pub fn drain(&mut self) -> bool {
        self.draining.store(true, Ordering::SeqCst);
        match self.http.as_mut() {
            Some(http) => http.drain(),
            None => true,
        }
    }

    /// Stops the HTTP listener (draining in-flight requests first) and
    /// the sweeper. Idempotent.
    pub fn shutdown(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(runtime) = &self.cluster_runtime {
            runtime.request_stop();
        }
        if let Some(driver) = self.cluster_driver.take() {
            let _ = driver.join();
        }
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

impl Drop for ChronosServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the full routing table (v1 + frozen v0) with a detached set of
/// metrics and a never-draining readiness flag. Prefer
/// [`ChronosServer::start`], which wires the router to the live server
/// state; this entry point serves embedding and router-level tests.
pub fn build_router(control: Arc<ChronosControl>) -> Router {
    router_with(control, ServerMetrics::shared(), Arc::new(AtomicBool::new(false)))
}

/// Builds the routing table wired to live server state: `metrics` counts
/// deadline rejections and is surfaced on the status UI, `draining`
/// drives `/readyz`.
fn router_with(
    control: Arc<ChronosControl>,
    metrics: Arc<ServerMetrics>,
    draining: Arc<AtomicBool>,
) -> Router {
    router_with_cluster(control, metrics, draining, None)
}

/// [`router_with`], optionally in cluster mode: mounts the peer endpoints
/// and extends `/readyz` with role, term, and replication lag (a stale
/// follower reports unready — load balancers stop routing reads to it).
fn router_with_cluster(
    control: Arc<ChronosControl>,
    metrics: Arc<ServerMetrics>,
    draining: Arc<AtomicBool>,
    state: Option<Arc<ClusterState>>,
) -> Router {
    let mut router = Router::new();
    api_v1::mount(&mut router, Arc::clone(&control), Arc::clone(&metrics));
    api_v0::mount(&mut router, Arc::clone(&control), Arc::clone(&metrics));
    ui::mount(&mut router, Arc::clone(&control), Arc::clone(&metrics), Arc::clone(&draining));
    if let Some(state) = &state {
        cluster::mount(&mut router, Arc::clone(state), Arc::clone(&control), Arc::clone(&metrics));
    }
    router.get("/api", |_req, _params| {
        use chronos_api::WireEncode;
        Response::json(&chronos_api::ApiIndex::default().to_value())
    });

    // Liveness: the process is up and the router is dispatching. No auth —
    // orchestrator probes cannot carry tokens.
    router.get("/healthz", |_req, _params| Response::json(&obj! { "status" => "ok" }));

    // Readiness: the store can persist writes and no drain has begun. An
    // unready server answers 503 with the same typed envelope shape the
    // accept thread sheds with, so probes and agents classify it alike.
    // Cluster mode adds the node's role/term/lag, and a follower whose
    // replication lag exceeds the staleness bound reports unready.
    router.get("/readyz", move |_req, _params| {
        let store_healthy = control.store_healthy();
        let is_draining = draining.load(Ordering::SeqCst);
        let mut ready = store_healthy && !is_draining;
        let mut body = obj! {
            "ready" => ready,
            "draining" => is_draining,
            "store_healthy" => store_healthy,
        };
        if let (chronos_json::Value::Object(map), Some(state)) = (&mut body, &state) {
            let now = Instant::now();
            let stale = state.is_stale(now);
            ready = ready && !stale;
            map.insert("ready".into(), chronos_json::Value::from(ready));
            map.insert("role".into(), chronos_json::Value::from(state.role().as_str()));
            map.insert("term".into(), chronos_json::Value::from(state.term() as i64));
            map.insert(
                "replication_lag_ms".into(),
                chronos_json::Value::from(state.lag(now).as_millis() as i64),
            );
            map.insert("stale".into(), chronos_json::Value::from(stale));
        }
        if ready {
            Response::json(&body)
        } else {
            Response::json_status(Status::SERVICE_UNAVAILABLE, &body)
        }
    });
    router
}

/// The `504 deadline_exceeded` response for a request whose
/// `X-Chronos-Deadline-Ms` budget ran out server-side.
pub(crate) fn deadline_response(message: &str) -> Response {
    use chronos_api::{ErrorEnvelope, WireEncode};
    Response::json_status(
        Status::GATEWAY_TIMEOUT,
        &ErrorEnvelope::deadline_exceeded(message).to_value(),
    )
}

/// Checks the request's deadline budget before expensive work; returns the
/// ready-made 504 response (and counts it) when the budget is spent.
pub(crate) fn deadline_guard(req: &Request, metrics: &ServerMetrics) -> Option<Response> {
    if req.deadline_expired() {
        metrics.deadline_exceeded.inc();
        return Some(deadline_response("request deadline expired"));
    }
    None
}

/// Maps a [`chronos_core::CoreError`] to the wire error envelope.
pub(crate) fn error_response(error: chronos_core::CoreError) -> Response {
    use chronos_api::{ErrorEnvelope, WireEncode};
    use chronos_core::CoreError;
    let status = match &error {
        CoreError::NotFound { .. } => Status::NOT_FOUND,
        CoreError::Invalid(_) => Status::BAD_REQUEST,
        CoreError::Conflict(_) | CoreError::LeaseLost(_) => Status::CONFLICT,
        CoreError::Forbidden(_) => Status::FORBIDDEN,
        CoreError::Storage(_) | CoreError::Archive(_) => Status::INTERNAL_ERROR,
    };
    if let CoreError::LeaseLost(message) = &error {
        // A distinguishable shape: agents must tell "lease lost, stop the
        // run" apart from ordinary 409 conflicts.
        return Response::json_status(status, &ErrorEnvelope::lease_lost(message).to_value());
    }
    Response::json_status(status, &ErrorEnvelope::status(status.0, error.to_string()).to_value())
}
